"""Scatter-gather serving over hash-routed :class:`GraphittiService` shards.

:class:`ShardedGraphittiService` presents the single-service API over N
independent :class:`~repro.service.service.GraphittiService` shards:

* **writes route** — an annotation lands on the shard its annotated object
  hashes to (see :mod:`repro.shard.router`), so annotations of one data
  object — and the a-graph edges between them — stay co-located; data
  objects and ontologies are broadcast to every shard so any shard can
  validate and index any annotation.
* **queries scatter-gather** — the query text runs on every shard in
  parallel on a thread pool (each shard plans against its own statistics
  catalogue and serves from its own epoch-tagged result cache), and the
  per-shard :class:`~repro.query.result.QueryResult` pages merge with a
  stable global ordering: annotation ids merge-sort lexicographically (the
  executor's own collation order), ``LIMIT`` is re-applied globally, and
  fragments/referents/subgraphs follow the merged order.
* **durability is per shard, coordination is a manifest** — every shard
  keeps its own WAL + snapshot directory; :meth:`checkpoint` checkpoints all
  shards in parallel and then atomically lands a ``shards.json`` manifest
  recording the topology and per-shard WAL high-water marks;
  :meth:`recover` replays every shard (same torn-tail rules as a single
  service) before the router accepts traffic.
* **bulk ingest stays grouped** — :meth:`bulk_commit` groups the batch by
  shard and group-commits the per-shard batches concurrently.

Because each shard caches and invalidates independently, a mutation only
evicts cached results on the shard it touched: a hot scatter-gather query
re-executes 1/N of its work after a typical write instead of all of it —
the effect ``benchmarks/bench_sharding.py`` measures and floors.

Known divergences from a single service (both inherent to shard-local
a-graphs): ``GRAPH`` results group connection subgraphs per shard, so two
annotations connected *only* through a replicated ontology term node appear
as separate pages; ``PATH`` constraints likewise only see shard-local paths.
Annotation-level constraints (keyword / ontology / overlap / region / type /
NOT / OR) are per-annotation predicates and merge exactly.
"""

from __future__ import annotations

import hashlib
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.core.annotation import Annotation, AnnotationContent
from repro.core.builder import AnnotationBuilder
from repro.core.dublin_core import DublinCore
from repro.core.manager import Graphitti
from repro.errors import (
    AnnotationError,
    ServiceError,
    ShardTimeoutError,
    UnknownObjectError,
)
from repro.obs import Observability, merge_observability, merge_stats
from repro.query.ast import Query, ReturnKind
from repro.query.parser import parse_query
from repro.query.result import QueryResult
from repro.replica.replicated import (
    REPLICATION_MANIFEST,
    ReplicatedGraphittiService,
    ReplicationConfig,
)
from repro.service.cache import normalize_gql
from repro.service.service import GraphittiService, ServiceConfig
from repro.shard.router import (
    MANIFEST_FILE,
    ROUTING_SCHEME,
    read_manifest,
    shard_dir_name,
    shard_for_annotation,
    shard_from_annotation_id,
    shard_namespace,
    write_manifest,
)

_PENDING_PREFIX = "anno-pending-"

#: Top-level statistics keys describing broadcast (replicated) substrates:
#: every shard holds the same value, so aggregation reports it once instead
#: of summing N copies.
_REPLICATED_STATS_KEYS = ("data_objects", "objects_by_type", "ontologies")


def resolve_topology(root: Path, shards: int | None) -> tuple[int, dict[str, Any] | None]:
    """Resolve the shard count for *root*; returns ``(count, manifest)``.

    The manifest's shard count wins; without one, existing ``shard-*``
    directories ARE the topology; a root holding unsharded single-service
    state is refused; a fresh root takes *shards* (default 4).  Passing a
    *shards* value that contradicts existing state raises — resharding is a
    data migration, not an open-time flag.  Shared by the threaded facade
    and :class:`repro.net.facade.NetworkShardedGraphittiService` so the two
    topologies resolve identically.
    """
    root = Path(root)
    manifest = read_manifest(root)
    existing_dirs = len(list(root.glob("shard-*"))) if root.exists() else 0
    if manifest is not None:
        count = int(manifest["shards"])
        if shards is not None and shards != count:
            raise ServiceError(
                f"root {root} is sharded {count} ways (per {MANIFEST_FILE}); "
                f"got shards={shards} — resharding requires a migration"
            )
    elif existing_dirs:
        # A lost/never-landed manifest must not default the topology:
        # opening an 8-shard root 4 ways would serve half the data and
        # misroute every write.  The shard directories ARE the topology.
        count = existing_dirs
        if shards is not None and shards != count:
            raise ServiceError(
                f"root {root} holds {count} shard director(ies) but no "
                f"{MANIFEST_FILE}; got shards={shards} — resharding requires "
                "a migration"
            )
    else:
        # Refuse to lay shards over a single-service root: creating N
        # empty shard directories (and a manifest every later open
        # adopts) next to an existing snapshot/WAL would permanently
        # hide that data behind an empty sharded instance.
        from repro.service.durability import SNAPSHOT_FILE, WAL_FILE

        wal_path = root / WAL_FILE
        if (root / SNAPSHOT_FILE).exists() or (
            wal_path.exists() and wal_path.stat().st_size > 0
        ):
            raise ServiceError(
                f"root {root} holds unsharded service state "
                f"({SNAPSHOT_FILE}/{WAL_FILE}); open it with "
                "GraphittiService, or migrate it before sharding"
            )
        count = shards if shards is not None else 4
    return count, manifest


@dataclass
class ShardedIntegrityReport:
    """Integrity verdict across every shard."""

    reports: list = field(default_factory=list)
    #: Shard-attributed error strings (empty when every shard passed).
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


class ShardedGraphittiService:
    """Hash-routed scatter-gather facade over N GraphittiService shards."""

    def __init__(
        self,
        shards: int | None = None,
        root: str | Path | None = None,
        config: ServiceConfig | None = None,
        name: str = "graphitti",
        services: list[GraphittiService] | None = None,
    ):
        if services is not None:
            self._shards = services
        else:
            count = shards if shards is not None else 4
            if count < 1:
                raise ServiceError("a sharded service needs at least one shard")
            self._shards = []
            for index in range(count):
                namespace = shard_namespace(index)
                manager = Graphitti(f"{name}-{namespace}", id_namespace=namespace)
                shard_root = Path(root) / shard_dir_name(index) if root is not None else None
                self._shards.append(
                    GraphittiService(manager=manager, root=shard_root, config=config)
                )
        self.config = self._shards[0].config
        # The facade's own registry records the scatter/merge stages; the
        # per-shard registries live in the shard services and merge into
        # metrics() the same way statistics() sums per-shard dicts.
        self.obs = Observability(getattr(self.config, "observability", None))
        self._root = Path(root) if root is not None else None
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, len(self._shards)), thread_name_prefix="shard"
        )
        self._checkpoints = 0
        self._closed = False
        self._recovery_info: dict[str, Any] | None = None
        # normalized GQL -> (return kind, limit); the merge step needs the
        # query shape, and parsing it once per distinct text is enough (the
        # shape does not depend on data, unlike plans).
        self._shapes: OrderedDict[str, tuple[ReturnKind, int | None]] = OrderedDict()
        self._shapes_mutex = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open(
        cls,
        root: str | Path,
        shards: int | None = None,
        config: ServiceConfig | None = None,
        name: str = "graphitti",
        replicas: int | None = None,
        replication: ReplicationConfig | None = None,
    ) -> "ShardedGraphittiService":
        """Open (or recover) the sharded deployment at *root*.

        A root with a ``shards.json`` manifest fixes the topology: the
        manifest's shard count wins, and passing a different *shards* value
        raises (resharding is a data migration, not an open-time flag).  A
        fresh root lays out ``shard-00..shard-NN`` directories, checkpoints
        each shard's empty baseline, and writes the manifest.  Every shard
        holding prior state is recovered — WAL replay, torn-tail rules and
        all — before the instance is returned.

        With ``replicas=N`` (or when the shard directories already hold
        replication manifests) each shard opens as a
        :class:`~repro.replica.replicated.ReplicatedGraphittiService` —
        writes land on the shard's primary, scatter-gather reads serve from
        its followers.  The default per-shard read contract is ``"fresh"``
        (a read waits for a follower to reach the last acknowledged write,
        then degrades to the primary), so scatter-gather semantics match the
        unreplicated deployment exactly.
        """
        root = Path(root)
        count, manifest = resolve_topology(root, shards)
        # A shard directory holding a replication manifest was deployed
        # replicated; reopen it that way even without an explicit replicas=.
        replicated = replicas is not None or any(
            (root / shard_dir_name(index) / REPLICATION_MANIFEST).exists()
            for index in range(count)
        )
        services = []
        recovery: list[dict[str, Any] | None] = []
        for index in range(count):
            namespace = shard_namespace(index)
            factory: Callable[[], Graphitti] = (
                lambda namespace=namespace: Graphitti(
                    f"{name}-{namespace}", id_namespace=namespace
                )
            )
            if replicated:
                service: Any = ReplicatedGraphittiService.open(
                    root / shard_dir_name(index),
                    replicas=replicas,
                    config=config,
                    replication=replication or ReplicationConfig(default_read="fresh"),
                    manager_factory=factory,
                )
            else:
                service = GraphittiService.open(
                    root / shard_dir_name(index), config=config, manager_factory=factory
                )
            # WAL-only recoveries predate the namespace; (re)pin it so ids
            # generated after a failover still encode their shard.
            service.manager.id_namespace = namespace
            services.append(service)
            recovery.append(service.recovery_info)
        instance = cls(root=root, services=services)
        instance._root = root
        if any(info is not None for info in recovery):
            instance._recovery_info = {
                "shards": len(services),
                "replayed": sum((info or {}).get("replayed", 0) for info in recovery),
                "skipped": sum((info or {}).get("skipped", 0) for info in recovery),
                "torn_tails": sum(1 for info in recovery if (info or {}).get("torn_tail")),
                "per_shard": recovery,
            }
        if manifest is None:
            instance._write_manifest()
        else:
            instance._checkpoints = int(manifest.get("checkpoints", 0))
        return instance

    @classmethod
    def recover(
        cls, root: str | Path, config: ServiceConfig | None = None
    ) -> "ShardedGraphittiService":
        """Recover the deployment at *root*; raises when it holds no state."""
        root = Path(root)
        if read_manifest(root) is None and not any(root.glob("shard-*")):
            raise ServiceError(f"no shard manifest or shard directories under {root}")
        return cls.open(root, config=config)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[GraphittiService, ...]:
        """The underlying shard services (route writes through the router —
        mutating a shard directly bypasses id namespacing and the manifest)."""
        return tuple(self._shards)

    @property
    def recovery_info(self) -> dict[str, Any] | None:
        """Aggregated recovery report (None when no shard recovered)."""
        return self._recovery_info

    def close(self) -> None:
        """Checkpoint (per shard config), close every shard, stop the pool."""
        if self._closed:
            return
        for shard in self._shards:
            shard.close()
        if self._root is not None:
            self._write_manifest()
        self._pool.shutdown(wait=True)
        self._closed = True

    def __enter__(self) -> "ShardedGraphittiService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- scatter helpers -------------------------------------------------------

    def _scatter(self, call: Callable[[GraphittiService], Any]) -> list[Any]:
        """Run *call* against every shard in parallel; results in shard order.

        Shard tasks never re-enter the pool (a shard call is self-contained),
        so waiting on the futures from the caller thread cannot deadlock.
        """
        futures = [self._pool.submit(call, shard) for shard in self._shards]
        return self._gather(futures)

    def _gather(self, futures: list[Any]) -> list[Any]:
        """Collect scatter futures, honouring the configured shard deadline.

        With ``ServiceConfig.scatter_deadline_s`` set, a shard that does not
        answer within the deadline raises :class:`ShardTimeoutError` — the
        same typed error the network path maps its per-op timeouts to —
        instead of blocking the merge forever behind one hung shard.  The
        deadline covers the whole scatter (it is a budget, not per shard):
        remaining futures get whatever budget is left.
        """
        deadline = getattr(self.config, "scatter_deadline_s", None)
        if deadline is None:
            return [future.result() for future in futures]
        end = time.monotonic() + deadline
        results = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result(timeout=max(0.0, end - time.monotonic())))
            except FuturesTimeoutError:
                for pending in futures[index:]:
                    pending.cancel()
                raise ShardTimeoutError(
                    f"shard {index} did not answer within the {deadline}s scatter deadline"
                ) from None
        return results

    def _owning_shard(self, annotation_id: str) -> int | None:
        """The shard holding *annotation_id*, or None.

        Generated ids encode their shard and resolve in O(1); foreign
        (caller-chosen) ids fall back to probing each shard's committed-id
        dict — a GIL-atomic membership read, cheap enough for point lookups
        and re-validated under the owning shard's lock by whatever operation
        follows.
        """
        encoded = shard_from_annotation_id(annotation_id)
        if encoded is not None and encoded < len(self._shards):
            if self._shard_holds(encoded, annotation_id):
                return encoded
        # Fall through to a full probe even when the id *looks* shard-encoded:
        # ids imported from another deployment (a different topology, a
        # migration) route by referent hash, not by their legacy encoding.
        for index in range(len(self._shards)):
            if index == encoded:
                continue
            if self._shard_holds(index, annotation_id):
                return index
        return None

    def _shard_holds(self, index: int, annotation_id: str) -> bool:
        return self._shards[index].manager.has_annotation(annotation_id)

    # -- write path ------------------------------------------------------------

    def register_ontology(self, ontology, cache: bool = True):
        """Broadcast an ontology registration to every shard."""
        results = self._scatter(
            lambda shard: shard.register_ontology(ontology, cache=cache)
        )
        return results[0]

    def register(self, obj, raw: bytes | None = None, **metadata: Any):
        """Broadcast a data-object registration to every shard.

        Replication is what lets any shard validate and spatially index any
        annotation; object registrations are rare and small next to
        annotation traffic, so N copies of the catalogue row are cheap.
        """
        self._scatter(lambda shard: shard.register(obj, raw=raw, **metadata))
        return obj

    def new_annotation(
        self,
        annotation_id: str | None = None,
        title: str = "",
        creator: str = "",
        keywords: Iterable[str] = (),
        body: str = "",
        description: str = "",
    ) -> AnnotationBuilder:
        """Start building an annotation whose commit routes through the router.

        With no explicit id the definitive, shard-encoding id is assigned at
        commit time — only then is the annotated object (and therefore the
        owning shard) known.  Until then the builder carries an opaque
        placeholder.
        """
        if annotation_id is None:
            identifier = _PENDING_PREFIX + uuid.uuid4().hex
        else:
            identifier = annotation_id
            if self._owning_shard(identifier) is not None:
                raise AnnotationError(f"annotation id {identifier!r} already exists")
        dublin_core = DublinCore(
            title=title,
            creator=creator,
            subject=list(keywords),
            description=description,
            identifier=identifier,
        )
        content = AnnotationContent(dublin_core=dublin_core, body=body)
        return AnnotationBuilder(self, identifier, content)

    def _finalize_routing(self, annotation: Annotation) -> int:
        """Pick the owning shard; materialize a pending id on that shard.

        Explicit ids are re-checked against EVERY shard here, at commit
        time: the owning shard's own commit only rejects duplicates it
        holds, and two same-id annotations routing to different shards would
        otherwise both land — a ghost duplicate no single service allows.
        """
        index = shard_for_annotation(annotation, len(self._shards))
        if annotation.annotation_id.startswith(_PENDING_PREFIX):
            identifier = self._shards[index].reserve_annotation_id()
            annotation.annotation_id = identifier
            annotation.content.dublin_core.identifier = identifier
        elif self._owning_shard(annotation.annotation_id) is not None:
            raise AnnotationError(
                f"annotation {annotation.annotation_id!r} already committed"
            )
        return index

    def commit(self, annotation: Annotation | AnnotationBuilder) -> Annotation:
        """Commit one annotation on the shard its annotated object routes to."""
        if isinstance(annotation, AnnotationBuilder):
            annotation = annotation.build()
        index = self._finalize_routing(annotation)
        return self._shards[index].commit(annotation)

    def bulk_commit(
        self, annotations: Iterable[Annotation | AnnotationBuilder]
    ) -> list[Annotation]:
        """Group a batch by shard and group-commit the groups concurrently.

        Each per-shard group commits atomically (one lock acquisition, one
        WAL group commit on that shard); atomicity across shards is not
        provided — a batch that fails validation on one shard leaves the
        other shards' groups committed, exactly like two independent bulk
        loads.  Returns the committed annotations in input order.
        """
        batch = [
            item.build() if isinstance(item, AnnotationBuilder) else item
            for item in annotations
        ]
        if not batch:
            return []
        groups: dict[int, list[tuple[int, Annotation]]] = {}
        seen_ids: set[str] = set()
        for position, annotation in enumerate(batch):
            index = self._finalize_routing(annotation)
            # Intra-batch duplicates that route to DIFFERENT shards would
            # slip past each shard group's own validation; reject them here
            # like a single service's batch validation does.
            if annotation.annotation_id in seen_ids:
                raise AnnotationError(
                    f"annotation {annotation.annotation_id!r} already committed"
                )
            seen_ids.add(annotation.annotation_id)
            groups.setdefault(index, []).append((position, annotation))
        futures = {
            index: self._pool.submit(
                self._shards[index].bulk_commit, [item for _, item in group]
            )
            for index, group in groups.items()
        }
        ordered: list[Annotation | None] = [None] * len(batch)
        for index, group in groups.items():
            committed = futures[index].result()
            for (position, _), annotation in zip(group, committed):
                ordered[position] = annotation
        return [annotation for annotation in ordered if annotation is not None]

    def delete_annotation(self, annotation_id: str) -> None:
        """Delete an annotation on its owning shard."""
        index = self._owning_shard(annotation_id)
        if index is None:
            raise AnnotationError(f"no annotation {annotation_id!r}")
        self._shards[index].delete_annotation(annotation_id)

    def update_annotation(self, annotation_id: str, changes: dict[str, Any]):
        """Update an annotation in place on its owning shard.

        The update stays on the shard that holds the annotation even when it
        rewires referents to objects that would *hash* elsewhere — objects
        are replicated to every shard, so the owning shard can validate and
        index any referent, and an annotation never migrates mid-life
        (re-homing is a delete+recommit, exactly like resharding is a
        migration).  Only the owning shard's epoch bumps, so the other
        shards' cached pages keep serving.
        """
        index = self._owning_shard(annotation_id)
        if index is None:
            raise AnnotationError(f"no annotation {annotation_id!r}")
        return self._shards[index].update_annotation(annotation_id, changes)

    def delete_object(self, object_id: str, cascade: bool = True) -> list[str]:
        """Retire a data object: broadcast the delete, cascade per shard.

        Objects are replicated, and annotations routed by their *first*
        referent's object can still reference this object from any shard —
        so the delete goes to every shard and each cascades through the
        annotations it holds.  With ``cascade=False`` the check aggregates
        across shards *before* any shard mutates; like ``bulk_commit``,
        cross-shard atomicity is not provided, so under a concurrent commit
        the precheck is advisory and one shard's own locked re-check may
        still refuse after others deleted their copies.  The broadcast is
        **convergent** to make that recoverable: a shard whose copy is
        already gone reports no work instead of failing, so re-running (with
        ``cascade=True``) finishes the retirement.  Raises only when *no*
        shard knows the object.  Returns the cascaded annotation ids.
        """
        if not cascade:
            referencing = self._scatter(
                lambda shard: shard.annotations_on_object(object_id)
            )
            held = sorted(set().union(*map(set, referencing)))
            if held:
                raise AnnotationError(
                    f"data object {object_id!r} is referenced by "
                    f"{len(held)} annotation(s); pass cascade=True to delete them"
                )

        def _delete(shard: GraphittiService) -> list[str] | None:
            try:
                return shard.delete_object(object_id, cascade=cascade)
            except UnknownObjectError:
                return None  # this replica is already gone; converge

        results = self._scatter(_delete)
        if all(result is None for result in results):
            raise UnknownObjectError(f"no data object {object_id!r} registered")
        return sorted(set().union(*(set(result) for result in results if result)))

    def annotations_on_object(self, object_id: str) -> list[str]:
        """Ids of annotations referencing *object_id*, across every shard."""
        results = self._scatter(lambda shard: shard.annotations_on_object(object_id))
        return sorted(set().union(*map(set, results)))

    # -- read path -------------------------------------------------------------

    def _query_shape(self, text_or_query: str | Query) -> tuple[ReturnKind, int | None]:
        if isinstance(text_or_query, Query):
            return text_or_query.return_kind, text_or_query.limit
        normalized = normalize_gql(text_or_query)
        with self._shapes_mutex:
            shape = self._shapes.get(normalized)
            if shape is not None:
                self._shapes.move_to_end(normalized)
                return shape
        query = parse_query(text_or_query)
        shape = (query.return_kind, query.limit)
        with self._shapes_mutex:
            self._shapes[normalized] = shape
            self._shapes.move_to_end(normalized)
            while len(self._shapes) > 512:
                self._shapes.popitem(last=False)
        return shape

    def query(self, text_or_query: str | Query) -> QueryResult:
        """Scatter the query to every shard and gather one merged result.

        The query shape is parsed once up front, so malformed text fails
        here — it can never reach (or alias) a shard's memoized plan.  Each
        shard serves from its own cache when its epoch allows, which is the
        sharding win: a write invalidates one shard's entry, not all N.
        """
        obs = self.obs
        if not obs.enabled:
            return_kind, limit = self._query_shape(text_or_query)
            results = self._scatter(lambda shard: shard.query(text_or_query))
            return self._merge_results(return_kind, limit, results)
        with obs.span("query") as root:
            with obs.span("parse"):
                return_kind, limit = self._query_shape(text_or_query)
            with obs.span("scatter") as scatter:
                # Pool threads have their own (empty) span stacks, so each
                # shard task is handed the scatter span as explicit parent;
                # everything the shard's own service traces on that thread
                # then hangs off its shard.query span automatically.
                futures = [
                    self._pool.submit(self._traced_shard_query, index, text_or_query, scatter)
                    for index in range(len(self._shards))
                ]
                results = self._gather(futures)
            with obs.span("merge") as merge_span:
                merged = self._merge_results(return_kind, limit, results)
                merge_span.set("rows", merged.count)
        if obs.is_slow(root):
            if isinstance(text_or_query, str):
                root.set("gql", normalize_gql(text_or_query))
            obs.record_slow("query", root, explain=self.explain(text_or_query))
        return merged

    def _traced_shard_query(self, index: int, text_or_query: str | Query, parent) -> QueryResult:
        with self.obs.tracer.span("shard.query", parent=parent) as span:
            span.set("shard", index)
            return self._shards[index].query(text_or_query)

    def _merge_results(
        self,
        return_kind: ReturnKind,
        limit: int | None,
        results: list[QueryResult],
    ) -> QueryResult:
        """Merge per-shard result pages with stable global ordering.

        Annotation ids merge lexicographically (each shard's list is already
        sorted by the executor's collation), ``LIMIT`` re-applies globally,
        fragments follow their ids, referents dedup in merged annotation
        order (matching the single-service collation), and subgraph pages
        order by their smallest member.
        """
        merged = QueryResult(return_kind=return_kind)
        digest = hashlib.sha256(
            "|".join(
                "" if result is None else result.plan_fingerprint for result in results
            ).encode("utf-8")
        ).hexdigest()[:16]
        merged.plan_fingerprint = f"shards[{len(results)}]:{digest}"
        # A None result is a shard that contributed nothing (the network
        # facade's degraded-read path); its rows are simply absent.
        entries: list[tuple[str, int, Any]] = []
        for index, result in enumerate(results):
            if result is None:
                continue
            aligned = len(result.fragments) == len(result.annotation_ids)
            for position, annotation_id in enumerate(result.annotation_ids):
                fragment = result.fragments[position] if aligned else None
                entries.append((annotation_id, index, fragment))
        entries.sort(key=lambda entry: entry[0])
        if limit is not None:
            entries = entries[:limit]
        merged.annotation_ids = [annotation_id for annotation_id, _, _ in entries]
        if return_kind is ReturnKind.CONTENTS:
            merged.fragments = [fragment for _, _, fragment in entries]
        elif return_kind is ReturnKind.REFERENTS:
            # Rebuild the global dedup-in-annotation-order page.  The flat
            # per-shard referent lists cannot be interleaved (first-occurrence
            # order is shard-local), so each annotation's referents are read
            # from the owning shard's committed-annotation dict — a GIL-atomic
            # lookup, not a per-id read-lock acquisition.
            seen: set[str] = set()
            for annotation_id, index, _ in entries:
                for referent in self._annotation_referents(
                    index, annotation_id, results[index]
                ):
                    if referent.referent_id not in seen:
                        seen.add(referent.referent_id)
                        merged.referents.append(referent)
        else:  # GRAPH
            # Re-apply the global LIMIT: keep only pages whose members all
            # survived the merged cut, so every subgraph member is a returned
            # id and the page count can never exceed the limit.  (A component
            # split across the cut is dropped whole rather than rebuilt — the
            # shard-local grouping caveat in the module docstring.)
            limited = set(merged.annotation_ids)
            subgraphs = [
                subgraph
                for result in results
                if result is not None
                for subgraph in result.subgraphs
                if all(terminal in limited for terminal in subgraph.terminals)
            ]
            subgraphs.sort(
                key=lambda subgraph: min(subgraph.terminals) if subgraph.terminals else ""
            )
            merged.subgraphs = subgraphs
        for index, result in enumerate(results):
            if result is None:
                continue
            for detail in result.step_details:
                attributed = dict(detail)
                attributed["shard"] = index
                merged.step_details.append(attributed)
        return merged

    def _annotation_referents(
        self, index: int, annotation_id: str, result: QueryResult
    ) -> Iterable[Any]:
        """Referents of *annotation_id* for the REFERENTS merge.

        The threaded facade materializes from the owning shard's columns
        (GIL-atomic reads, no row-cache mutation); the network facade
        overrides this to use the referent map each worker ships with its
        result page.
        """
        manager = self._shards[index].manager
        slot = manager.idspace.slot(annotation_id)
        if slot is None or not manager.columns.is_live(slot):
            return ()  # deleted between the shard query and the merge
        holder = manager.columns.materialize(
            annotation_id, slot, manager.substructures.columns
        )
        return holder.referents

    def explain(self, text_or_query: str | Query) -> dict:
        """Aggregate EXPLAIN: the scatter plan, one per-shard plan each."""
        plans = self._scatter(lambda shard: shard.explain(text_or_query))
        return {
            "query": plans[0]["query"],
            "mode": "scatter-gather",
            "shards": len(self._shards),
            "routing": ROUTING_SCHEME,
            "plans": plans,
            "estimated_rows_total": sum(
                sum(rows for _, rows in plan.get("estimated_rows", []))
                for plan in plans
            ),
        }

    # -- read passthroughs -----------------------------------------------------

    def annotation(self, annotation_id: str) -> Annotation:
        """The committed annotation with id *annotation_id* (owner-routed)."""
        index = self._owning_shard(annotation_id)
        if index is None:
            raise AnnotationError(f"no annotation {annotation_id!r}")
        return self._shards[index].annotation(annotation_id)

    def search_by_keyword(self, keyword: str, mode: str = "and") -> list[str]:
        """Keyword search scattered to every shard; merged sorted union."""
        results = self._scatter(lambda shard: shard.search_by_keyword(keyword, mode=mode))
        return sorted(set().union(*map(set, results)))

    def search_by_ontology(self, term: str, **kwargs: Any) -> list[str]:
        """Ontology search scattered to every shard; merged sorted union."""
        results = self._scatter(lambda shard: shard.search_by_ontology(term, **kwargs))
        return sorted(set().union(*map(set, results)))

    def related_annotations(self, annotation_id: str) -> list[str]:
        """Indirectly related annotations.

        Referent-sharing is shard-local by construction (annotations of one
        object co-locate), so only the owning shard can answer.
        """
        index = self._owning_shard(annotation_id)
        if index is None:
            raise AnnotationError(f"no annotation {annotation_id!r}")
        return self._shards[index].related_annotations(annotation_id)

    def check_integrity(self) -> ShardedIntegrityReport:
        """Integrity checks on every shard, gathered into one report."""
        reports = self._scatter(lambda shard: shard.check_integrity())
        merged = ShardedIntegrityReport(reports=reports)
        for index, report in enumerate(reports):
            for error in getattr(report, "errors", []):
                merged.errors.append(f"shard {index}: {error}")
        return merged

    def resolve_ontology_term(self, text: str) -> str:
        """Term resolution for builders (ontologies are replicated)."""
        return self._shards[0].resolve_ontology_term(text)

    def data_object(self, object_id: str):
        """Data-object lookup for builders (objects are replicated)."""
        return self._shards[0].data_object(object_id)

    @property
    def annotation_count(self) -> int:
        return sum(self._scatter(lambda shard: shard.annotation_count))

    # -- statistics ------------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """Aggregated instance statistics.

        Numeric leaves sum across shards (annotations, referents, index and
        catalogue sizes, extent summaries); replicated substrates (data
        objects, ontologies) report one copy's value; the ``service``
        counters sum with the cache hit rate recomputed from the summed
        lookups.  ``sharding`` carries the topology plus compact per-shard
        rows, and ``per_shard`` under it keeps the full breakdown reachable.
        """
        per_shard = self._scatter(lambda shard: shard.statistics())
        without_service = [
            {
                key: value
                for key, value in stats.items()
                if key not in ("service", "replication")
            }
            for stats in per_shard
        ]
        aggregated = merge_stats(without_service)
        for key in _REPLICATED_STATS_KEYS:
            if key in per_shard[0]:
                aggregated[key] = per_shard[0][key]
        service = merge_stats([stats["service"] for stats in per_shard])
        cache = service.get("query_cache")
        if isinstance(cache, dict):
            lookups = cache.get("hits", 0) + cache.get("misses", 0)
            cache["hit_rate"] = (cache.get("hits", 0) / lookups) if lookups else 0.0
        aggregated["service"] = service
        aggregated["sharding"] = {
            "shards": len(self._shards),
            "routing": ROUTING_SCHEME,
            "checkpoints": self._checkpoints,
            "per_shard": [
                {
                    "annotations": stats.get("annotations", 0),
                    "referents": stats.get("referents", 0),
                    "mutation_epoch": stats.get("mutation_epoch", 0),
                    "cache_hits": stats["service"]["query_cache"]["hits"],
                }
                for stats in per_shard
            ],
        }
        replication_rows = [stats.get("replication") for stats in per_shard]
        if any(row is not None for row in replication_rows):
            aggregated["sharding"]["replication"] = replication_rows
        return aggregated

    def metrics(self) -> dict[str, Any]:
        """Fleet-wide observability snapshot: facade + every shard, merged.

        Counters and gauges sum across shards, histograms add buckets (so
        the aggregate p50/p95/p99 come from the combined distribution), and
        slow-op-log stats sum — the same aggregation contract as
        :meth:`statistics`.  ``per_shard`` keeps each shard's own snapshot
        reachable.
        """
        per_shard = [shard.metrics() for shard in self._shards]
        snapshots = [self.obs.snapshot()] + per_shard
        merged = merge_observability(snapshots)
        if merged.get("enabled"):
            merged["per_shard"] = per_shard
        return merged

    def slow_ops(self) -> list[dict[str, Any]]:
        """Slow-op entries across the facade and every shard (oldest first)."""
        entries = []
        if self.obs.enabled:
            entries.extend(self.obs.slow_log.entries())
        for index, shard in enumerate(self._shards):
            for entry in shard.slow_ops():
                attributed = dict(entry)
                attributed["shard"] = index
                entries.append(attributed)
        entries.sort(key=lambda entry: entry.get("recorded_at", 0.0))
        return entries

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> Path | None:
        """Checkpoint every shard in parallel, then land the manifest.

        Each shard's checkpoint is individually atomic (snapshot rename +
        WAL truncate); the manifest — written last, write-temp + fsync +
        rename — records the coordinated point.  A crash between shard
        checkpoints leaves every shard independently consistent and the old
        manifest in place, which recovery handles like any mid-checkpoint
        crash: replay skips what each shard's snapshot already covers.
        """
        self._scatter(lambda shard: shard.checkpoint())
        self._checkpoints += 1
        if self._root is None:
            return None
        return self._write_manifest()

    def compact(self) -> dict[str, Any]:
        """Compact every shard's column storage; returns per-shard reports."""
        reports = self._scatter(lambda shard: shard.compact())
        return {"shards": reports}

    def _shard_wal_seq(self, shard: Any) -> int:
        """A shard's WAL high-water mark for the manifest (0 if non-durable)."""
        return int(getattr(shard, "last_wal_seq", 0))

    def _write_manifest(self) -> Path | None:
        if self._root is None:
            return None
        wal_seqs = [self._shard_wal_seq(shard) for shard in self._shards]
        manifest = {
            "version": 1,
            "shards": len(self._shards),
            "routing": ROUTING_SCHEME,
            "checkpoints": self._checkpoints,
            "wal_seqs": wal_seqs,
        }
        if isinstance(self._shards[0], ReplicatedGraphittiService):
            manifest["replicas"] = len(self._shards[0].followers)
            manifest["terms"] = [
                shard.term
                for shard in self._shards
                if isinstance(shard, ReplicatedGraphittiService)
            ]
        return write_manifest(self._root, manifest)
