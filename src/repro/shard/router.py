"""Hash routing and on-disk topology for the sharded serving layer.

The router decides which shard owns what, with three deterministic rules:

* **data objects are broadcast** — every shard registers every object (and
  ontology), so any shard can validate and index any annotation;
* **annotations route by their annotated object's id** — the first
  referent's ``object_id`` is CRC32-hashed onto a shard, so every annotation
  of the same data object (and therefore the referent-sharing a-graph edges
  between them) lands on one shard;
* **generated annotation ids encode their shard** — each shard's manager
  carries an ``id_namespace`` (``anno-s02-000317``), so point lookups and
  deletes resolve their owner by parsing the id instead of scattering.

CRC32 is used instead of :func:`hash` because routing must be stable across
processes and restarts (``PYTHONHASHSEED`` randomizes ``str.__hash__``).

The shard topology of a durable deployment is recorded in a ``shards.json``
manifest next to the per-shard directories; :func:`write_manifest` lands it
with the same write-temp + fsync + atomic-rename discipline snapshots use,
so a crash mid-checkpoint can never leave a half-written topology.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import Any

from repro.errors import ServiceError
from repro.service.wal import fsync_dir

#: Topology manifest written next to the per-shard directories.
MANIFEST_FILE = "shards.json"

#: The routing rule identifier recorded in the manifest (a deployment whose
#: manifest names a different scheme must not be opened with this router).
ROUTING_SCHEME = "crc32:object-id"

_SHARD_ID_PATTERN = re.compile(r"^anno-s(\d+)-")


def shard_namespace(index: int) -> str:
    """The id namespace of shard *index* (``s00``, ``s01``, ...)."""
    return f"s{index:02d}"


def shard_dir_name(index: int) -> str:
    """The on-disk directory name of shard *index*."""
    return f"shard-{index:02d}"


def shard_for_key(key: str, shard_count: int) -> int:
    """Deterministic shard index for a routing key (CRC32 mod shard count)."""
    return zlib.crc32(key.encode("utf-8")) % shard_count


def shard_for_annotation(annotation, shard_count: int) -> int:
    """The shard an annotation routes to.

    Routing keys on the **first referent's object id**, so annotations of
    the same data object co-locate.  An annotation with no referents (pure
    ontology-pointing content) hashes its own id instead.
    """
    for referent in annotation.referents:
        return shard_for_key(referent.ref.object_id, shard_count)
    return shard_for_key(annotation.annotation_id, shard_count)


def shard_from_annotation_id(annotation_id: str) -> int | None:
    """The shard index a generated annotation id encodes (None for foreign ids)."""
    match = _SHARD_ID_PATTERN.match(annotation_id)
    return int(match.group(1)) if match else None


def read_manifest(root: str | Path) -> dict[str, Any] | None:
    """The shard manifest at *root*, or None when the root has none."""
    path = Path(root) / MANIFEST_FILE
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("routing") not in (None, ROUTING_SCHEME):
        raise ServiceError(
            f"manifest at {path} uses routing {manifest.get('routing')!r}; "
            f"this router implements {ROUTING_SCHEME!r}"
        )
    return manifest


def write_manifest(root: str | Path, manifest: dict[str, Any]) -> Path:
    """Atomically persist the shard manifest (temp file + fsync + rename)."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / MANIFEST_FILE
    tmp = path.with_suffix(".json.tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(root)
    return path
