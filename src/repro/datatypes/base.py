"""Common base classes for heterogeneous data objects.

Every annotable object in Graphitti is a :class:`DataObject` with a type, a
stable object id, metadata, and (optionally) native raw data.  A *mark* on an
object produces a :class:`SubstructureRef`: the minimal, type-specific
description of the annotated fragment plus, when the fragment has a spatial
extent, the interval or rectangle used to index it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import MarkError
from repro.spatial.interval import Interval
from repro.spatial.rect import Rect


class DataType(enum.Enum):
    """The heterogeneous data types the paper enumerates."""

    DNA = "dna_sequence"
    RNA = "rna_sequence"
    PROTEIN = "protein_sequence"
    ALIGNMENT = "multiple_sequence_alignment"
    TREE = "phylogenetic_tree"
    GRAPH = "interaction_graph"
    IMAGE = "image"
    RECORD = "relational_record"

    @property
    def is_sequence(self) -> bool:
        """True for the sequence-like (1D, interval-marked) types."""
        return self in (DataType.DNA, DataType.RNA, DataType.PROTEIN)

    @property
    def is_spatial_2d(self) -> bool:
        """True for types marked with 2D/3D regions."""
        return self is DataType.IMAGE


@dataclass
class SubstructureRef:
    """A reference to an annotated fragment of a data object.

    Parameters
    ----------
    object_id:
        Id of the data object the fragment belongs to.
    data_type:
        The object's :class:`DataType`.
    descriptor:
        Type-specific description of the fragment (e.g. ``{"start": 10,
        "end": 42}`` for a sequence interval, ``{"clade": "..."}`` for a tree
        clade, ``{"rows": [...]}`` for a record block).
    interval:
        The :class:`~repro.spatial.interval.Interval` indexing this fragment,
        for 1D types (``None`` otherwise).
    rect:
        The :class:`~repro.spatial.rect.Rect` indexing this fragment, for
        2D/3D types (``None`` otherwise).
    label:
        Optional human-readable label for the fragment.
    """

    object_id: str
    data_type: DataType
    descriptor: dict[str, Any] = field(default_factory=dict)
    interval: Interval | None = None
    rect: Rect | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.interval is not None and self.rect is not None:
            raise MarkError("a substructure reference cannot be both 1D and 2D/3D")

    @property
    def is_spatial(self) -> bool:
        """True when the fragment has an indexable spatial extent."""
        return self.interval is not None or self.rect is not None

    @property
    def domain(self) -> str | None:
        """The coordinate domain/space this fragment is indexed in."""
        if self.interval is not None:
            return self.interval.domain
        if self.rect is not None:
            return self.rect.space
        return None

    def key(self) -> str:
        """A stable string key identifying this exact fragment."""
        if self.interval is not None:
            return f"{self.object_id}:iv:{self.interval.start}-{self.interval.end}"
        if self.rect is not None:
            return f"{self.object_id}:box:{self.rect.lo}-{self.rect.hi}"
        descriptor = ",".join(f"{k}={v}" for k, v in sorted(self.descriptor.items()))
        return f"{self.object_id}:sub:{descriptor}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        payload: dict[str, Any] = {
            "object_id": self.object_id,
            "data_type": self.data_type.value,
            "descriptor": dict(self.descriptor),
            "label": self.label,
        }
        if self.interval is not None:
            payload["interval"] = {
                "start": self.interval.start,
                "end": self.interval.end,
                "domain": self.interval.domain,
            }
        if self.rect is not None:
            payload["rect"] = {
                "lo": list(self.rect.lo),
                "hi": list(self.rect.hi),
                "space": self.rect.space,
            }
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SubstructureRef":
        """Reconstruct a substructure reference from :meth:`to_dict` output."""
        interval = None
        rect = None
        if "interval" in payload:
            item = payload["interval"]
            interval = Interval(item["start"], item["end"], domain=item.get("domain"))
        if "rect" in payload:
            item = payload["rect"]
            rect = Rect(tuple(item["lo"]), tuple(item["hi"]), space=item.get("space"))
        return cls(
            object_id=payload["object_id"],
            data_type=DataType(payload["data_type"]),
            descriptor=dict(payload.get("descriptor", {})),
            interval=interval,
            rect=rect,
            label=payload.get("label"),
        )


class DataObject:
    """Base class for every annotable scientific object."""

    data_type: DataType

    def __init__(self, object_id: str, metadata: dict[str, Any] | None = None):
        if not object_id:
            raise MarkError("data object id must be non-empty")
        self.object_id = object_id
        self.metadata: dict[str, Any] = dict(metadata or {})

    @property
    def coordinate_domain(self) -> str | None:
        """The coordinate domain this object's marks are expressed in.

        Subclasses that live in a shared coordinate system (sequences with a
        chromosome, images with an atlas space) override this.
        """
        return self.object_id

    def describe(self) -> str:
        """Short human-readable description (used by the example scripts)."""
        return f"{self.data_type.value} {self.object_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.object_id}>"
