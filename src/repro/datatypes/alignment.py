"""Multiple sequence alignment data objects.

An alignment is a matrix of aligned rows (gapped sequences) over a shared set
of columns.  A mark on an alignment selects a *column block* (a contiguous
range of alignment columns), indexed as a 1D interval in the alignment's own
coordinate domain.  This is the "multiple sequence alignment structures"
data type listed in the paper's annotation tab.
"""

from __future__ import annotations

from typing import Iterable

from repro.datatypes.base import DataObject, DataType, SubstructureRef
from repro.errors import MarkError
from repro.spatial.interval import Interval


class MultipleSequenceAlignment(DataObject):
    """A gapped multiple sequence alignment.

    Parameters
    ----------
    object_id:
        Stable id.
    rows:
        Mapping of row name -> aligned (gapped) sequence string.  All rows
        must have equal length (the alignment width).
    gap:
        The gap character (default ``'-'``).
    """

    data_type = DataType.ALIGNMENT

    def __init__(self, object_id: str, rows: dict[str, str], gap: str = "-", metadata: dict | None = None):
        super().__init__(object_id, metadata)
        if not rows:
            raise MarkError("alignment must have at least one row")
        widths = {len(sequence) for sequence in rows.values()}
        if len(widths) != 1:
            raise MarkError("all alignment rows must have equal length")
        self.rows = dict(rows)
        self.gap = gap
        self.width = widths.pop()

    @property
    def row_names(self) -> tuple[str, ...]:
        """Ordered row names."""
        return tuple(self.rows)

    @property
    def depth(self) -> int:
        """Number of rows."""
        return len(self.rows)

    def column(self, index: int) -> dict[str, str]:
        """The residues in alignment column *index*, keyed by row name."""
        if not 0 <= index < self.width:
            raise MarkError(f"column {index} out of bounds for width {self.width}")
        return {name: sequence[index] for name, sequence in self.rows.items()}

    def column_conservation(self, index: int) -> float:
        """Fraction of the most common (non-gap) residue in a column."""
        residues = [residue for residue in self.column(index).values() if residue != self.gap]
        if not residues:
            return 0.0
        most_common = max(set(residues), key=residues.count)
        return residues.count(most_common) / len(residues)

    def conserved_columns(self, threshold: float = 0.9) -> list[int]:
        """Indices of columns whose conservation meets *threshold*."""
        return [index for index in range(self.width) if self.column_conservation(index) >= threshold]

    def mark_columns(self, start: int, end: int, label: str | None = None) -> SubstructureRef:
        """Mark the column block ``[start, end]`` (inclusive)."""
        if start < 0 or end >= self.width:
            raise MarkError(f"column block [{start}, {end}] out of bounds for width {self.width}")
        if end < start:
            raise MarkError("column block end precedes start")
        interval = Interval(start, end, domain=self.coordinate_domain)
        block = {name: sequence[start : end + 1] for name, sequence in self.rows.items()}
        return SubstructureRef(
            object_id=self.object_id,
            data_type=self.data_type,
            descriptor={"start": start, "end": end, "block": block},
            interval=interval,
            label=label,
        )

    def mark_column_blocks(self, ranges: Iterable[tuple[int, int]]) -> list[SubstructureRef]:
        """Mark several column blocks."""
        return [self.mark_columns(start, end) for start, end in ranges]

    def describe(self) -> str:
        return f"alignment {self.object_id} ({self.depth} rows x {self.width} cols)"
