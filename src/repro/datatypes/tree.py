"""Phylogenetic tree data objects.

Trees are annotated by marking a *clade* (a subtree rooted at an internal or
leaf node).  Trees have no linear coordinate, so clade marks are non-spatial
substructures (their descriptor records the clade's leaf set); overlap between
two clades is defined by leaf-set intersection at the query layer.  A Newick
parser is provided because Newick is how the paper's phylogenetic trees would
be stored.
"""

from __future__ import annotations

from typing import Iterator

from repro.datatypes.base import DataObject, DataType, SubstructureRef
from repro.errors import MarkError


class TreeClade:
    """One node of a phylogenetic tree (a clade = node + its subtree)."""

    __slots__ = ("name", "branch_length", "children", "parent")

    def __init__(self, name: str | None = None, branch_length: float = 0.0):
        self.name = name
        self.branch_length = branch_length
        self.children: list["TreeClade"] = []
        self.parent: "TreeClade | None" = None

    @property
    def is_leaf(self) -> bool:
        """True when the clade has no children."""
        return not self.children

    def add_child(self, child: "TreeClade") -> "TreeClade":
        """Attach *child* and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def iter_clades(self) -> Iterator["TreeClade"]:
        """Depth-first iteration over this clade and its descendants."""
        yield self
        for child in self.children:
            yield from child.iter_clades()

    def leaves(self) -> list["TreeClade"]:
        """All leaf descendants (or self when this is a leaf)."""
        return [clade for clade in self.iter_clades() if clade.is_leaf]

    def leaf_names(self) -> frozenset[str]:
        """Names of every leaf under this clade."""
        return frozenset(leaf.name for leaf in self.leaves() if leaf.name is not None)

    def depth(self) -> int:
        """Height of the subtree (0 for a leaf)."""
        if self.is_leaf:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def total_branch_length(self) -> float:
        """Sum of branch lengths in the subtree."""
        return self.branch_length + sum(child.total_branch_length() for child in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TreeClade {self.name or 'internal'} children={len(self.children)}>"


class PhylogeneticTree(DataObject):
    """A rooted phylogenetic tree."""

    data_type = DataType.TREE

    def __init__(self, object_id: str, root: TreeClade, metadata: dict | None = None):
        super().__init__(object_id, metadata)
        self.root = root

    @property
    def leaf_names(self) -> frozenset[str]:
        """Names of all tree leaves (taxa)."""
        return self.root.leaf_names()

    def clade_count(self) -> int:
        """Number of clades (nodes) in the tree."""
        return sum(1 for _ in self.root.iter_clades())

    def find_clade(self, name: str) -> TreeClade | None:
        """The first clade with the given node name."""
        for clade in self.root.iter_clades():
            if clade.name == name:
                return clade
        return None

    def common_ancestor(self, leaf_names: list[str]) -> TreeClade | None:
        """Most-recent common ancestor of the named leaves."""
        wanted = set(leaf_names)
        best: TreeClade | None = None
        for clade in self.root.iter_clades():
            if wanted <= clade.leaf_names():
                if best is None or clade.depth() < best.depth():
                    best = clade
        return best

    def mark_clade(self, name: str, label: str | None = None) -> SubstructureRef:
        """Mark the clade rooted at the node named *name*."""
        clade = self.find_clade(name)
        if clade is None:
            raise MarkError(f"tree {self.object_id!r} has no clade named {name!r}")
        return SubstructureRef(
            object_id=self.object_id,
            data_type=self.data_type,
            descriptor={"clade": name, "leaves": sorted(clade.leaf_names())},
            label=label,
        )

    def mark_clade_by_leaves(self, leaf_names: list[str], label: str | None = None) -> SubstructureRef:
        """Mark the smallest clade containing all the named leaves."""
        ancestor = self.common_ancestor(leaf_names)
        if ancestor is None:
            raise MarkError(f"tree {self.object_id!r} has no clade covering {leaf_names!r}")
        return SubstructureRef(
            object_id=self.object_id,
            data_type=self.data_type,
            descriptor={"clade": ancestor.name, "leaves": sorted(ancestor.leaf_names())},
            label=label,
        )

    def describe(self) -> str:
        return f"phylogenetic tree {self.object_id} ({len(self.leaf_names)} taxa)"


def parse_newick(text: str, object_id: str = "tree") -> PhylogeneticTree:
    """Parse a Newick string into a :class:`PhylogeneticTree`.

    Supports named leaves and internal nodes, branch lengths (``:0.1``), and
    nested clades.  Quoted labels and comments are not supported (annotation
    trees in the paper use plain taxon names).
    """
    text = text.strip()
    if not text.endswith(";"):
        raise MarkError("Newick string must end with ';'")
    position = 0

    def parse_clade() -> TreeClade:
        nonlocal position
        clade = TreeClade()
        if text[position] == "(":
            position += 1  # consume '('
            clade.add_child(parse_clade())
            while text[position] == ",":
                position += 1
                clade.add_child(parse_clade())
            if text[position] != ")":
                raise MarkError(f"expected ')' at offset {position}")
            position += 1  # consume ')'
        # optional node name (stops at any structural delimiter)
        name_chars = []
        while position < len(text) and text[position] not in ",():;":
            name_chars.append(text[position])
            position += 1
        name = "".join(name_chars)
        if name:
            clade.name = name
        # optional branch length introduced by ':'
        if position < len(text) and text[position] == ":":
            position += 1
            length_chars = []
            while position < len(text) and text[position] not in ",():;":
                length_chars.append(text[position])
                position += 1
            clade.branch_length = float("".join(length_chars)) if length_chars else 0.0
        return clade

    root = parse_clade()
    if text[position] != ";":
        raise MarkError(f"unexpected trailing content at offset {position}")
    return PhylogeneticTree(object_id, root)
