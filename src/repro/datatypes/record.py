"""Relational record data objects.

The paper's annotation tab has "block set markers for relational records".  A
relational record object wraps a set of rows (each a dict of field -> value);
a mark selects a *block* of rows (by row key), modelled as a non-spatial
substructure whose descriptor records the selected row keys.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.datatypes.base import DataObject, DataType, SubstructureRef
from repro.errors import MarkError


class RelationalRecord(DataObject):
    """A set of keyed relational rows that can be block-annotated.

    Parameters
    ----------
    object_id:
        Stable id.
    fields:
        Ordered field names.
    rows:
        Mapping of row key -> field-value dict.
    """

    data_type = DataType.RECORD

    def __init__(
        self,
        object_id: str,
        fields: Iterable[str],
        rows: dict[str, dict[str, Any]] | None = None,
        metadata: dict | None = None,
    ):
        super().__init__(object_id, metadata)
        self.fields = tuple(fields)
        if not self.fields:
            raise MarkError("relational record must declare at least one field")
        self._rows: dict[str, dict[str, Any]] = {}
        for key, values in (rows or {}).items():
            self.add_row(key, values)

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return len(self._rows)

    def row_keys(self) -> tuple[str, ...]:
        """All row keys in insertion order."""
        return tuple(self._rows)

    def add_row(self, key: str, values: dict[str, Any]) -> None:
        """Add a row; unknown fields are rejected."""
        unknown = set(values) - set(self.fields)
        if unknown:
            raise MarkError(f"record {self.object_id!r}: unknown fields {sorted(unknown)!r}")
        if key in self._rows:
            raise MarkError(f"record {self.object_id!r}: duplicate row key {key!r}")
        self._rows[key] = {field: values.get(field) for field in self.fields}

    def row(self, key: str) -> dict[str, Any]:
        """The row with the given key."""
        try:
            return dict(self._rows[key])
        except KeyError:
            raise MarkError(f"record {self.object_id!r} has no row {key!r}") from None

    def select(self, field: str, value: Any) -> list[str]:
        """Row keys whose *field* equals *value*."""
        if field not in self.fields:
            raise MarkError(f"record {self.object_id!r} has no field {field!r}")
        return [key for key, row in self._rows.items() if row.get(field) == value]

    def mark_block(self, row_keys: Iterable[str], label: str | None = None) -> SubstructureRef:
        """Mark a block of rows by key (the paper's 'block set marker')."""
        keys = list(row_keys)
        unknown = set(keys) - set(self._rows)
        if unknown:
            raise MarkError(f"record {self.object_id!r} has no rows {sorted(unknown)!r}")
        block = RecordBlock(self.object_id, keys)
        return SubstructureRef(
            object_id=self.object_id,
            data_type=self.data_type,
            descriptor={"row_keys": sorted(keys), "size": len(keys)},
            label=label,
        )

    def describe(self) -> str:
        return f"relational record {self.object_id} ({self.row_count} rows)"


class RecordBlock:
    """A selected block of record rows (value object for descriptors)."""

    __slots__ = ("record_id", "row_keys")

    def __init__(self, record_id: str, row_keys: Iterable[str]):
        self.record_id = record_id
        self.row_keys = frozenset(row_keys)

    def overlaps(self, other: "RecordBlock") -> bool:
        """True when two blocks of the same record share a row."""
        return self.record_id == other.record_id and bool(self.row_keys & other.row_keys)
