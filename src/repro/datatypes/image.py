"""Image data objects with annotated regions.

Images are the archetypal 2D/3D data type.  A mark on an image selects a
rectangular (2D) or box (3D) region, indexed in an R-tree.  The paper's
optimisation "regions [of] all brain images of the same resolution are
referenced with respect to the same brain coordinate system, and placed in a
single R-tree" is modelled by :attr:`Image.coordinate_space`: many images can
share a coordinate space so their region marks land in one R-tree.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datatypes.base import DataObject, DataType, SubstructureRef
from repro.errors import MarkError
from repro.spatial.rect import Rect


class ImageRegion:
    """A named region within an image (pre-segmentation or user mark)."""

    __slots__ = ("lo", "hi", "name")

    def __init__(self, lo: Sequence[float], hi: Sequence[float], name: str | None = None):
        self.lo = tuple(float(value) for value in lo)
        self.hi = tuple(float(value) for value in hi)
        if len(self.lo) != len(self.hi):
            raise MarkError("region lo and hi must have equal dimensionality")
        self.name = name

    def as_rect(self, space: str | None = None) -> Rect:
        """Convert to a :class:`~repro.spatial.rect.Rect`."""
        return Rect(self.lo, self.hi, space=space)


class Image(DataObject):
    """A 2D or 3D image registered to a (possibly shared) coordinate space.

    Parameters
    ----------
    object_id:
        Stable id.
    dimension:
        2 for planar images, 3 for volumetric stacks.
    space:
        Name of the shared coordinate space (e.g. ``"mouse-atlas:25um"``).
        Defaults to the object id (one R-tree per image).
    size:
        Optional per-axis extent of the image.
    """

    data_type = DataType.IMAGE

    def __init__(
        self,
        object_id: str,
        dimension: int = 2,
        space: str | None = None,
        size: Sequence[float] | None = None,
        metadata: dict | None = None,
    ):
        super().__init__(object_id, metadata)
        if dimension not in (2, 3):
            raise MarkError("images must be 2D or 3D")
        self.dimension = dimension
        self._space = space
        self.size = tuple(float(value) for value in size) if size is not None else None

    @property
    def coordinate_space(self) -> str:
        """The shared coordinate space this image's regions are indexed in."""
        return self._space if self._space is not None else self.object_id

    @property
    def coordinate_domain(self) -> str | None:
        return self.coordinate_space

    def mark_region(self, lo: Sequence[float], hi: Sequence[float], label: str | None = None) -> SubstructureRef:
        """Mark a rectangular/box region ``[lo, hi]``."""
        if len(lo) != self.dimension or len(hi) != self.dimension:
            raise MarkError(
                f"region dimensionality {len(lo)} does not match image dimension {self.dimension}"
            )
        rect = Rect(lo, hi, space=self.coordinate_space)
        return SubstructureRef(
            object_id=self.object_id,
            data_type=self.data_type,
            descriptor={"lo": list(rect.lo), "hi": list(rect.hi)},
            rect=rect,
            label=label,
        )

    def mark_regions(self, regions: Iterable[ImageRegion]) -> list[SubstructureRef]:
        """Mark several pre-defined regions."""
        return [self.mark_region(region.lo, region.hi, label=region.name) for region in regions]

    def describe(self) -> str:
        return f"{self.dimension}D image {self.object_id} (space {self.coordinate_space})"
