"""Biological sequence data objects (DNA, RNA, protein).

Sequences are the archetypal 1D data type in the paper.  Marks on a sequence
select closed residue intervals, indexed in an interval tree.  The paper's
optimisation "a single interval tree per chromosome" is modelled by the
:attr:`Sequence.coordinate_domain`: many sequences can share a domain (a
chromosome, a genome segment) so their intervals land in one tree.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.datatypes.base import DataObject, DataType, SubstructureRef
from repro.errors import MarkError
from repro.spatial.interval import Interval

_DNA_ALPHABET = frozenset("ACGTN")
_RNA_ALPHABET = frozenset("ACGUN")
_PROTEIN_ALPHABET = frozenset("ACDEFGHIKLMNPQRSTVWYXBZ*")

_COMPLEMENT = str.maketrans("ACGTN", "TGCAN")


class SequenceType(enum.Enum):
    """The three sequence flavours."""

    DNA = "dna"
    RNA = "rna"
    PROTEIN = "protein"


class Sequence(DataObject):
    """A biological sequence over a fixed alphabet.

    Parameters
    ----------
    object_id:
        Stable id / accession.
    residues:
        The sequence string; validated against the alphabet.
    domain:
        Optional coordinate domain shared with other sequences (e.g. the
        chromosome or genome segment).  Defaults to the object id (one tree
        per sequence) so that not specifying a domain is still correct.
    offset:
        Position of residue 0 within the coordinate domain (lets several
        sequences be placed on one shared axis).
    """

    _SEQUENCE_DATA_TYPE = DataType.DNA  # overridden by subclasses
    _ALPHABET = _DNA_ALPHABET
    sequence_type = SequenceType.DNA

    def __init__(
        self,
        object_id: str,
        residues: str,
        domain: str | None = None,
        offset: int = 0,
        metadata: dict | None = None,
    ):
        super().__init__(object_id, metadata)
        residues = residues.upper().strip()
        invalid = set(residues) - self._ALPHABET
        if invalid:
            raise MarkError(
                f"sequence {object_id!r} has characters {sorted(invalid)!r} outside the "
                f"{self.sequence_type.value} alphabet"
            )
        self.residues = residues
        self._domain = domain
        self.offset = offset

    data_type = DataType.DNA  # overridden

    def __len__(self) -> int:
        return len(self.residues)

    @property
    def coordinate_domain(self) -> str | None:
        return self._domain if self._domain is not None else self.object_id

    def subsequence(self, start: int, end: int) -> str:
        """Residues in the closed residue range ``[start, end]`` (0-based)."""
        self._check_range(start, end)
        return self.residues[start : end + 1]

    def mark(self, start: int, end: int, label: str | None = None) -> SubstructureRef:
        """Produce a :class:`SubstructureRef` for residues ``[start, end]``.

        Coordinates are expressed in the shared coordinate domain (i.e. the
        residue index plus :attr:`offset`).
        """
        self._check_range(start, end)
        domain_start = start + self.offset
        domain_end = end + self.offset
        interval = Interval(domain_start, domain_end, domain=self.coordinate_domain)
        return SubstructureRef(
            object_id=self.object_id,
            data_type=self.data_type,
            descriptor={"start": start, "end": end, "residues": self.subsequence(start, end)},
            interval=interval,
            label=label,
        )

    def mark_many(self, ranges: Iterable[tuple[int, int]]) -> list[SubstructureRef]:
        """Mark several intervals at once (used by the Fig-2 interval marker)."""
        return [self.mark(start, end) for start, end in ranges]

    def gc_content(self) -> float:
        """Fraction of G/C residues (nucleic-acid sequences only)."""
        if self.sequence_type is SequenceType.PROTEIN:
            raise MarkError("GC content is undefined for protein sequences")
        if not self.residues:
            return 0.0
        gc = sum(1 for residue in self.residues if residue in "GC")
        return gc / len(self.residues)

    def _check_range(self, start: int, end: int) -> None:
        if start < 0 or end >= len(self.residues):
            raise MarkError(
                f"range [{start}, {end}] out of bounds for sequence of length {len(self.residues)}"
            )
        if end < start:
            raise MarkError(f"range end {end} precedes start {start}")

    def describe(self) -> str:
        return f"{self.sequence_type.value} sequence {self.object_id} ({len(self)} residues)"


class DnaSequence(Sequence):
    """A DNA sequence over ``{A, C, G, T, N}``."""

    data_type = DataType.DNA
    _ALPHABET = _DNA_ALPHABET
    sequence_type = SequenceType.DNA

    def reverse_complement(self) -> "DnaSequence":
        """The reverse-complement strand."""
        complemented = self.residues.translate(_COMPLEMENT)[::-1]
        return DnaSequence(f"{self.object_id}:rc", complemented, domain=self._domain)

    def transcribe(self) -> "RnaSequence":
        """Transcribe DNA to RNA (T -> U)."""
        return RnaSequence(f"{self.object_id}:rna", self.residues.replace("T", "U"), domain=self._domain)


class RnaSequence(Sequence):
    """An RNA sequence over ``{A, C, G, U, N}``."""

    data_type = DataType.RNA
    _ALPHABET = _RNA_ALPHABET
    sequence_type = SequenceType.RNA

    def back_transcribe(self) -> "DnaSequence":
        """Reverse transcription to DNA (U -> T)."""
        return DnaSequence(f"{self.object_id}:dna", self.residues.replace("U", "T"), domain=self._domain)


class ProteinSequence(Sequence):
    """A protein sequence over the 20 amino acids plus ambiguity codes."""

    data_type = DataType.PROTEIN
    _ALPHABET = _PROTEIN_ALPHABET
    sequence_type = SequenceType.PROTEIN
