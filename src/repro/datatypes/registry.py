"""Registry of data objects known to a Graphitti instance.

"The search window [contains] a menu button for each kind of data registered
to the system."  The :class:`DataTypeRegistry` is that catalogue: it stores
every registered :class:`~repro.datatypes.base.DataObject`, indexes them by
type, and knows the coordinate domain/space each object's marks live in so the
core manager can route substructure marks to the right index.
"""

from __future__ import annotations

from typing import Iterator

from repro.datatypes.base import DataObject, DataType
from repro.errors import UnknownObjectError


class DataTypeRegistry:
    """Catalogue of registered data objects, grouped by :class:`DataType`."""

    def __init__(self) -> None:
        self._objects: dict[str, DataObject] = {}
        self._by_type: dict[DataType, set[str]] = {data_type: set() for data_type in DataType}

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def __iter__(self) -> Iterator[DataObject]:
        return iter(self._objects.values())

    def register(self, obj: DataObject) -> DataObject:
        """Register a data object (raises on duplicate id)."""
        if obj.object_id in self._objects:
            raise UnknownObjectError(f"data object {obj.object_id!r} already registered")
        self._objects[obj.object_id] = obj
        self._by_type[obj.data_type].add(obj.object_id)
        return obj

    def unregister(self, object_id: str) -> DataObject:
        """Remove a registered data object and return it (raises when absent).

        Only the catalogue entry is dropped; callers (the manager's
        ``delete_object``) are responsible for cascading through annotations
        and the metadata relation first.
        """
        obj = self._objects.pop(object_id, None)
        if obj is None:
            raise UnknownObjectError(f"no data object {object_id!r} registered")
        self._by_type[obj.data_type].discard(object_id)
        return obj

    def get(self, object_id: str) -> DataObject:
        """The registered object with id *object_id* (raises when absent)."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise UnknownObjectError(f"no data object {object_id!r} registered") from None

    def of_type(self, data_type: DataType) -> list[DataObject]:
        """All registered objects of a given type."""
        return [self._objects[object_id] for object_id in sorted(self._by_type[data_type])]

    def types_present(self) -> list[DataType]:
        """Data types that have at least one registered object."""
        return [data_type for data_type, ids in self._by_type.items() if ids]

    def count_by_type(self) -> dict[DataType, int]:
        """Number of registered objects per type."""
        return {data_type: len(ids) for data_type, ids in self._by_type.items() if ids}

    def object_ids(self) -> tuple[str, ...]:
        """Ids of every registered object."""
        return tuple(self._objects)
