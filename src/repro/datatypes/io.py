"""Native-format I/O for data objects (FASTA, BED-like feature tables).

The paper stores "the raw actual data ... in their native formats".  This
module reads and writes the two formats Graphitti's sequence data objects
would use in practice:

* **FASTA** -- one or more sequences, each a ``>header`` line followed by
  residue lines,
* **BED-like feature tables** -- tab/space separated ``name start end label``
  rows describing intervals to annotate on a sequence.

The FASTA reader infers the sequence flavour (DNA / RNA / protein) from the
alphabet, and :func:`load_features` turns a feature table into mark ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.datatypes.sequence import DnaSequence, ProteinSequence, RnaSequence, Sequence
from repro.errors import WorkloadError

_DNA = set("ACGTN")
_RNA = set("ACGUN")


def _infer_sequence(object_id: str, residues: str, domain: str | None) -> Sequence:
    upper = residues.upper()
    letters = set(upper)
    if letters <= _DNA:
        return DnaSequence(object_id, upper, domain=domain)
    if letters <= _RNA:
        return RnaSequence(object_id, upper, domain=domain)
    return ProteinSequence(object_id, upper, domain=domain)


def parse_fasta(text: str, domain: str | None = None) -> list[Sequence]:
    """Parse FASTA text into a list of sequence data objects.

    The sequence id is the first whitespace-delimited token of each header.
    The flavour (DNA/RNA/protein) is inferred from the residue alphabet.
    """
    sequences: list[Sequence] = []
    header: str | None = None
    residues: list[str] = []

    def flush() -> None:
        if header is not None:
            object_id = header.split()[0] if header.split() else header
            sequences.append(_infer_sequence(object_id, "".join(residues), domain))

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            header = line[1:].strip()
            residues = []
        else:
            if header is None:
                raise WorkloadError("FASTA residue line before any header")
            residues.append(line)
    flush()
    if not sequences:
        raise WorkloadError("no sequences found in FASTA text")
    return sequences


def write_fasta(sequences: Iterable[Sequence], width: int = 60) -> str:
    """Serialize sequences to FASTA text, wrapping residues at *width*."""
    lines: list[str] = []
    for sequence in sequences:
        lines.append(f">{sequence.object_id}")
        residues = sequence.residues
        for start in range(0, len(residues), width):
            lines.append(residues[start:start + width])
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class Feature:
    """One parsed feature-table row: a labelled interval on an object."""

    object_id: str
    start: int
    end: int
    label: str = ""

    def as_range(self) -> tuple[int, int]:
        """``(start, end)`` tuple."""
        return (self.start, self.end)


def parse_features(text: str) -> list[Feature]:
    """Parse a BED-like feature table (``object start end [label]`` per row)."""
    features: list[Feature] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise WorkloadError(f"feature row {line_number} has fewer than 3 columns: {raw_line!r}")
        object_id = parts[0]
        try:
            start = int(parts[1])
            end = int(parts[2])
        except ValueError as exc:
            raise WorkloadError(f"feature row {line_number} has non-integer bounds") from exc
        label = parts[3] if len(parts) > 3 else ""
        features.append(Feature(object_id, start, end, label))
    return features


def load_features(manager, text: str, creator: str = "feature-import", keyword: str = "feature") -> list[str]:
    """Import a feature table as one annotation per feature on a manager.

    Each feature row becomes an annotation whose single referent is the marked
    interval.  Returns the created annotation ids.  The referenced sequences
    must already be registered with *manager*.
    """
    created: list[str] = []
    for index, feature in enumerate(parse_features(text)):
        if feature.object_id not in manager.registry:
            raise WorkloadError(f"feature references unregistered object {feature.object_id!r}")
        builder = manager.new_annotation(
            f"feat-{feature.object_id}-{index}",
            creator=creator,
            keywords=[keyword] + ([feature.label] if feature.label else []),
            body=f"Imported feature {feature.label or index} on {feature.object_id}.",
        )
        builder.mark_sequence(feature.object_id, feature.start, feature.end, label=feature.label or None)
        created.append(builder.commit().annotation_id)
    return created
