"""Heterogeneous scientific data object models.

The paper annotates "a wide variety of scientific data": DNA/RNA/protein
sequences, multiple sequence alignments, phylogenetic trees, molecular
interaction graphs, images with regions, and relational records.  Each type
is modelled here with:

* a native data representation,
* a notion of *substructure* (what a mark selects: a sequence interval, an
  image region, a record block, a tree clade, a subgraph),
* a bridge to the spatial indexes (intervals/rects) for the types that have a
  spatial extent.

:class:`~repro.datatypes.registry.DataTypeRegistry` enumerates the types
registered with a Graphitti instance (the paper's "menu button for each kind
of data registered to the system").
"""

from repro.datatypes.base import DataObject, DataType, SubstructureRef
from repro.datatypes.sequence import (
    DnaSequence,
    ProteinSequence,
    RnaSequence,
    Sequence,
    SequenceType,
)
from repro.datatypes.alignment import MultipleSequenceAlignment
from repro.datatypes.tree import PhylogeneticTree, TreeClade, parse_newick
from repro.datatypes.graph import InteractionGraph
from repro.datatypes.image import Image, ImageRegion
from repro.datatypes.record import RecordBlock, RelationalRecord
from repro.datatypes.registry import DataTypeRegistry
from repro.datatypes.io import (
    Feature,
    load_features,
    parse_fasta,
    parse_features,
    write_fasta,
)

__all__ = [
    "DataObject",
    "DataType",
    "SubstructureRef",
    "Sequence",
    "SequenceType",
    "DnaSequence",
    "RnaSequence",
    "ProteinSequence",
    "MultipleSequenceAlignment",
    "PhylogeneticTree",
    "TreeClade",
    "parse_newick",
    "InteractionGraph",
    "Image",
    "ImageRegion",
    "RelationalRecord",
    "RecordBlock",
    "DataTypeRegistry",
    "Feature",
    "parse_fasta",
    "write_fasta",
    "parse_features",
    "load_features",
]
