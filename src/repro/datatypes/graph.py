"""Molecular interaction graph data objects.

Interaction graphs (protein-protein interaction networks, regulatory
networks) are annotated by marking a *subgraph* (a set of nodes and the edges
induced among them).  Like trees, interaction subgraphs are non-spatial; two
subgraph marks overlap when their node sets intersect.
"""

from __future__ import annotations

from typing import Iterable

from repro.datatypes.base import DataObject, DataType, SubstructureRef
from repro.errors import MarkError


class InteractionGraph(DataObject):
    """An undirected molecular interaction graph.

    Nodes are biomolecule identifiers; edges carry an optional interaction
    type and weight.  The implementation is a plain adjacency map so the core
    library has no hard dependency on networkx (networkx is used only in the
    baselines for comparison).
    """

    data_type = DataType.GRAPH

    def __init__(self, object_id: str, metadata: dict | None = None):
        super().__init__(object_id, metadata)
        self._nodes: dict[str, dict] = {}
        self._adjacency: dict[str, dict[str, dict]] = {}

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def nodes(self) -> tuple[str, ...]:
        """All node identifiers."""
        return tuple(self._nodes)

    def add_node(self, node: str, **attributes) -> None:
        """Add a node (idempotent; merges attributes)."""
        self._nodes.setdefault(node, {}).update(attributes)
        self._adjacency.setdefault(node, {})

    def add_edge(self, left: str, right: str, interaction: str | None = None, weight: float = 1.0) -> None:
        """Add an undirected edge, creating endpoints as needed."""
        if left == right:
            raise MarkError("interaction graph does not support self-loops")
        self.add_node(left)
        self.add_node(right)
        attributes = {"interaction": interaction, "weight": weight}
        self._adjacency[left][right] = attributes
        self._adjacency[right][left] = attributes

    def neighbors(self, node: str) -> set[str]:
        """Direct neighbours of *node*."""
        if node not in self._nodes:
            raise MarkError(f"graph {self.object_id!r} has no node {node!r}")
        return set(self._adjacency.get(node, {}))

    def degree(self, node: str) -> int:
        """Degree of *node*."""
        return len(self.neighbors(node))

    def has_edge(self, left: str, right: str) -> bool:
        """True when an edge connects *left* and *right*."""
        return right in self._adjacency.get(left, {})

    def neighborhood(self, node: str, radius: int = 1) -> set[str]:
        """Nodes within *radius* hops of *node* (including *node*)."""
        if node not in self._nodes:
            raise MarkError(f"graph {self.object_id!r} has no node {node!r}")
        seen = {node}
        frontier = {node}
        for _ in range(radius):
            nxt: set[str] = set()
            for current in frontier:
                nxt |= self.neighbors(current) - seen
            seen |= nxt
            frontier = nxt
            if not frontier:
                break
        return seen

    def connected_component(self, node: str) -> set[str]:
        """All nodes reachable from *node*."""
        return self.neighborhood(node, radius=len(self._nodes))

    def mark_subgraph(self, nodes: Iterable[str], label: str | None = None) -> SubstructureRef:
        """Mark the subgraph induced by *nodes*."""
        node_set = set(nodes)
        unknown = node_set - set(self._nodes)
        if unknown:
            raise MarkError(f"graph {self.object_id!r} has no nodes {sorted(unknown)!r}")
        induced_edges = sorted(
            tuple(sorted((left, right)))
            for left in node_set
            for right in self.neighbors(left)
            if right in node_set and left < right
        )
        return SubstructureRef(
            object_id=self.object_id,
            data_type=self.data_type,
            descriptor={"nodes": sorted(node_set), "edges": induced_edges},
            label=label,
        )

    def mark_neighborhood(self, node: str, radius: int = 1, label: str | None = None) -> SubstructureRef:
        """Mark the subgraph induced by the *radius*-hop neighbourhood of *node*."""
        return self.mark_subgraph(self.neighborhood(node, radius), label=label)

    def describe(self) -> str:
        return f"interaction graph {self.object_id} ({self.node_count} nodes, {self.edge_count} edges)"
