"""WAL-shipping replication for the Graphitti serving layer.

* :mod:`repro.replica.tailer` -- the incremental WAL cursor + shipment codec,
* :mod:`repro.replica.follower` -- one read replica and its apply path,
* :mod:`repro.replica.replicated` -- primary + followers behind one facade
  (bounded-staleness reads, heartbeat lease, fenced failover),
* :mod:`repro.replica.faults` -- the deterministic fault-injection harness.
"""

from repro.replica.faults import (
    FAULT_POINTS,
    FaultRule,
    FaultSchedule,
    InjectedFsyncError,
    PrimaryCrashed,
    tear_payload,
)
from repro.replica.follower import ReplicaFollower, StaleTermError
from repro.replica.replicated import (
    PRIMARY_DIR,
    REPLICATION_MANIFEST,
    ReplicatedGraphittiService,
    ReplicationConfig,
    read_replication_manifest,
    replica_dir_name,
    write_replication_manifest,
)
from repro.replica.tailer import (
    ReplicationGapError,
    WalCursor,
    decode_shipment,
    encode_shipment,
)

__all__ = [
    "WalCursor",
    "ReplicationGapError",
    "encode_shipment",
    "decode_shipment",
    "ReplicaFollower",
    "StaleTermError",
    "ReplicatedGraphittiService",
    "ReplicationConfig",
    "read_replication_manifest",
    "write_replication_manifest",
    "replica_dir_name",
    "REPLICATION_MANIFEST",
    "PRIMARY_DIR",
    "FaultSchedule",
    "FaultRule",
    "FAULT_POINTS",
    "PrimaryCrashed",
    "InjectedFsyncError",
    "tear_payload",
]
