"""Incremental WAL tailing: the shipping side of replication.

:func:`~repro.service.wal.read_records` slurps a whole log — fine for
recovery, useless for a follower that must see each new record once.
:class:`WalCursor` reads the same file **incrementally** from a byte offset:

* ``poll()`` returns only the records appended since the last poll, and the
  cursor's ``offset`` advances past exactly the records it returned;
* a **torn tail** (the incomplete final line a crash — or a write caught
  mid-flush — leaves) is never consumed and never an error: the cursor stops
  before it and re-reads it next poll, by which time the writer has either
  completed the line or a reopened :class:`~repro.service.wal.WriteAheadLog`
  has truncated it away;
* damage **before** the tail raises :class:`~repro.errors.WalCorruptionError`
  — a mid-file unreadable record means acknowledged history is lost and the
  follower must not silently skip it;
* a file that *shrank* below the cursor's offset is a checkpoint truncation:
  the cursor restarts at offset 0 and relies on its sequence filter (records
  at or below ``last_seq`` are already applied) to stay idempotent.  If the
  first record after a truncation leaves a **gap** above ``last_seq + 1``,
  the records in between were checkpointed away before this cursor saw them
  and :class:`ReplicationGapError` tells the caller to re-seed from the
  primary's snapshot instead of replaying an incomplete history.

The module also provides the **shipment codec**: :func:`encode_shipment`
turns records back into the same JSONL bytes the WAL holds, and
:func:`decode_shipment` parses a shipment datagram tolerating a torn final
record (the transit analogue of the crash-torn tail).  Each shipment is
self-contained — a torn record is simply re-shipped whole next round.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.errors import ServiceError, WalCorruptionError
from repro.service.wal import (
    _last_seq_in,
    encode_record,
    parse_record,
    sealed_segment_paths,
    segment_index,
)


class ReplicationGapError(ServiceError):
    """The WAL no longer holds the records a cursor still needs.

    Raised when a truncation-restarted cursor finds the log resuming above
    ``last_seq + 1``: the missing records were folded into a snapshot the
    cursor has not seen.  The fix is a snapshot re-seed, not a replay.
    """

    def __init__(self, needed: int, available: int, path: str | Path):
        super().__init__(
            f"WAL at {path} resumes at seq {available} but the cursor has only "
            f"applied up to {needed - 1}; the gap was checkpointed away — "
            "re-seed from the primary snapshot"
        )
        self.needed = needed
        self.available = available


class WalCursor:
    """An offset-based incremental reader over one WAL file.

    Parameters
    ----------
    path:
        The WAL file to tail (may not exist yet).
    offset:
        Byte offset to resume from (0 for a fresh cursor; a persisted
        follower passes the offset it had reached).
    last_seq:
        Highest sequence number already consumed; records at or below it are
        skipped (the idempotence filter that makes truncation restarts and
        re-ships safe).
    """

    def __init__(self, path: str | Path, offset: int = 0, last_seq: int = 0):
        self.path = Path(path)
        self.offset = int(offset)
        self.last_seq = int(last_seq)
        self.truncation_restarts = 0
        self.segment_rollovers = 0
        #: Sealed segments with index below this are fully consumed (or were
        #: skipped as already-applied history).  Deliberately NOT part of
        #: :meth:`state`: a re-created cursor rescans the sealed directory and
        #: the seq filter makes the rescan idempotent.
        self._next_sealed = 0

    def poll(self, max_records: int | None = None) -> list[dict[str, Any]]:
        """Return the complete, unseen records appended since the last poll.

        Sealed segments (a checkpoint rotated the active log out from under
        us) are drained first, in seal order; rollover is ordinary operation,
        not a gap.  Never consumes a torn active tail; raises
        :class:`WalCorruptionError` for mid-file damage and
        :class:`ReplicationGapError` only when the records this cursor still
        needs were pruned away entirely.
        """
        records: list[dict[str, Any]] = []
        self._drain_sealed(records, max_records)
        if max_records is not None and len(records) >= max_records:
            return records
        if not self.path.exists():
            return records
        size = self.path.stat().st_size
        if size < self.offset:
            # Checkpoint truncated (or rewrote) the file under us; restart
            # and let the seq filter drop everything already applied.
            self.offset = 0
            self.truncation_restarts += 1
        if size == self.offset:
            return records
        with self.path.open("rb") as handle:
            handle.seek(self.offset)
            raw = handle.read()
        consumed = 0
        scan = 0
        while True:
            newline = raw.find(b"\n", scan)
            if newline < 0:
                break  # incomplete final line: the torn tail, never consumed
            line = raw[scan:newline]
            record = parse_record(line)
            if record is None:
                if raw.find(b"\n", newline + 1) < 0:
                    # The damaged line is the final one in the file; treat it
                    # like a torn tail (a crash can flush a partial line that
                    # happens to end in a newline).  Do not consume it: the
                    # writer reopening the log truncates it away, at which
                    # point the shrink-restart path takes over.
                    break
                if self._has_unseen_sealed():
                    # A seal raced this poll: the bytes at our offset belong
                    # to a different (fresh) active file.  Consume nothing;
                    # the next poll drains the new sealed segment first and
                    # resets the offset.
                    break
                raise WalCorruptionError(
                    f"unreadable WAL record before the tail of {self.path} "
                    f"(byte offset {self.offset + scan})"
                )
            scan = newline + 1
            if record["seq"] <= self.last_seq:
                consumed = scan  # already applied; safe to skip past
                continue
            if record["seq"] > self.last_seq + 1:
                if self._has_unseen_sealed():
                    break  # the missing records are in a just-sealed segment
                # The records between last_seq and this one are in no file
                # (pruned away before this cursor saw them, or the cursor was
                # pointed at a log whose snapshot it never loaded).
                raise ReplicationGapError(self.last_seq + 1, record["seq"], self.path)
            records.append(record)
            self.last_seq = record["seq"]
            consumed = scan
            if max_records is not None and len(records) >= max_records:
                break
        self.offset += consumed
        return records

    def _has_unseen_sealed(self) -> bool:
        for candidate in sealed_segment_paths(self.path):
            index = segment_index(self.path, candidate)
            if index is not None and index >= self._next_sealed:
                return True
        return False

    def _drain_sealed(self, out: list[dict[str, Any]], max_records: int | None) -> None:
        """Replay sealed segments this cursor has not fully consumed yet.

        Sealed files are immutable and end on a complete line, so a torn or
        damaged line inside one is real corruption.  A segment whose final
        sequence number is at or below ``last_seq`` is skipped from its tail
        alone.  Fully consuming a segment resets ``offset`` to 0: the active
        path now names a file younger than everything just replayed.
        """
        for segment in sealed_segment_paths(self.path):
            index = segment_index(self.path, segment)
            if index is None or index < self._next_sealed:
                continue
            if max_records is not None and len(out) >= max_records:
                return  # resume this segment next poll; the seq filter dedups
            if _last_seq_in(segment) <= self.last_seq:
                self._next_sealed = index + 1
                self.offset = 0
                continue
            raw = segment.read_bytes()
            scan = 0
            while scan < len(raw):
                if max_records is not None and len(out) >= max_records:
                    return
                newline = raw.find(b"\n", scan)
                if newline < 0:
                    raise WalCorruptionError(
                        f"sealed WAL segment {segment} has a torn tail; sealed "
                        "history must be whole"
                    )
                record = parse_record(raw[scan:newline])
                if record is None:
                    raise WalCorruptionError(
                        f"unreadable record in sealed WAL segment {segment} "
                        f"(byte offset {scan})"
                    )
                scan = newline + 1
                if record["seq"] <= self.last_seq:
                    continue
                if record["seq"] > self.last_seq + 1:
                    # Sealed history resumes above what we need: the segments
                    # in between were pruned before this cursor saw them.
                    raise ReplicationGapError(self.last_seq + 1, record["seq"], segment)
                out.append(record)
                self.last_seq = record["seq"]
            self._next_sealed = index + 1
            self.segment_rollovers += 1
            self.offset = 0

    def state(self) -> dict[str, int]:
        """The resumable cursor position (offset + seq high-water mark)."""
        return {"offset": self.offset, "last_seq": self.last_seq}


# -- shipment codec ------------------------------------------------------------


def encode_shipment(records: list[dict[str, Any]]) -> bytes:
    """Encode records as a self-contained JSONL shipment datagram."""
    return "".join(encode_record(record) + "\n" for record in records).encode("utf-8")


def decode_shipment(
    payload: bytes, last_seq: int = 0
) -> tuple[list[dict[str, Any]], bool]:
    """Parse a shipment; returns ``(records, torn_tail)``.

    Tolerates exactly one torn record at the end (a transit tear — the
    shipper re-ships it whole next round, so losing it here is safe).
    Damage anywhere earlier raises :class:`WalCorruptionError`, and records
    must advance strictly past *last_seq* and each other — a shipment that
    rewinds the sequence is a double-apply attempt, not a retry.
    """
    records: list[dict[str, Any]] = []
    torn = False
    previous = last_seq
    lines = payload.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    last = len(lines) - 1
    for position, line in enumerate(lines):
        record = parse_record(line)
        if record is None:
            if position == last:
                torn = True
                break
            raise WalCorruptionError("unreadable record before the tail of a shipment")
        if record["seq"] <= previous:
            raise WalCorruptionError(
                f"shipment seq {record['seq']} does not advance past {previous} "
                "(stale or duplicated history rejected)"
            )
        previous = record["seq"]
        records.append(record)
    return records, torn
