"""WAL-shipping replication: one primary, N read replicas, fenced failover.

:class:`ReplicatedGraphittiService` composes the pieces of this package into
the deployment shape the serving layer was missing:

* **writes** go to the primary :class:`~repro.service.GraphittiService`
  exactly as before — lock, WAL append, acknowledgement;
* a **shipper** tails the primary's WAL through a
  :class:`~repro.replica.tailer.WalCursor` per follower and ships new
  records as self-contained datagrams; each
  :class:`~repro.replica.follower.ReplicaFollower` applies them through the
  recovery codec and persists them verbatim, so its ``applied_seq`` frontier
  is exactly a prefix of acknowledged primary history;
* **reads** route to followers under a *bounded-staleness* contract: a read
  needing ``min_seq`` is admitted on any follower whose frontier covers it,
  retries with exponential backoff until a deadline, and finally degrades
  gracefully to the primary rather than failing;
* **failover** is *fenced*: when the primary misses enough heartbeat ticks,
  the old primary is fenced (its write path refuses forever), every follower
  is drained from the primary's on-disk WAL — durable acknowledged history
  survives the process that wrote it — the most-caught-up follower is
  promoted under a bumped **term** recorded in the replication manifest, and
  both the term check on shipments and the append-time seq-fencing guard
  reject anything a zombie primary still tries to ship.

The topology lives in one directory::

    <root>/
      replication.json   # {"term": t, "primary": <dir>, "replicas": [...]}
      primary/           # the initial primary's snapshot + WAL
      replica-00/ ...    # one durable service directory per follower
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.core.annotation import Annotation
from repro.core.builder import AnnotationBuilder
from repro.core.manager import Graphitti
from repro.errors import ServiceError
from repro.obs import Observability, merge_observability
from repro.query.result import QueryResult
from repro.replica.follower import ReplicaFollower
from repro.replica.tailer import ReplicationGapError, WalCursor, encode_shipment
from repro.service.durability import SNAPSHOT_FILE, WAL_FILE, peek_snapshot_wal_seq
from repro.service.service import GraphittiService, ServiceConfig
from repro.service.wal import fsync_dir

import json
import os
import zlib

#: Topology + term manifest written next to the role directories.
REPLICATION_MANIFEST = "replication.json"

#: Directory of the initial primary.
PRIMARY_DIR = "primary"


def replica_dir_name(index: int) -> str:
    """The on-disk directory name of follower *index*."""
    return f"replica-{index:02d}"


def read_replication_manifest(root: str | Path) -> dict[str, Any] | None:
    """The replication manifest at *root*, or None when the root has none."""
    path = Path(root) / REPLICATION_MANIFEST
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def write_replication_manifest(root: str | Path, manifest: dict[str, Any]) -> Path:
    """Atomically persist the manifest (temp + fsync + rename + dir fsync).

    The manifest carries the **term** — the one fact a post-crash open must
    never read torn, because it decides which directory is allowed to
    acknowledge writes.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / REPLICATION_MANIFEST
    tmp = path.with_suffix(".json.tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(root)
    return path


@dataclass
class ReplicationConfig:
    """Tunables of one :class:`ReplicatedGraphittiService`."""

    #: Seconds between background ship pumps (ignored when auto_ship=False).
    ship_interval: float = 0.02
    #: Run the shipper in a background thread; False means the caller pumps
    #: via :meth:`ReplicatedGraphittiService.ship` (deterministic test mode —
    #: bounded-staleness reads still pump inline while they wait).
    auto_ship: bool = True
    #: Seconds between failure-detector ticks (ignored when auto_failover=False).
    heartbeat_interval: float = 0.05
    #: Consecutive missed heartbeats before the lease is considered lost.
    lease_ticks: int = 3
    #: Run the failure detector in a background thread; False means the
    #: caller ticks via :meth:`ReplicatedGraphittiService.tick` (deterministic
    #: test mode) or promotes explicitly.
    auto_failover: bool = False
    #: First retry delay of a bounded-staleness read that found no follower
    #: caught up to its min_seq.
    read_backoff: float = 0.002
    #: Exponential backoff multiplier between read retries.
    read_backoff_multiplier: float = 2.0
    #: Total seconds a read waits for a follower before degrading to primary.
    read_deadline: float = 0.25
    #: Default read consistency: "eventual" (any follower), "fresh" (follower
    #: caught up to the last acknowledged write), or "primary".
    default_read: str = "eventual"
    #: Max records per shipment datagram.
    ship_batch: int = 512


class ReplicatedGraphittiService:
    """Primary + N followers behind one service facade.

    Construct with :meth:`open` (fresh or existing root) or :meth:`recover`
    (post-crash, optionally declaring the primary dead).  The facade keeps
    the single-service surface — ``query``/``commit``/``bulk_commit``/... —
    plus the replication verbs: ``ship``, ``tick``, ``promote``,
    ``failover``.
    """

    def __init__(
        self,
        root: str | Path,
        primary: GraphittiService | None,
        primary_dir: str,
        followers: list[ReplicaFollower],
        term: int,
        replica_dirs: list[str],
        replication: ReplicationConfig | None = None,
    ):
        self.root = Path(root)
        self.replication = replication or ReplicationConfig()
        self._primary = primary
        self._primary_dir = primary_dir
        self._followers = followers
        self._term = term
        self._dirs = replica_dirs  # every role directory, primary included
        self._primary_dead = primary is None
        self._missed_heartbeats = 0
        self._promotions = 0
        self._closed = False
        # One mutex serializes the shipper, failover and checkpoint — the
        # three places that move cursors or change who the primary is.
        self._ship_mutex = threading.RLock()
        self._cursors: dict[str, WalCursor] = {}
        self._pending: dict[str, list[dict[str, Any]]] = {}
        for follower in followers:
            self._reset_cursor(follower)
        self._rr = 0  # round-robin position of the follower read pool
        self._reads = {"replica": 0, "primary": 0, "degraded": 0, "retries": 0}
        # The facade's own registry records shipment spans and fleet
        # counters; per-role registries live in the primary/follower
        # services and merge into metrics().  Observability config follows
        # the primary's (or, primary dead, a follower's) ServiceConfig.
        obs_source = primary if primary is not None else (
            followers[0].service if followers else None
        )
        self.obs = Observability(
            getattr(getattr(obs_source, "config", None), "observability", None)
        )
        self._ships = 0
        self._records_shipped = 0
        self._reseeds = 0
        self.last_ship_error: Exception | None = None
        #: Injectable transit-tear hook (fault harness): maps an encoded
        #: shipment to the (possibly truncated) bytes actually "delivered".
        self.ship_tear_hook: Callable[[str, bytes], bytes] | None = None
        self._stop = threading.Event()
        self._ship_thread: threading.Thread | None = None
        self._monitor_thread: threading.Thread | None = None
        if self.replication.auto_ship:
            self._ship_thread = threading.Thread(
                target=self._ship_loop, name="graphitti-shipper", daemon=True
            )
            self._ship_thread.start()
        if self.replication.auto_failover:
            self._monitor_thread = threading.Thread(
                target=self._monitor_loop, name="graphitti-failure-detector", daemon=True
            )
            self._monitor_thread.start()

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open(
        cls,
        root: str | Path,
        replicas: int | None = None,
        config: ServiceConfig | None = None,
        replication: ReplicationConfig | None = None,
        manager_factory: Callable[[], Graphitti] | None = None,
    ) -> "ReplicatedGraphittiService":
        """Open (or create) a replicated deployment at *root*.

        A fresh root needs *replicas*; an existing root's topology comes from
        its manifest, and a conflicting explicit *replicas* is refused (the
        manifest is the durable truth — silently re-sharding the read pool
        would orphan follower state).
        """
        root = Path(root)
        manifest = read_replication_manifest(root)
        if manifest is not None:
            manifest_followers = [d for d in manifest["replicas"] if d != manifest["primary"]]
            if replicas is not None and replicas != len(manifest_followers):
                raise ServiceError(
                    f"deployment at {root} has {len(manifest_followers)} replicas "
                    f"per its manifest; refusing to open with replicas={replicas}"
                )
            term = int(manifest["term"])
            primary_dir = manifest["primary"]
            dirs = list(manifest["replicas"])
        else:
            if replicas is None:
                replicas = 2
            if replicas < 0:
                raise ServiceError(f"replicas must be non-negative, got {replicas}")
            term = 1
            primary_dir = PRIMARY_DIR
            dirs = [PRIMARY_DIR] + [replica_dir_name(i) for i in range(replicas)]
            write_replication_manifest(
                root, {"version": 1, "term": term, "primary": primary_dir, "replicas": dirs}
            )
        primary = GraphittiService.open(
            root / primary_dir, config=config, manager_factory=manager_factory
        )
        followers = [
            ReplicaFollower(
                root / name,
                name=name,
                config=replace(config) if config is not None else None,
                term=term,
            )
            for name in dirs
            if name != primary_dir
        ]
        return cls(
            root,
            primary,
            primary_dir,
            followers,
            term,
            dirs,
            replication=replication,
        )

    @classmethod
    def recover(
        cls,
        root: str | Path,
        config: ServiceConfig | None = None,
        replication: ReplicationConfig | None = None,
        assume_primary_dead: bool = False,
    ) -> "ReplicatedGraphittiService":
        """Reopen an existing deployment after a crash.

        With ``assume_primary_dead=True`` the primary's *process state* is
        declared unrecoverable: its directory is only read as a shipping
        source (acknowledged history is durable there) and the caller is
        expected to :meth:`failover` — the crash-smoke drill.  Its WAL may
        end in a torn record (the crash signature); the cursor-based drain
        tolerates exactly that.
        """
        root = Path(root)
        manifest = read_replication_manifest(root)
        if manifest is None:
            raise ServiceError(f"no replication manifest at {root}; nothing to recover")
        term = int(manifest["term"])
        primary_dir = manifest["primary"]
        dirs = list(manifest["replicas"])
        primary = None
        if not assume_primary_dead:
            primary = GraphittiService.open(root / primary_dir, config=config)
        followers = [
            ReplicaFollower(
                root / name,
                name=name,
                config=replace(config) if config is not None else None,
                term=term,
            )
            for name in dirs
            if name != primary_dir
        ]
        return cls(
            root,
            primary,
            primary_dir,
            followers,
            term,
            dirs,
            replication=replication,
        )

    def close(self) -> None:
        """Drain the shipper, stop the threads, close every role."""
        if self._closed:
            return
        self._stop.set()
        for thread in (self._ship_thread, self._monitor_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        with self._ship_mutex:
            if self._primary is not None and not self._primary_dead:
                try:
                    self.ship()
                except ServiceError:
                    pass  # a poisoned WAL still closes; followers keep what shipped
            for follower in self._followers:
                follower.close()
            if self._primary is not None:
                try:
                    self._primary.close()
                except OSError:
                    # A device refusing the close-time sync loses nothing
                    # acknowledged (every acked record was fsynced at append
                    # time); shutdown must still release the other roles.
                    pass
        self._closed = True

    def __enter__(self) -> "ReplicatedGraphittiService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- identity / compatibility surface --------------------------------------

    @property
    def term(self) -> int:
        return self._term

    @property
    def primary(self) -> GraphittiService | None:
        return self._primary

    @property
    def primary_name(self) -> str:
        return self._primary_dir

    @property
    def followers(self) -> list[ReplicaFollower]:
        return list(self._followers)

    @property
    def manager(self) -> Graphitti:
        """The primary's manager (the authoritative live state)."""
        return self._primary_for_write().manager

    @property
    def config(self) -> ServiceConfig:
        return self._require_primary().config

    @property
    def recovery_info(self) -> dict[str, Any] | None:
        return self._require_primary().recovery_info

    @property
    def _store(self):
        # The sharded router introspects shard._store for durability facts;
        # a replicated shard answers with its primary's store.
        return self._require_primary()._store  # noqa: SLF001

    def _require_primary(self) -> GraphittiService:
        if self._primary is None:
            raise ServiceError(
                "no live primary (crash recovery opened this deployment with "
                "assume_primary_dead); run failover()/promote() first"
            )
        return self._primary

    def _primary_for_write(self) -> GraphittiService:
        primary = self._require_primary()
        if self._primary_dead:
            raise ServiceError(
                "primary is unavailable and failover has not promoted a "
                "replacement yet; writes are refused to protect acknowledged history"
            )
        return primary

    @property
    def last_acked_seq(self) -> int:
        """The highest acknowledged (WAL-durable) primary sequence number."""
        if self._primary is not None:
            return self._primary.last_wal_seq
        return max((f.applied_seq for f in self._followers), default=0)

    # -- the shipping pipeline -------------------------------------------------

    def _primary_root(self) -> Path:
        return self.root / self._primary_dir

    def _reset_cursor(self, follower: ReplicaFollower) -> None:
        self._cursors[follower.name] = WalCursor(
            self._primary_root() / WAL_FILE, offset=0, last_seq=follower.applied_seq
        )
        self._pending[follower.name] = []

    def ship(self) -> int:
        """One shipping pump over every follower; returns records applied.

        Safe to call concurrently with the background shipper (one mutex
        serializes pumps) and deliberately callable with the primary
        *process* dead — the WAL file is the replication source, which is
        exactly why acknowledged writes survive failover.
        """
        applied = 0
        with self._ship_mutex:
            for follower in list(self._followers):
                applied += self._pump_follower(follower)
        return applied

    def _pump_follower(self, follower: ReplicaFollower) -> int:
        """Ship one datagram to one follower; returns records newly applied."""
        cursor = self._cursors[follower.name]
        pending = self._pending[follower.name]
        try:
            fresh = cursor.poll(max_records=self.replication.ship_batch)
        except ReplicationGapError:
            self._reseed_follower(follower)
            return 0
        records = pending + fresh
        if not records:
            if follower.applied_seq < self._snapshot_base_seq():
                # The records this follower still needs predate the primary's
                # snapshot: they can never arrive from the WAL (an empty log
                # after a checkpoint hides the gap ReplicationGapError would
                # otherwise flag).  Re-seed now; the tail ships next pump.
                self._reseed_follower(follower)
            return 0
        # Only shipping rounds that carry records are traced — the idle
        # background pump would otherwise dominate the span histogram.
        with self.obs.span("replication.ship") as span:
            span.set("follower", follower.name)
            span.set("records", len(records))
            payload = encode_shipment(records)
            if self.ship_tear_hook is not None:
                payload = self.ship_tear_hook(follower.name, payload)
            before = follower.applied_seq
            try:
                applied_seq = follower.apply_shipment(payload, self._term)
            except ReplicationGapError:
                self._reseed_follower(follower)
                return 0
            # Anything the follower did not apply (a transit tear dropped the
            # datagram's tail, or a stall hook swallowed the round) stays
            # pending and is re-shipped whole next pump — the cursor never
            # rewinds.
            self._pending[follower.name] = [r for r in records if r["seq"] > applied_seq]
            self._ships += 1
            newly = max(0, applied_seq - before)
            self._records_shipped += newly
            span.set("applied", newly)
        self.obs.count("replication.records_shipped", newly)
        return newly

    def _snapshot_base_seq(self) -> int:
        """The ``wal_seq`` of the primary's current snapshot (0 when none).

        Records at or below it are never in the primary's WAL — a follower
        behind this mark needs a snapshot re-seed, not more polling.
        """
        snapshot_path = self._primary_root() / SNAPSHOT_FILE
        if not snapshot_path.exists():
            return 0
        try:
            return peek_snapshot_wal_seq(snapshot_path)
        except (OSError, ValueError, json.JSONDecodeError):
            return 0

    def _reseed_follower(self, follower: ReplicaFollower) -> None:
        """Gap recovery: re-seed one follower from the primary's snapshot."""
        snapshot_path = self._primary_root() / SNAPSHOT_FILE
        if not snapshot_path.exists():
            raise ServiceError(
                f"replica {follower.name} needs records the WAL no longer holds "
                f"and {snapshot_path} does not exist; cannot re-seed"
            )
        with snapshot_path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        follower.reseed(payload)
        self._reset_cursor(follower)
        self._reseeds += 1

    def _ship_loop(self) -> None:
        while not self._stop.wait(self.replication.ship_interval):
            try:
                self.ship()
            except Exception as exc:  # noqa: BLE001 - surfaced via stats, not a dead thread
                self.last_ship_error = exc

    # -- bounded-staleness read routing ----------------------------------------

    def _required_seq(self, min_seq: int | None, consistency: str | None) -> int:
        if min_seq is not None:
            return min_seq
        mode = consistency or self.replication.default_read
        if mode == "fresh":
            return self.last_acked_seq
        return 0

    def _pick_follower(self, need: int, affinity: int | None = None) -> ReplicaFollower | None:
        followers = list(self._followers)
        if not followers:
            return None
        start = self._rr if affinity is None else affinity % len(followers)
        for attempt in range(len(followers)):
            candidate = followers[(start + attempt) % len(followers)]
            if candidate.applied_seq >= need:
                if affinity is None:
                    self._rr = (start + attempt + 1) % len(followers)
                return candidate
        return None

    def _read_replica(self, need: int, affinity: int | None = None) -> ReplicaFollower | None:
        """A follower admitted for a read needing *need*, waiting per config.

        Retries with exponential backoff until the read deadline, pumping
        the shipper inline on each miss so a waiting read makes progress
        instead of spinning.  Returns None when the deadline expires — the
        caller degrades to the primary.
        """
        rc = self.replication
        deadline = time.monotonic() + rc.read_deadline
        delay = rc.read_backoff
        while True:
            candidate = self._pick_follower(need, affinity)
            if candidate is not None:
                return candidate
            # Pump the pipeline inline instead of only sleeping: the read
            # itself can ship the records it is waiting for (and in manual
            # ship mode this is the only way a waiting read makes progress).
            try:
                self.ship()
            except ServiceError:
                pass  # e.g. reseed without snapshot; the primary still serves
            candidate = self._pick_follower(need, affinity)
            if candidate is not None:
                return candidate
            if time.monotonic() + delay > deadline:
                return None
            self._reads["retries"] += 1
            time.sleep(delay)
            delay *= rc.read_backoff_multiplier

    def query(
        self,
        text_or_query,
        min_seq: int | None = None,
        consistency: str | None = None,
    ) -> QueryResult:
        """Run a GQL query under the bounded-staleness read contract.

        ``consistency`` is "eventual", "fresh" or "primary" (default from
        :class:`ReplicationConfig`); ``min_seq`` pins an explicit frontier
        instead (read-your-writes: pass the seq your write acknowledged
        with).  The read waits (backoff + deadline) for a follower to catch
        up, then degrades to the primary rather than failing.

        Textual queries route with *query affinity*: the query text hashes
        to a preferred follower, so each follower's result cache owns a
        disjoint slice of the hot query set and a shipment's epoch bump
        re-executes each hot query once across the fleet instead of once
        per follower.  A lagging preferred follower falls through to the
        next one — affinity is a cache hint, never a consistency rule.
        """
        mode = consistency or self.replication.default_read
        need = self._required_seq(min_seq, consistency)
        if mode != "primary" and self._followers:
            affinity = None
            if isinstance(text_or_query, str):
                affinity = zlib.crc32(text_or_query.encode("utf-8"))
            follower = self._read_replica(need, affinity)
            if follower is not None:
                self._reads["replica"] += 1
                return follower.query(text_or_query)
            self._reads["degraded"] += 1
        if self._primary is not None:
            self._reads["primary"] += 1
            return self._primary.query(text_or_query)
        # No primary (declared dead) and no follower met the frontier: serve
        # the most-caught-up follower — graceful degradation, never a refusal.
        best = max(self._followers, key=lambda f: f.applied_seq, default=None)
        if best is None:
            raise ServiceError("no primary and no followers to serve reads")
        self._reads["degraded"] += 1
        return best.query(text_or_query)

    # -- write surface (primary delegation) ------------------------------------

    def register_ontology(self, ontology, cache: bool = True):
        return self._primary_for_write().register_ontology(ontology, cache=cache)

    def register(self, obj, raw: bytes | None = None, **metadata: Any):
        return self._primary_for_write().register(obj, raw=raw, **metadata)

    def reserve_annotation_id(self) -> str:
        return self._primary_for_write().reserve_annotation_id()

    def new_annotation(self, *args: Any, **kwargs: Any) -> AnnotationBuilder:
        builder = self._primary_for_write().new_annotation(*args, **kwargs)
        builder._manager = self  # noqa: SLF001 - route the builder's commit here
        return builder

    def commit(self, annotation: Annotation | AnnotationBuilder) -> Annotation:
        return self._primary_for_write().commit(annotation)

    def bulk_commit(self, annotations) -> list[Annotation]:
        return self._primary_for_write().bulk_commit(annotations)

    def delete_annotation(self, annotation_id: str) -> None:
        self._primary_for_write().delete_annotation(annotation_id)

    def update_annotation(self, annotation_id: str, changes: dict[str, Any]):
        return self._primary_for_write().update_annotation(annotation_id, changes)

    def delete_object(self, object_id: str, cascade: bool = True) -> list[str]:
        return self._primary_for_write().delete_object(object_id, cascade=cascade)

    def checkpoint(self) -> None:
        """Checkpoint the whole deployment at a replication quiesce point.

        Drains the shipper first so the primary's WAL truncation cannot open
        a gap under any cursor, then checkpoints primary and followers.
        """
        with self._ship_mutex:
            self.ship()
            self._require_primary().checkpoint()
            for follower in self._followers:
                follower.checkpoint()

    def compact(self) -> dict[str, Any]:
        """Compact the primary's column storage at a replication quiesce point.

        Ships first under the mutex (same discipline as :meth:`checkpoint`) so
        the segment pruning inside the primary's compaction cannot open a gap
        under a cursor; followers compact their own storage afterwards.
        """
        with self._ship_mutex:
            self.ship()
            report = self._require_primary().compact()
            for follower in self._followers:
                follower.service.compact()
            return report

    # -- read passthroughs (primary-coherent) -----------------------------------

    def explain(self, text_or_query):
        return self._read_service().explain(text_or_query)

    def annotation(self, annotation_id: str) -> Annotation:
        return self._read_service().annotation(annotation_id)

    def search_by_keyword(self, keyword: str, mode: str = "and") -> list[str]:
        return self._read_service().search_by_keyword(keyword, mode=mode)

    def search_by_ontology(self, term: str, **kwargs: Any) -> list[str]:
        return self._read_service().search_by_ontology(term, **kwargs)

    def related_annotations(self, annotation_id: str) -> list[str]:
        return self._read_service().related_annotations(annotation_id)

    def annotations_on_object(self, object_id: str) -> list[str]:
        return self._read_service().annotations_on_object(object_id)

    def check_integrity(self):
        return self._read_service().check_integrity()

    @property
    def annotation_count(self) -> int:
        return self._read_service().annotation_count

    def resolve_ontology_term(self, text: str) -> str:
        return self._read_service().resolve_ontology_term(text)

    def data_object(self, object_id: str):
        return self._read_service().data_object(object_id)

    def _read_service(self):
        """Point reads stay primary-coherent while a primary exists."""
        if self._primary is not None:
            return self._primary
        best = max(self._followers, key=lambda f: f.applied_seq, default=None)
        if best is None:
            raise ServiceError("no primary and no followers to serve reads")
        return best

    # -- failure detection and fenced failover ----------------------------------

    def primary_alive(self) -> bool:
        """Whether the primary can still acknowledge writes."""
        primary = self._primary
        return (
            primary is not None
            and not self._primary_dead
            and not primary._closed  # noqa: SLF001 - liveness probe
            and not primary._wal_failed  # noqa: SLF001
            and not primary.fenced
        )

    def mark_primary_dead(self) -> None:
        """Declare the primary unable to acknowledge writes (fault injection
        and external supervisors both land here)."""
        self._primary_dead = True

    def tick(self) -> bool:
        """One deterministic failure-detector step; True when it failed over.

        A healthy tick resets the missed-heartbeat count (a lease renewal);
        ``lease_ticks`` consecutive misses lose the lease and trigger
        :meth:`failover`.
        """
        if self.primary_alive():
            self._missed_heartbeats = 0
            return False
        self._missed_heartbeats += 1
        if self._missed_heartbeats < self.replication.lease_ticks:
            return False
        if not self._followers:
            return False  # nothing to promote; writes stay refused
        self.failover()
        return True

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.replication.heartbeat_interval):
            try:
                self.tick()
            except Exception as exc:  # noqa: BLE001
                self.last_ship_error = exc

    def failover(self) -> dict[str, Any]:
        """Promote the most-caught-up follower (see :meth:`promote`)."""
        return self.promote()

    def promote(self, target: str | None = None) -> dict[str, Any]:
        """Fence the old primary and promote a follower under a new term.

        Steps, in order: fence the old primary (no write it acknowledges
        after this point exists); drain every follower from the primary's
        on-disk WAL — the durable acknowledged history — tolerating only a
        torn (never-acknowledged) tail record; pick *target* (default: the
        most-caught-up follower); bump the term and persist it in the
        manifest **before** serving writes; re-point the remaining followers
        at the new primary's WAL.  Returns a promotion report.
        """
        with self._ship_mutex:
            if not self._followers:
                raise ServiceError("no followers to promote")
            old_primary = self._primary
            if old_primary is not None:
                old_primary.fence()
            # Drain acknowledged history out of the old primary's WAL.  Loop
            # until a full quiet pump: a reseed or a torn shipment can leave
            # records for the next round.
            while True:
                moved = 0
                for follower in list(self._followers):
                    moved += self._pump_follower(follower)
                if not moved:
                    break
            if target is None:
                winner = max(self._followers, key=lambda f: f.applied_seq)
            else:
                matches = [f for f in self._followers if f.name == target]
                if not matches:
                    raise ServiceError(f"no follower named {target!r} to promote")
                winner = matches[0]
                best = max(f.applied_seq for f in self._followers)
                if winner.applied_seq < best:
                    raise ServiceError(
                        f"refusing to promote {target!r} at seq {winner.applied_seq}: "
                        f"another follower has applied {best}; promoting a lagging "
                        "follower would lose acknowledged writes"
                    )
            old_dir = self._primary_dir
            old_seq = old_primary.last_wal_seq if old_primary is not None else None
            self._term += 1
            self._followers.remove(winner)
            del self._cursors[winner.name]
            del self._pending[winner.name]
            if old_primary is not None:
                try:
                    old_primary.close()
                except Exception:  # noqa: BLE001  # repro: allow-silent-except - funeral
                    # The node being discarded may sit on a dying device (a
                    # failing close-time fsync is how it got fenced in the
                    # first place); its funeral cannot abort the promotion.
                    pass
            self._primary = winner.service
            self._primary_dir = winner.name
            self._primary_dead = False
            self._missed_heartbeats = 0
            self._promotions += 1
            for follower in self._followers:
                follower.term = self._term
                self._reset_cursor(follower)
            write_replication_manifest(
                self.root,
                {
                    "version": 1,
                    "term": self._term,
                    "primary": self._primary_dir,
                    "replicas": self._dirs,
                    "demoted": old_dir,
                },
            )
            return {
                "term": self._term,
                "primary": self._primary_dir,
                "demoted": old_dir,
                "promoted_at_seq": winner.applied_seq,
                "old_primary_seq": old_seq,
            }

    # -- statistics -------------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """Primary statistics plus a ``"replication"`` section."""
        base = self._read_service().statistics()
        base["replication"] = self.replication_stats()
        return base

    def replication_stats(self) -> dict[str, Any]:
        acked = self.last_acked_seq
        return {
            "term": self._term,
            "primary": self._primary_dir,
            "primary_alive": self.primary_alive(),
            "last_acked_seq": acked,
            "followers": [
                {
                    "name": f.name,
                    "applied_seq": f.applied_seq,
                    "lag": f.lag(acked),
                    "reseeds": f.reseeds,
                }
                for f in self._followers
            ],
            "reads": dict(self._reads),
            "ships": self._ships,
            "records_shipped": self._records_shipped,
            "reseeds": self._reseeds,
            "promotions": self._promotions,
        }

    def metrics(self) -> dict[str, Any]:
        """Fleet-wide observability snapshot: facade + primary + followers.

        Counters/gauges sum and histograms add buckets across every role's
        registry (the primary's mutation path, each follower's read/apply
        path, and the facade's shipment spans), matching the aggregation
        contract of :meth:`statistics`.  ``per_role`` keeps each role's own
        snapshot reachable.
        """
        per_role: dict[str, dict[str, Any]] = {}
        if self._primary is not None:
            per_role[self._primary_dir] = self._primary.metrics()
        for follower in self._followers:
            per_role[follower.name] = follower.service.metrics()
        snapshots = [self.obs.snapshot()] + list(per_role.values())
        merged = merge_observability(snapshots)
        if merged.get("enabled"):
            merged["per_role"] = per_role
        return merged

    def slow_ops(self) -> list[dict[str, Any]]:
        """Slow-op entries across the facade and every role (oldest first)."""
        entries = []
        if self.obs.enabled:
            entries.extend(self.obs.slow_log.entries())
        roles: list[tuple[str, GraphittiService]] = []
        if self._primary is not None:
            roles.append((self._primary_dir, self._primary))
        roles.extend((follower.name, follower.service) for follower in self._followers)
        for name, service in roles:
            for entry in service.slow_ops():
                attributed = dict(entry)
                attributed["role"] = name
                entries.append(attributed)
        entries.sort(key=lambda entry: entry.get("recorded_at", 0.0))
        return entries
