"""Deterministic fault injection for the replication pipeline.

Every interesting replication bug lives in a narrow window — the fsync that
fails at the acknowledgement point, the datagram torn mid-record, the
follower that silently stops applying, the primary that dies *after* the WAL
append but *before* the client sees the ack.  This module makes those
windows schedulable: a :class:`FaultSchedule` is a list of rules of the form
"at the Nth occurrence of fault point P (optionally against target T), fire
for C occurrences", evaluated against monotonically counted occurrences — no
wall clock, no randomness at evaluation time, so a failing matrix entry
replays identically every run.

Fault points:

``wal.fsync``
    The primary WAL's fsync raises ``OSError`` (full disk / dying device) at
    exactly the durability point.  The serving layer's existing poisoning
    takes over: the op is not acknowledged and the primary refuses further
    writes, which the failure detector reads as a dead primary.
``primary.kill_after_append``
    The primary "dies" in the append→ack window: the record is durable in
    its WAL but the caller gets :class:`PrimaryCrashed` instead of an ack.
    The write is *allowed* (not required) to survive failover — the
    classical indeterminacy of a crash at that point.
``ship.tear``
    The shipment datagram to one follower is truncated mid-record in
    transit.  The follower drops the torn record; the shipper re-ships it
    whole next pump.
``follower.stall``
    One follower's apply loop does nothing for C rounds (GC pause, disk
    stall); its ``applied_seq`` freezes and bounded-staleness reads route
    around it.

Network fault points (the ``repro.net`` RPC layer; installed client-side
via :meth:`FaultSchedule.install_network`, with the shard client's name —
``shard-0`` etc. — as the target):

``net.refused``
    Dialing the worker fails with ``ConnectionRefusedError`` (worker dead,
    listener not yet bound).  The request was never delivered.
``net.tear``
    The request frame is torn mid-send: the worker reads a partial frame,
    drops the connection, and never executes the op.
``net.blackhole``
    The request vanishes in transit — never delivered, and the client burns
    its full read deadline before timing out.
``net.slow``
    Slow-loris response: the worker *executed* the op but the reply misses
    the client deadline.  The retry (same idempotency key) must dedup.

The fifth network fault — worker SIGKILL between WAL apply and ack — is a
process-level fault, armed with the ``REPRO_NET_KILL_AFTER_APPLY``
environment variable on the worker (see :mod:`repro.net.server`).

Schedules can also be *generated* deterministically from a seed
(:meth:`FaultSchedule.random`) to sweep the crash/failover matrix without
hand-writing every case.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServiceError
from repro.replica.replicated import ReplicatedGraphittiService

#: Network fault points evaluated by the RPC client (see
#: :meth:`FaultSchedule.install_network`).
NET_FAULT_POINTS = (
    "net.refused",
    "net.tear",
    "net.blackhole",
    "net.slow",
)

#: The schedulable fault points.
FAULT_POINTS = (
    "wal.fsync",
    "primary.kill_after_append",
    "ship.tear",
    "follower.stall",
) + NET_FAULT_POINTS


class PrimaryCrashed(ServiceError):
    """The injected crash in the WAL-append → acknowledgement window.

    The caller must treat the write as *indeterminate*: it was never
    acknowledged, but the record may be durable and may legitimately survive
    failover.  (Zero-acked-loss means every acknowledged write survives, not
    that unacknowledged ones vanish.)
    """


class InjectedFsyncError(OSError):
    """The injected device failure at the WAL durability point."""


@dataclass
class FaultRule:
    """Fire *point* (against *target*) on occurrences [at, at + count)."""

    point: str
    at: int
    target: str | None = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ServiceError(f"unknown fault point {self.point!r}; expected {FAULT_POINTS}")
        if self.at < 1:
            raise ServiceError("fault occurrences are 1-based; at must be >= 1")


@dataclass
class FaultSchedule:
    """A deterministic set of fault rules plus the occurrence counters."""

    rules: list[FaultRule] = field(default_factory=list)
    _occurrences: dict[tuple[str, str | None], int] = field(default_factory=dict)
    fired: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def random(
        cls,
        seed: int,
        points: tuple[str, ...] = FAULT_POINTS,
        targets: tuple[str | None, ...] = (None,),
        rules: int = 3,
        horizon: int = 20,
    ) -> "FaultSchedule":
        """A seed-derived schedule: same seed, same faults, every run."""
        rng = random.Random(seed)
        generated = [
            FaultRule(
                point=rng.choice(points),
                at=rng.randint(1, horizon),
                target=rng.choice(targets),
                count=rng.randint(1, 3),
            )
            for _ in range(rules)
        ]
        return cls(rules=generated)

    def fires(self, point: str, target: str | None = None) -> bool:
        """Count one occurrence of *point* against *target*; True to fire.

        Rules with ``target=None`` match any target; targeted rules count
        and match only their own target's occurrence stream.
        """
        key = (point, target)
        occurrence = self._occurrences.get(key, 0) + 1
        self._occurrences[key] = occurrence
        for rule in self.rules:
            if rule.point != point:
                continue
            if rule.target is not None and rule.target != target:
                continue
            if rule.at <= occurrence < rule.at + rule.count:
                self.fired.append(
                    {"point": point, "target": target, "occurrence": occurrence}
                )
                return True
        return False

    # -- installation -----------------------------------------------------------

    def install(self, replicated: ReplicatedGraphittiService) -> None:
        """Attach this schedule's hooks to a replicated deployment.

        Hooks attach to the *current* primary and followers; after a
        promotion the new primary starts clean (its hooks were never
        installed), which is exactly the post-failover reality — the faulty
        device died with the old primary.
        """
        primary = replicated.primary
        if primary is not None:
            self.install_primary(primary, replicated)
        replicated.ship_tear_hook = self._tear_hook
        for follower in replicated.followers:
            self.install_follower(follower)

    def install_primary(self, primary, replicated: ReplicatedGraphittiService | None = None) -> None:
        """Install the primary-side fault points (fsync failure, kill window)."""
        store = primary._store  # noqa: SLF001 - fault points live below the facade
        if store is not None:
            def fsync_hook(fd: int) -> None:
                if self.fires("wal.fsync"):
                    raise InjectedFsyncError(  # repro: allow-error-taxonomy - injected fault
                        "injected fsync failure at the durability point"
                    )
                os.fsync(fd)

            store.wal.fsync_hook = fsync_hook

        def after_append(op: str, seq: int) -> None:
            if self.fires("primary.kill_after_append"):
                if replicated is not None:
                    replicated.mark_primary_dead()
                raise PrimaryCrashed(
                    f"primary crashed after appending seq {seq} ({op}) but before "
                    "acknowledging it"
                )

        primary.after_append_hook = after_append

    def install_network(self, service) -> None:
        """Attach this schedule to every shard client of a network facade.

        The client evaluates the ``net.*`` points at its transport seams
        (dial, send, await-response) by calling :meth:`fires` with its own
        name (``shard-N``) as the target, so rules can hit one shard's
        stream or — with ``target=None`` — any shard's.
        """
        for client in service.shards:
            client.fault_hook = self.fires

    def install_follower(self, follower) -> None:
        """Install the follower-side stall point."""
        name = follower.name

        def stall_hook() -> bool:
            return self.fires("follower.stall", name)

        follower.stall_hook = stall_hook

    def _tear_hook(self, follower_name: str, payload: bytes) -> bytes:
        if self.fires("ship.tear", follower_name):
            return tear_payload(payload)
        return payload


def tear_payload(payload: bytes) -> bytes:
    """Truncate a shipment mid-way through its final record.

    Deterministic: cuts at the midpoint of the last record's line, leaving
    earlier records intact — the canonical partial-delivery shape the
    decoder must tolerate (and re-ship whole next round).
    """
    body = payload.rstrip(b"\n")
    if not body:
        return payload
    start = body.rfind(b"\n") + 1
    cut = start + max(1, (len(body) - start) // 2)
    return payload[:cut]
