"""A read replica of one served Graphitti instance.

A :class:`ReplicaFollower` owns a full :class:`~repro.service.GraphittiService`
of its own — manager, read/write lock, epoch-tagged result cache, and a
durable snapshot+WAL directory — but its *only* writer is the replication
pipeline: shipped primary WAL records are applied through the same
:func:`~repro.service.durability.apply_record` codec recovery uses, then
persisted **verbatim** (primary sequence numbers preserved) via
:meth:`~repro.service.wal.WriteAheadLog.append_record`.  Keeping the
primary's numbering is what makes every path idempotent: re-ships,
truncation restarts and post-crash replays all skip records at or below
``applied_seq``, and a record that *rewinds* the sequence is rejected by the
append-time seq-fencing guard instead of double-applying.

``applied_seq`` is the follower's consistency frontier: a query served here
reflects exactly the acknowledged primary history up to it.  The replicated
service admits bounded-staleness reads by comparing a required ``min_seq``
against it.

Followers are **term-aware**: every shipment carries the shipping primary's
term, and a shipment from an older term than the follower has seen is
refused (:class:`StaleTermError`) — the other half of zombie-primary
fencing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.core.manager import Graphitti
from repro.errors import ServiceError
from repro.replica.tailer import ReplicationGapError, decode_shipment
from repro.service.durability import SNAPSHOT_FILE, WAL_FILE, apply_record
from repro.service.service import GraphittiService, ServiceConfig
from repro.service.wal import fsync_dir, sealed_segment_paths

import json
import os

#: Ops whose replay can remove a-graph edges and stale the component index.
_STRUCTURAL_OPS = ("delete_annotation", "update_annotation", "delete_object")


class StaleTermError(ServiceError):
    """A shipment arrived from a primary whose term has been superseded.

    Raised when a fenced/zombie primary keeps shipping after a failover
    promoted a newer term.  The shipment is rejected wholesale — nothing is
    applied — so a zombie can never mutate a follower that has moved on.
    """

    def __init__(self, shipped_term: int, current_term: int):
        super().__init__(
            f"shipment carries term {shipped_term} but this follower already "
            f"follows term {current_term}; zombie-primary shipment rejected"
        )
        self.shipped_term = shipped_term
        self.current_term = current_term


class ReplicaFollower:
    """One read replica: a durable service whose writes are shipped records."""

    def __init__(
        self,
        root: str | Path,
        name: str | None = None,
        config: ServiceConfig | None = None,
        term: int = 1,
    ):
        self.root = Path(root)
        self.name = name if name is not None else self.root.name
        self.term = term
        self._config = config
        #: Injectable stall hook (fault harness): returns True when this
        #: follower's apply loop should do nothing this round.
        self.stall_hook: Callable[[], bool] | None = None
        self.service = GraphittiService.open(
            self.root,
            config=config,
            manager_factory=lambda: Graphitti(self.name),
        )
        self.reseeds = 0

    # -- replication state -----------------------------------------------------

    @property
    def applied_seq(self) -> int:
        """The acknowledged-history frontier this replica has applied."""
        return self.service.last_wal_seq

    @property
    def manager(self) -> Graphitti:
        return self.service.manager

    def lag(self, primary_seq: int) -> int:
        """Records this replica is behind the given primary high-water mark."""
        return max(0, primary_seq - self.applied_seq)

    # -- the apply path --------------------------------------------------------

    def apply_shipment(self, payload: bytes, term: int) -> int:
        """Decode and apply one shipment datagram; returns the new frontier.

        A torn final record (transit tear) is silently dropped — the shipper
        re-ships it whole next round.  A stale term raises
        :class:`StaleTermError` before anything is applied.
        """
        records, _torn = decode_shipment(payload, last_seq=self.applied_seq)
        return self.apply_records(records, term)

    def apply_records(self, records: list[dict[str, Any]], term: int) -> int:
        """Apply primary WAL records in order; returns the new ``applied_seq``.

        Records at or below the frontier are skipped (idempotent re-ship); a
        gap above ``applied_seq + 1`` raises
        :class:`~repro.replica.tailer.ReplicationGapError` (the caller must
        re-seed from a snapshot); everything applied is appended verbatim to
        this replica's own WAL so a follower crash recovers to the same
        frontier.
        """
        if term < self.term:
            raise StaleTermError(term, self.term)
        self.term = term
        if self.stall_hook is not None and self.stall_hook():
            return self.applied_seq
        fresh = [record for record in records if record["seq"] > self.applied_seq]
        if not fresh:
            return self.applied_seq
        if fresh[0]["seq"] > self.applied_seq + 1:
            raise ReplicationGapError(self.applied_seq + 1, fresh[0]["seq"], self.root)
        service = self.service
        with service._lock.write_locked():  # noqa: SLF001 - the replication write path
            structural = False
            for record in fresh:
                apply_record(service.manager, record)
                service._store.wal.append_record(record)  # noqa: SLF001
                structural = structural or record["op"] in _STRUCTURAL_OPS
            if structural:
                # Same discipline as the live mutation path: never let a
                # reader race the lazy component rebuild.
                service.manager.agraph.graph.rebuild_components()
        return self.applied_seq

    # -- snapshot re-seed ------------------------------------------------------

    def reseed(self, snapshot_payload: dict[str, Any]) -> int:
        """Rebuild this replica from a primary snapshot (gap recovery).

        Used when the primary checkpointed away records this replica never
        saw: replaying the remaining WAL would skip history, so the replica
        adopts the snapshot (whose ``wal_seq`` becomes the new frontier) and
        resumes tailing from there.  The snapshot lands with the same
        write-temp + fsync + rename + dir-fsync discipline checkpoints use.
        """
        base_seq = int(snapshot_payload.get("wal_seq", 0))
        if base_seq < self.applied_seq:
            raise ServiceError(
                f"refusing to reseed replica {self.name} backwards: snapshot is at "
                f"seq {base_seq}, replica already applied {self.applied_seq}"
            )
        self.service.config.checkpoint_on_close = False
        self.service.close()
        snapshot_path = self.root / SNAPSHOT_FILE
        tmp = snapshot_path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(snapshot_payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, snapshot_path)
        fsync_dir(self.root)
        # The old WAL's records are all covered by (or behind) the snapshot —
        # the active file AND any segments this replica's own checkpoints
        # sealed (leaving them would make the next recovery replay history
        # the adopted snapshot already contains).
        wal_path = self.root / WAL_FILE
        wal_path.write_text("")
        for segment in sealed_segment_paths(wal_path):
            segment.unlink()
        fsync_dir(self.root)
        self.service = GraphittiService.recover(self.root, config=self._config)
        self.reseeds += 1
        return self.applied_seq

    # -- read surface ----------------------------------------------------------

    def query(self, text_or_query):
        return self.service.query(text_or_query)

    def statistics(self) -> dict[str, Any]:
        return self.service.statistics()

    def checkpoint(self) -> None:
        self.service.checkpoint()

    def close(self) -> None:
        self.service.close()
