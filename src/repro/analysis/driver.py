"""Lint orchestration for ``repro lint``.

Two modes:

* **repo mode** (no targets) — lint the installed ``repro`` tree with the
  production configuration: lock rules over the serving layer (service,
  shard facade, replica, net) with decorator harvesting from the core /
  column / xmlstore / agraph modules they annotate; the WAL lifecycle over
  the real emit/replay/routing/net/test files; the error taxonomy over the
  packages that own the typed error surface.
* **target mode** (explicit paths) — lint a directory or file set as a
  self-contained mini-tree: every ``.py`` is in scope for the lock and
  except rules, a ``*wal*.py`` (if present) switches on the WAL lifecycle
  via filename classification, and an ``errors*.py`` (if present) roots the
  taxonomy rule.  This is how the seeded fixtures under
  ``tests/fixtures/analysis/`` are checked.

In both modes ``# repro: allow-<rule>`` pragmas are collected from every
scoped file and applied; unknown-rule and unused pragmas surface as
``stale-pragma`` findings.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import errlint, lockcheck, walcheck
from repro.analysis.report import Finding, Pragma, apply_pragmas, collect_pragmas


def _pkg_files(root: Path, *parts: str) -> list[Path]:
    directory = root.joinpath(*parts)
    if not directory.is_dir():
        return []
    return sorted(p for p in directory.glob("*.py") if p.name != "__init__.py")


def repo_layout() -> dict:
    """Production lint configuration derived from the installed package."""
    import repro

    src_root = Path(repro.__file__).parent
    repo_root = src_root.parent.parent  # src/repro -> repo checkout
    tests_dir = repo_root / "tests"
    bench_dir = repo_root / "benchmarks"

    service_files = _pkg_files(src_root, "service")
    shard_files = _pkg_files(src_root, "shard")
    replica_files = _pkg_files(src_root, "replica")
    net_files = _pkg_files(src_root, "net")

    annotation_files = [
        src_root / "core" / "manager.py",
        src_root / "core" / "columns.py",
        src_root / "xmlstore" / "collection.py",
        src_root / "agraph" / "multigraph.py",
    ]

    wal_test_files = []
    if tests_dir.is_dir():
        for pattern in ("test_*recovery*.py", "test_*crash*.py", "test_*wal*.py"):
            wal_test_files.extend(sorted(tests_dir.glob(pattern)))
    if bench_dir.is_dir():
        wal_test_files.extend(sorted(bench_dir.glob("*crash*.py")))

    return {
        "lock_analyze": service_files + shard_files + replica_files + net_files,
        "lock_annotations": [p for p in annotation_files if p.is_file()],
        "wal_config": walcheck.WalCheckConfig(
            wal_path=src_root / "service" / "wal.py",
            emit_paths=[src_root / "service" / "service.py"],
            replay_paths=[src_root / "service" / "durability.py"],
            routing_paths=[src_root / "shard" / "service.py"],
            net_paths=[src_root / "net" / "server.py"],
            test_paths=sorted(set(wal_test_files)),
        ),
        "raise_paths": service_files + shard_files + replica_files + net_files,
        "except_paths": (
            service_files
            + shard_files
            + replica_files
            + net_files
            + _pkg_files(src_root, "core")
        ),
        "errors_path": src_root / "errors.py",
    }


def _target_files(targets: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
    return files


def run_lint(targets: list[str | Path] | None = None) -> tuple[list[Finding], int]:
    """Run every applicable checker; returns ``(findings, suppressed_count)``."""
    raw: list[Finding] = []
    pragma_files: set[Path] = set()

    if targets:
        files = _target_files(targets)
        pragma_files.update(files)
        raw.extend(lockcheck.check_lock_discipline(files, []))
        raw.extend(errlint.check_silent_excepts(files))
        errors_files = [p for p in files if p.name.startswith("errors")]
        if errors_files:
            raise_scope = [p for p in files if p not in errors_files]
            raw.extend(errlint.check_raises(raise_scope, errors_files[0]))
        if any("wal" in p.name.lower() for p in files):
            roots = {p if p.is_dir() else p.parent for p in map(Path, targets)}
            for root in sorted(roots):
                try:
                    config = walcheck.classify_directory(root)
                except FileNotFoundError:
                    continue
                raw.extend(walcheck.check_wal_lifecycle(config))
    else:
        layout = repo_layout()
        raw.extend(
            lockcheck.check_lock_discipline(
                layout["lock_analyze"], layout["lock_annotations"]
            )
        )
        raw.extend(walcheck.check_wal_lifecycle(layout["wal_config"]))
        raw.extend(errlint.check_raises(layout["raise_paths"], layout["errors_path"]))
        raw.extend(errlint.check_silent_excepts(layout["except_paths"]))
        pragma_files.update(layout["lock_analyze"])
        pragma_files.update(layout["lock_annotations"])
        pragma_files.update(layout["except_paths"])
        pragma_files.add(layout["errors_path"])

    pragmas: list[Pragma] = []
    for path in sorted(pragma_files):
        pragmas.extend(collect_pragmas(path))
    kept, suppressed = apply_pragmas(raw, pragmas)
    return kept, len(suppressed)
