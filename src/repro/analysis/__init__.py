"""Repo-specific static analysis and concurrency checking.

The package has two halves:

* **static** — AST-based checkers (stdlib :mod:`ast` only) that machine-check
  the invariants every PR used to re-verify by hand: lock discipline over the
  serving layer's mutation paths (:mod:`repro.analysis.lockcheck`), the full
  per-op WAL lifecycle (:mod:`repro.analysis.walcheck`), and the typed error
  taxonomy (:mod:`repro.analysis.errlint`).  :func:`repro.analysis.driver.run_lint`
  orchestrates them; the ``repro lint`` CLI verb is the entry point.
* **runtime** — an opt-in instrumented lock layer
  (:mod:`repro.analysis.runtime`) that records the per-thread lock-acquisition
  graph during tests and fails on cycles (lock-order deadlock detection), plus
  a seeded race-stress mode (``REPRO_ANALYSIS_RACE=1``).

The decorators below are the annotation convention the static half consumes;
they are runtime no-ops (attribute tags) so annotated hot paths pay nothing.
"""

from repro.analysis.annotations import (
    io_under_lock_ok,
    mutates_state,
    requires_write_lock,
)

__all__ = [
    "mutates_state",
    "requires_write_lock",
    "io_under_lock_ok",
]
