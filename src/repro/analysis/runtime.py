"""Opt-in runtime concurrency instrumentation.

Two tools, both **off by default** (the serving layer's locks are untouched
until a test asks):

* :class:`LockOrderMonitor` + :func:`monitoring` — record the per-thread
  lock-acquisition graph (an edge ``A -> B`` means some thread acquired ``B``
  while holding ``A``) and fail on cycles.  Cycles are detectable from
  acquisition *order* alone, accumulated across threads and time — no actual
  deadlock (or even concurrency) needs to occur, which is what makes this
  usable in a test suite.  ``monitoring()`` monkeypatches
  :class:`repro.service.locks.ReadWriteLock`'s acquire/release methods for
  its scope; :func:`wrap_lock` adapts plain mutexes (cache mutex, plan memo)
  into the same graph.
* :func:`race_stress` / :func:`run_racing` — seeded race-stress mode.  When
  ``REPRO_ANALYSIS_RACE=1``, the interpreter switch interval drops to 10µs
  (maximizing interleavings) and racing thunks start barrier-aligned so they
  collide inside the hot seams (cache put/hit, epoch bump, checkpoint
  freeze, follower apply) instead of running serially by accident.

Read and write acquisitions of a ReadWriteLock map to the same graph node:
with writer preference, an inverted read-side order can still deadlock
(reader waits behind a queued writer while holding the other lock), so the
conservative node granularity is the correct one.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
from dataclasses import dataclass, field

RACE_ENV = "REPRO_ANALYSIS_RACE"
RACE_SWITCH_INTERVAL = 1e-5

ANALYSIS_NAME_ATTR = "_repro_analysis_lock_name"


class LockOrderViolation(AssertionError):
    """Raised by :meth:`LockOrderMonitor.assert_no_cycles` on a cycle."""


@dataclass
class LockOrderMonitor:
    """Per-thread held-lock stacks + the global acquisition-order graph."""

    edges: dict[str, set[str]] = field(default_factory=dict)
    acquisitions: int = 0
    _tls: threading.local = field(default_factory=threading.local, repr=False)
    _mutex: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def record_acquire(self, name: str) -> None:
        stack = self._stack()
        with self._mutex:
            self.acquisitions += 1
            for held in stack:
                if held != name:
                    self.edges.setdefault(held, set()).add(name)
        stack.append(name)

    def record_release(self, name: str) -> None:
        stack = self._stack()
        # Remove the innermost matching acquisition; releases may arrive
        # out of LIFO order (e.g. hand-over-hand drain loops).
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def held_by_current_thread(self) -> tuple[str, ...]:
        return tuple(self._stack())

    def cycles(self) -> list[list[str]]:
        """Every elementary cycle-representative in the acquisition graph."""
        with self._mutex:
            graph = {node: set(dests) for node, dests in self.edges.items()}
        seen: set[str] = set()
        cycles: list[list[str]] = []

        def visit(node: str, path: list[str], on_path: set[str]) -> None:
            if node in on_path:
                cycle = path[path.index(node):] + [node]
                cycles.append(cycle)
                return
            if node in seen:
                return
            seen.add(node)
            on_path.add(node)
            path.append(node)
            for dest in sorted(graph.get(node, ())):
                visit(dest, path, on_path)
            path.pop()
            on_path.discard(node)

        for start in sorted(graph):
            visit(start, [], set())
        return cycles

    def assert_no_cycles(self) -> None:
        found = self.cycles()
        if found:
            rendered = "; ".join(" -> ".join(cycle) for cycle in found)
            raise LockOrderViolation(
                f"lock-order cycle(s) detected: {rendered} "
                f"(over {self.acquisitions} recorded acquisitions)"
            )

    def reset(self) -> None:
        with self._mutex:
            self.edges.clear()
            self.acquisitions = 0
        self._tls = threading.local()


def name_lock(lock: object, name: str) -> object:
    """Give *lock* a stable node name in the acquisition graph."""
    setattr(lock, ANALYSIS_NAME_ATTR, name)
    return lock


def _node_name(lock: object) -> str:
    explicit = getattr(lock, ANALYSIS_NAME_ATTR, None)
    if explicit is not None:
        return explicit
    return f"{type(lock).__name__}@{id(lock):#x}"


class MonitoredLock:
    """A plain-mutex adapter feeding :class:`LockOrderMonitor`.

    Wraps ``threading.Lock``/``RLock`` objects the serving layer uses next
    to the ReadWriteLock (cache mutex, prepared-plan memo) so cross-lock
    ordering shows up in the same graph.
    """

    def __init__(self, name: str, inner: object, monitor: LockOrderMonitor):
        self.name = name
        self.inner = inner
        self.monitor = monitor

    def acquire(self, *args, **kwargs):
        acquired = self.inner.acquire(*args, **kwargs)
        if acquired:
            self.monitor.record_acquire(self.name)
        return acquired

    def release(self) -> None:
        self.inner.release()
        self.monitor.record_release(self.name)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info):
        self.release()
        return False

    def locked(self) -> bool:
        locked = getattr(self.inner, "locked", None)
        return bool(locked()) if callable(locked) else False


def wrap_lock(name: str, inner: object, monitor: LockOrderMonitor) -> MonitoredLock:
    return MonitoredLock(name, inner, monitor)


@contextlib.contextmanager
def monitoring(monitor: LockOrderMonitor | None = None):
    """Patch ReadWriteLock's acquire/release to feed *monitor* for this scope.

    Yields the monitor.  Instances are distinguished by :func:`name_lock`
    name or ``ReadWriteLock@<id>``; the patch is process-global (it swaps
    unbound methods on the class) and restored on exit, so scopes must not
    overlap.
    """
    from repro.service.locks import ReadWriteLock

    active = monitor if monitor is not None else LockOrderMonitor()
    originals = {
        "acquire_read": ReadWriteLock.acquire_read,
        "acquire_write": ReadWriteLock.acquire_write,
        "release_read": ReadWriteLock.release_read,
        "release_write": ReadWriteLock.release_write,
    }

    def _acquire_read(self, *args, **kwargs):
        result = originals["acquire_read"](self, *args, **kwargs)
        active.record_acquire(_node_name(self))
        return result

    def _acquire_write(self, *args, **kwargs):
        result = originals["acquire_write"](self, *args, **kwargs)
        active.record_acquire(_node_name(self))
        return result

    def _release_read(self, *args, **kwargs):
        active.record_release(_node_name(self))
        return originals["release_read"](self, *args, **kwargs)

    def _release_write(self, *args, **kwargs):
        active.record_release(_node_name(self))
        return originals["release_write"](self, *args, **kwargs)

    ReadWriteLock.acquire_read = _acquire_read
    ReadWriteLock.acquire_write = _acquire_write
    ReadWriteLock.release_read = _release_read
    ReadWriteLock.release_write = _release_write
    try:
        yield active
    finally:
        for attr, fn in originals.items():
            setattr(ReadWriteLock, attr, fn)


# -- race-stress mode ----------------------------------------------------------


def race_enabled() -> bool:
    """True when the seeded race-stress mode is switched on via the env."""
    return os.environ.get(RACE_ENV, "") == "1"


@contextlib.contextmanager
def race_stress():
    """Drop the switch interval to 10µs for the scope (no-op when disabled)."""
    if not race_enabled():
        yield False
        return
    previous = sys.getswitchinterval()
    sys.setswitchinterval(RACE_SWITCH_INTERVAL)
    try:
        yield True
    finally:
        sys.setswitchinterval(previous)


def run_racing(thunks, repeat: int = 1) -> None:
    """Run *thunks* concurrently with barrier-aligned starts, *repeat* times.

    The barrier guarantees every thread is scheduled and poised before any
    does work, so short critical sections actually overlap.  The first
    exception from any thread is re-raised in the caller.
    """
    thunks = list(thunks)
    errors: list[BaseException] = []
    errors_mutex = threading.Lock()
    for _ in range(repeat):
        barrier = threading.Barrier(len(thunks))

        def runner(thunk):
            try:
                barrier.wait(timeout=30.0)
                thunk()
            except BaseException as exc:  # propagated to the caller below
                with errors_mutex:
                    errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(thunk,), daemon=True)
            for thunk in thunks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        if errors:
            raise errors[0]


def race_rounds(default: int, stressed: int) -> int:
    """Iteration count helper: *stressed* under ``REPRO_ANALYSIS_RACE=1``."""
    return stressed if race_enabled() else default
