"""Finding model, inline-pragma handling and report rendering for ``repro lint``.

A checker emits :class:`Finding` rows.  A finding can be whitelisted with an
inline pragma on the offending line (or the line directly above it)::

    risky_call()  # repro: allow-lock-io — reviewed: O(1) seal fsync

Pragmas must name the rule they suppress; a pragma naming an unknown rule, or
one that suppresses nothing, is itself a lint error (``stale-pragma``) — a
whitelist that outlives its finding is how exceptions silently become policy.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

#: Every rule a checker may emit (and a pragma may name).
RULES = (
    "lock-discipline",
    "lock-io",
    "wal-lifecycle",
    "error-taxonomy",
    "silent-except",
    "stale-pragma",
)

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow-([A-Za-z0-9_-]+)")


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Pragma:
    """One ``# repro: allow-<rule>`` comment."""

    rule: str
    path: str
    line: int
    used: bool = field(default=False)


def collect_pragmas(path: str | Path, source: str | None = None) -> list[Pragma]:
    """Every allow-pragma in the file at *path* (source may be pre-read)."""
    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    pragmas: list[Pragma] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _PRAGMA_RE.finditer(text):
            pragmas.append(Pragma(rule=match.group(1), path=str(path), line=lineno))
    return pragmas


def apply_pragmas(
    findings: Iterable[Finding], pragmas: Iterable[Pragma]
) -> tuple[list[Finding], list[Finding]]:
    """Suppress findings their pragmas cover; lint the pragmas themselves.

    Returns ``(kept, suppressed)``.  A pragma covers a finding when it names
    the finding's rule and sits on the finding's line or the line directly
    above it.  ``kept`` additionally gains one ``stale-pragma`` finding per
    pragma that named an unknown rule or suppressed nothing.
    """
    pragma_list = list(pragmas)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        match = None
        for pragma in pragma_list:
            if (
                pragma.rule == finding.rule
                and pragma.path == finding.path
                and pragma.line in (finding.line, finding.line - 1)
            ):
                match = pragma
                break
        if match is not None:
            match.used = True
            suppressed.append(finding)
        else:
            kept.append(finding)
    for pragma in pragma_list:
        if pragma.rule not in RULES:
            kept.append(
                Finding(
                    rule="stale-pragma",
                    path=pragma.path,
                    line=pragma.line,
                    message=(
                        f"pragma names unknown rule {pragma.rule!r}; "
                        f"pragmas must name one of: {', '.join(RULES)}"
                    ),
                )
            )
        elif not pragma.used:
            kept.append(
                Finding(
                    rule="stale-pragma",
                    path=pragma.path,
                    line=pragma.line,
                    message=(
                        f"pragma allow-{pragma.rule} suppresses nothing; "
                        "remove it (stale whitelists become policy)"
                    ),
                )
            )
    return kept, suppressed


def render_human(findings: list[Finding], suppressed_count: int = 0) -> str:
    """The human-readable report body."""
    lines = [finding.render() for finding in sorted(findings, key=_sort_key)]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    else:
        lines.append("clean: no findings")
    if suppressed_count:
        lines.append(f"({suppressed_count} finding(s) suppressed by allow-pragmas)")
    return "\n".join(lines)


def render_json(findings: list[Finding], suppressed_count: int = 0) -> str:
    """The machine-readable report body (one JSON object)."""
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in sorted(findings, key=_sort_key)],
            "count": len(findings),
            "suppressed": suppressed_count,
            "rules": list(RULES),
        },
        indent=2,
        sort_keys=True,
    )


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.rule)
