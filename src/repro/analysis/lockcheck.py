"""AST lock-discipline checker for the serving layer (rules ``lock-discipline``
and ``lock-io``).

The serving layer's concurrency contract is declared with the decorators in
:mod:`repro.analysis.annotations` and proven here, entirely from the AST:

* **lock-discipline** — inside a *lock-aware* class (one whose body touches
  ``self._lock`` / ``write_locked`` / ``read_locked``), every call to a
  ``@requires_write_lock`` method must be dominated by a
  ``with ...write_locked():`` (or ``with self._traced_write(...):``) block,
  or sit inside another ``@requires_write_lock`` body, which inherits the
  holder's obligation.  A ``@mutates_state`` entry point must acquire the
  write lock somewhere in its own body — a mutation path with no acquisition
  is the one-missed-``write_locked()`` bug this checker exists to catch.
* **lock-io** — no blocking I/O (snapshot serialization, directory fsyncs,
  socket sends, sleeps) may run while the write lock is held.  The checker
  walks the call graph from every locked region (bounded depth, resolving
  ``self`` calls and unique distinctive names within the analyzed set) and
  reports the first blocking call on each path, unless the enclosing
  function is decorated ``@io_under_lock_ok`` (the WAL append fsync and the
  O(1) segment seal are the two reviewed exceptions) or the call site
  carries a ``# repro: allow-lock-io`` pragma.

Call sites are matched by terminal attribute name, filtered to receivers
that reference the bare manager (``*manager*``, ``contents``, ``agraph``),
plain ``self`` calls, and bare-name calls — the shapes the serving layer
actually uses to reach annotated mutators.  Facade-to-facade calls
(``shard.commit(...)``) are deliberately not matched: those callees are
``@mutates_state`` and acquire their own lock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.report import Finding

#: Context-manager terminal names that enter the write lock.
LOCK_ENTER_NAMES = frozenset({"write_locked", "_traced_write"})

#: Raw acquisition calls that also count as entering the write lock.
ACQUIRE_NAMES = frozenset({"acquire_write"})

#: Attribute names whose presence makes a class "lock-aware" (analyzed).
LOCK_TOKEN_ATTRS = frozenset(
    {"_lock", "write_locked", "read_locked", "acquire_write", "acquire_read"}
)

#: Terminal call names that block (I/O or scheduling) and are forbidden
#: while the write lock is held.  ``_join_checkpoint`` is here because the
#: non-blocking-checkpoint design promises writers never wait on snapshot
#: serialization — joining the checkpoint thread under the lock would be
#: exactly that wait.
BLOCKING_NAMES = frozenset(
    {
        "fsync",
        "fdatasync",
        "fsync_dir",
        "sendall",
        "recv",
        "accept",
        "connect",
        "sleep",
        "dump_json_chunked",
        "write_snapshot",
        "snapshot_from_frozen",
        "save_instance",
        "_join_checkpoint",
    }
)

#: Call names too generic to resolve through the cross-module call graph —
#: resolving ``thread.start()`` or ``handle.write()`` by bare name would
#: chase unrelated definitions and manufacture false positives.
NEVER_RESOLVE = frozenset(
    {
        "start",
        "stop",
        "run",
        "get",
        "put",
        "close",
        "open",
        "join",
        "append",
        "add",
        "send",
        "write",
        "read",
        "flush",
        "result",
        "submit",
        "acquire",
        "release",
        "copy",
        "update",
        "pop",
        "remove",
        "clear",
        "items",
        "keys",
        "values",
    }
)

#: Receiver-path tokens that identify a bare-manager access.
MANAGER_TOKENS = ("manager", "contents", "agraph")

_MAX_WALK_DEPTH = 5


@dataclass
class _FunctionInfo:
    path: str
    class_name: str | None
    node: ast.FunctionDef
    requires_write_lock: bool = False
    mutates_state: bool = False
    io_under_lock_ok: bool = False


@dataclass
class _Index:
    """Decorator harvest + call-graph index over the parsed modules."""

    functions: list[_FunctionInfo] = field(default_factory=list)
    by_name: dict[str, list[_FunctionInfo]] = field(default_factory=dict)
    requires_names: set[str] = field(default_factory=set)

    def add(self, info: _FunctionInfo) -> None:
        self.functions.append(info)
        self.by_name.setdefault(info.node.name, []).append(info)
        if info.requires_write_lock:
            self.requires_names.add(info.node.name)

    def resolve(self, name: str, class_name: str | None, self_call: bool) -> _FunctionInfo | None:
        """The definition a call to *name* reaches, when knowable.

        ``self`` calls resolve within the receiver's class; other calls
        resolve only when exactly one distinctive definition exists in the
        analyzed set.
        """
        candidates = self.by_name.get(name, [])
        if self_call:
            scoped = [info for info in candidates if info.class_name == class_name]
            return scoped[0] if len(scoped) == 1 else None
        if name in NEVER_RESOLVE:
            return None
        return candidates[0] if len(candidates) == 1 else None


def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _terminal_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _receiver_parts(func: ast.expr) -> list[str]:
    """Dotted receiver path of an attribute call (``self._manager.commit`` ->
    ``["self", "_manager"]``)."""
    parts: list[str] = []
    node = func.value if isinstance(func, ast.Attribute) else None
    while node is not None:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            node = None
        else:
            # Subscripts / calls in the chain: keep what we have.
            node = getattr(node, "value", None) if isinstance(node, ast.Subscript) else None
    parts.reverse()
    return parts


def _receiver_matches(func: ast.expr) -> tuple[bool, bool]:
    """(matched, is_self_call) for the lock-discipline call-site filter."""
    if isinstance(func, ast.Name):
        return True, False  # bare-name call (module-level helper)
    parts = _receiver_parts(func)
    if parts == ["self"]:
        return True, True
    for part in parts:
        lowered = part.lower()
        if any(token in lowered for token in MANAGER_TOKENS):
            return True, False
    return False, False


def _with_enters_lock(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            name = _terminal_name(expr.func)
            if name in LOCK_ENTER_NAMES:
                return True
    return False


def _parse(paths: list[Path]) -> dict[Path, ast.Module]:
    modules: dict[Path, ast.Module] = {}
    for path in paths:
        modules[path] = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return modules


def _harvest(modules: dict[Path, ast.Module]) -> _Index:
    index = _Index()
    for path, tree in modules.items():
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        index.add(_info(str(path), node.name, item))
            elif isinstance(node, ast.Module):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        index.add(_info(str(path), None, item))
    return index


def _info(path: str, class_name: str | None, node: ast.FunctionDef) -> _FunctionInfo:
    names = {_decorator_name(dec) for dec in node.decorator_list}
    return _FunctionInfo(
        path=path,
        class_name=class_name,
        node=node,
        requires_write_lock="requires_write_lock" in names,
        mutates_state="mutates_state" in names,
        io_under_lock_ok="io_under_lock_ok" in names,
    )


def _class_is_lock_aware(node: ast.ClassDef) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr in LOCK_TOKEN_ATTRS:
            return True
    return False


class _RegionScanner:
    """Walks one function body tracking write-lock dominance lexically."""

    def __init__(
        self,
        checker: "LockChecker",
        info: _FunctionInfo,
        check_discipline: bool,
    ):
        self.checker = checker
        self.info = info
        self.check_discipline = check_discipline

    def scan(self) -> None:
        initially_locked = self.info.requires_write_lock
        for stmt in self.info.node.body:
            self._walk(stmt, initially_locked)

    def _walk(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested definitions execute later, under their own rules
        if isinstance(node, ast.With):
            entered = _with_enters_lock(node)
            for item in node.items:
                self._walk(item.context_expr, locked)
            for stmt in node.body:
                self._walk(stmt, locked or entered)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, locked)
        for child in ast.iter_child_nodes(node):
            self._walk(child, locked)

    def _check_call(self, node: ast.Call, locked: bool) -> None:
        name = _terminal_name(node.func)
        if name is None:
            return
        if self.check_discipline and not locked and name in self.checker.index.requires_names:
            self._check_discipline_call(node, name)
        if locked and not self.info.io_under_lock_ok:
            # An @io_under_lock_ok body IS the reviewed exception: its own
            # blocking calls are exempt, not just calls routed through it.
            self.checker.check_blocking(
                node, origin=self.info, call_path=[], depth=0, visited=set()
            )

    def _check_discipline_call(self, node: ast.Call, name: str) -> None:
        matched, _ = _receiver_matches(node.func)
        if matched:
            self.checker.findings.append(
                Finding(
                    rule="lock-discipline",
                    path=self.info.path,
                    line=node.lineno,
                    message=(
                        f"call to @requires_write_lock method {name}() in "
                        f"{self._context()} is not dominated by "
                        "`with ...write_locked():`"
                    ),
                )
            )

    def _context(self) -> str:
        if self.info.class_name:
            return f"{self.info.class_name}.{self.info.node.name}"
        return self.info.node.name


class LockChecker:
    """Run the lock-discipline and lock-io rules over a file set."""

    def __init__(self, analyze_paths: list[Path], annotation_paths: list[Path] | None = None):
        analyze = [Path(p) for p in analyze_paths]
        extra = [Path(p) for p in (annotation_paths or []) if Path(p) not in set(analyze)]
        self.analyze_modules = _parse(analyze)
        all_modules = dict(self.analyze_modules)
        all_modules.update(_parse(extra))
        self.index = _harvest(all_modules)
        # The call graph for lock-io resolves only within the analyzed set —
        # decorator-harvest-only files contribute names, not bodies.
        self.walk_index = _harvest(self.analyze_modules)
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        for path, tree in self.analyze_modules.items():
            for node in ast.walk(tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                lock_aware = _class_is_lock_aware(node)
                for item in node.body:
                    if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    info = _info(str(path), node.name, item)
                    if lock_aware and info.mutates_state:
                        self._check_mutator_acquires(info)
                    _RegionScanner(self, info, check_discipline=lock_aware).scan()
            # Module-level functions: lock-io still applies to their locked
            # regions (a bare function may take a service's lock), but the
            # call-site discipline rule is class-scoped.
            for item in tree.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = _info(str(path), None, item)
                    _RegionScanner(self, info, check_discipline=False).scan()
        return self.findings

    # -- lock-discipline: entry points must acquire ----------------------------

    def _check_mutator_acquires(self, info: _FunctionInfo) -> None:
        for node in ast.walk(info.node):
            if isinstance(node, ast.With) and _with_enters_lock(node):
                return
            if isinstance(node, ast.Call):
                if _terminal_name(node.func) in ACQUIRE_NAMES:
                    return
        self.findings.append(
            Finding(
                rule="lock-discipline",
                path=info.path,
                line=info.node.lineno,
                message=(
                    f"@mutates_state method {info.class_name}.{info.node.name}() "
                    "never acquires the write lock (no `with ...write_locked():`, "
                    "`_traced_write`, or `acquire_write()` in its body)"
                ),
            )
        )

    # -- lock-io: blocking calls under the lock --------------------------------

    def check_blocking(
        self,
        node: ast.Call,
        origin: _FunctionInfo,
        call_path: list[str],
        depth: int,
        visited: set[str],
    ) -> None:
        name = _terminal_name(node.func)
        if name is None:
            return
        if name in BLOCKING_NAMES:
            via = " -> ".join(call_path + [name]) if call_path else name
            self.findings.append(
                Finding(
                    rule="lock-io",
                    path=origin.path,
                    line=self._origin_line(node, origin, depth),
                    message=(
                        f"blocking call {via}() reachable while the write lock is "
                        f"held in {self._origin_context(origin)}; move it off-lock "
                        "or mark the callee @io_under_lock_ok"
                    ),
                )
            )
            return
        if depth >= _MAX_WALK_DEPTH:
            return
        if isinstance(node.func, ast.Name):
            self_call = False  # bare-name helper: unique-definition resolution
        else:
            self_call = _receiver_parts(node.func) == ["self"]
        resolved = self.walk_index.resolve(
            name, origin.class_name if self_call else None, self_call
        )
        if resolved is None or resolved.io_under_lock_ok:
            return
        key = f"{resolved.class_name}.{resolved.node.name}@{resolved.path}"
        if key in visited:
            return
        visited.add(key)
        for child in ast.walk(resolved.node):
            if isinstance(child, ast.Call):
                self.check_blocking(
                    child,
                    origin=origin if depth else _origin_at(origin, node),
                    call_path=call_path + [name],
                    depth=depth + 1,
                    visited=visited,
                )

    @staticmethod
    def _origin_line(node: ast.Call, origin: _FunctionInfo, depth: int) -> int:
        # Depth 0: the blocking call itself.  Deeper: report at the locked
        # region's entry call (stored on the origin via _origin_at).
        if depth == 0:
            return node.lineno
        return getattr(origin, "_entry_line", origin.node.lineno)

    def _origin_context(self, origin: _FunctionInfo) -> str:
        if origin.class_name:
            return f"{origin.class_name}.{origin.node.name}"
        return origin.node.name


def _origin_at(origin: _FunctionInfo, node: ast.Call) -> _FunctionInfo:
    """A copy of *origin* that remembers the locked-region entry call line."""
    clone = _FunctionInfo(
        path=origin.path,
        class_name=origin.class_name,
        node=origin.node,
        requires_write_lock=origin.requires_write_lock,
        mutates_state=origin.mutates_state,
        io_under_lock_ok=origin.io_under_lock_ok,
    )
    clone._entry_line = node.lineno  # type: ignore[attr-defined]
    return clone


def check_lock_discipline(
    analyze_paths: list[str | Path], annotation_paths: list[str | Path] | None = None
) -> list[Finding]:
    """Run both lock rules; returns raw findings (pragmas applied by the driver)."""
    checker = LockChecker(
        [Path(p) for p in analyze_paths],
        [Path(p) for p in (annotation_paths or [])],
    )
    return checker.run()
