"""WAL/wire invariant checker (rule ``wal-lifecycle``).

Every durable operation lives in five places at once, and forgetting one of
them is the classic way this codebase rots: the op is emitted but never
replayed, or replayed but unreachable over the wire, or works but is never
crash-tested.  For each op named in ``WAL_OPS`` this checker proves:

``emit``
    The op name appears as a string literal in the serving layer that writes
    WAL records (``GraphittiService._log`` / ``append_many`` call sites).
``replay``
    Recovery has a branch for the op — the name appears in an explicit
    comparison (``op == "commit"`` / ``match`` case) in the replay module.
``routing``
    The sharded facade defines a method of the same name, so the op is
    routable to the owning shard.
``net``
    The network server's dispatch table has the op as a dict key, so the op
    is reachable over the wire.  (The frame codec itself is op-agnostic —
    wire coverage *is* the dispatch-table entry.)
``tests``
    At least one crash-matrix / recovery test file mentions the op by name.

The checker also flags replay branches for ops that are *not* in
``WAL_OPS`` — a comparison against an unknown op string is either dead code
or an op that skipped registration.

Stages are configured with explicit file lists (the driver wires up the real
tree); :func:`classify_directory` maps a fixture directory onto stages by
filename so synthetic mini-trees can exercise every failure mode.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.report import Finding

#: Stage key -> human description used in finding messages.
STAGES = {
    "emit": "WAL emit site (service layer string literal)",
    "replay": "recovery replay branch (explicit op comparison)",
    "routing": "shard-routing method (def <op> on the sharded facade)",
    "net": "net dispatch entry (op key in the server dispatch table)",
    "tests": "crash/recovery test referencing the op by name",
}


@dataclass
class WalCheckConfig:
    """File lists for each lifecycle stage.

    ``wal_path`` is the module defining ``WAL_OPS``; each stage maps to the
    files that must mention every op in the stage-appropriate shape.
    """

    wal_path: Path
    emit_paths: list[Path] = field(default_factory=list)
    replay_paths: list[Path] = field(default_factory=list)
    routing_paths: list[Path] = field(default_factory=list)
    net_paths: list[Path] = field(default_factory=list)
    test_paths: list[Path] = field(default_factory=list)


def classify_directory(root: str | Path) -> WalCheckConfig:
    """Build a config from a fixture mini-tree by filename convention.

    Basenames containing ``wal`` define ``WAL_OPS``; ``service``/``emit`` are
    emit sites; ``durability``/``replay`` are replay; ``shard``/``rout`` are
    routing; ``net`` is wire dispatch; ``test``/``crash`` are tests.  One
    file may serve several stages (``shard_routing.py`` is routing under
    either token); only the WAL module itself is excluded from emit.
    """
    root = Path(root)
    wal_path: Path | None = None
    config_kwargs: dict[str, list[Path]] = {
        "emit_paths": [],
        "replay_paths": [],
        "routing_paths": [],
        "net_paths": [],
        "test_paths": [],
    }
    for path in sorted(root.rglob("*.py")):
        name = path.name.lower()
        if "wal" in name and wal_path is None:
            wal_path = path
        if ("service" in name or "emit" in name) and "wal" not in name:
            # The WAL module itself holds the WAL_OPS literals; counting it
            # as an emit site would satisfy the emit stage vacuously.
            config_kwargs["emit_paths"].append(path)
        if "durability" in name or "replay" in name:
            config_kwargs["replay_paths"].append(path)
        if "shard" in name or "rout" in name:
            config_kwargs["routing_paths"].append(path)
        if "net" in name:
            config_kwargs["net_paths"].append(path)
        if "test" in name or "crash" in name:
            config_kwargs["test_paths"].append(path)
    if wal_path is None:
        raise FileNotFoundError(f"no *wal*.py defining WAL_OPS under {root}")
    return WalCheckConfig(wal_path=wal_path, **config_kwargs)


def _parse(path: Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def discover_wal_ops(wal_path: Path) -> tuple[list[str], int]:
    """The ``WAL_OPS`` tuple (and its line number) from the WAL module."""
    tree = _parse(wal_path)
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "WAL_OPS":
                ops = [
                    elt.value
                    for elt in getattr(value, "elts", [])
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                ]
                return ops, node.lineno
    raise ValueError(f"WAL_OPS tuple not found in {wal_path}")


def _string_constants(paths: list[Path]) -> set[str]:
    found: set[str] = set()
    for path in paths:
        for node in ast.walk(_parse(path)):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                found.add(node.value)
    return found


def _comparison_strings(paths: list[Path]) -> set[str]:
    """Strings used in explicit comparisons or ``match`` cases."""
    found: set[str] = set()
    for path in paths:
        for node in ast.walk(_parse(path)):
            if isinstance(node, ast.Compare):
                for expr in [node.left, *node.comparators]:
                    found.update(_constant_strings(expr))
            elif isinstance(node, ast.match_case):
                for child in ast.walk(node.pattern):
                    if isinstance(child, ast.MatchValue):
                        found.update(_constant_strings(child.value))
    return found


def _constant_strings(expr: ast.expr) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.add(node.value)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            continue
    return out


def _function_names(paths: list[Path]) -> set[str]:
    found: set[str] = set()
    for path in paths:
        for node in ast.walk(_parse(path)):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.add(node.name)
    return found


def _dict_key_strings(paths: list[Path]) -> set[str]:
    found: set[str] = set()
    for path in paths:
        for node in ast.walk(_parse(path)):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        found.add(key.value)
    return found


def _raw_text_mentions(paths: list[Path]) -> str:
    return "\n".join(path.read_text(encoding="utf-8") for path in paths)


def check_wal_lifecycle(config: WalCheckConfig) -> list[Finding]:
    """Prove every ``WAL_OPS`` entry is present at every lifecycle stage."""
    ops, ops_line = discover_wal_ops(config.wal_path)
    findings: list[Finding] = []

    stage_hits = {
        "emit": _string_constants(config.emit_paths),
        "replay": _comparison_strings(config.replay_paths),
        "routing": _function_names(config.routing_paths),
        "net": _dict_key_strings(config.net_paths),
    }
    test_text = _raw_text_mentions(config.test_paths)

    for op in ops:
        for stage, hits in stage_hits.items():
            # A stage with no configured files is "not applicable" (fixture
            # mini-trees may model a subset); a configured stage missing the
            # op is a lifecycle hole.
            paths = getattr(config, f"{stage}_paths")
            if paths and op not in hits:
                findings.append(
                    Finding(
                        rule="wal-lifecycle",
                        path=str(config.wal_path),
                        line=ops_line,
                        message=(
                            f"op {op!r} has no {STAGES[stage]} in "
                            f"{_names(paths)}"
                        ),
                    )
                )
        if config.test_paths and op not in test_text:
            findings.append(
                Finding(
                    rule="wal-lifecycle",
                    path=str(config.wal_path),
                    line=ops_line,
                    message=(
                        f"op {op!r} has no {STAGES['tests']} in "
                        f"{_names(config.test_paths)}"
                    ),
                )
            )

    # Reverse direction: replay branches comparing against unknown op strings
    # are dead code or unregistered ops.
    known = set(ops)
    for path in config.replay_paths:
        for node in ast.walk(_parse(path)):
            if not isinstance(node, ast.Compare):
                continue
            if not _mentions_op_variable(node):
                continue
            for value in _constant_strings(node):
                if value not in known:
                    findings.append(
                        Finding(
                            rule="wal-lifecycle",
                            path=str(path),
                            line=node.lineno,
                            message=(
                                f"replay branch compares op against {value!r}, "
                                "which is not in WAL_OPS"
                            ),
                        )
                    )
    return findings


def _mentions_op_variable(node: ast.Compare) -> bool:
    """True when the comparison's non-constant side looks like an op value."""
    for expr in [node.left, *node.comparators]:
        if isinstance(expr, ast.Name) and expr.id in {"op", "op_name", "kind"}:
            return True
        if isinstance(expr, ast.Attribute) and expr.attr in {"op", "op_name", "kind"}:
            return True
        if isinstance(expr, ast.Subscript):
            key = expr.slice
            if isinstance(key, ast.Constant) and key.value in {"op", "kind"}:
                return True
    return False


def _names(paths: list[Path]) -> str:
    return ", ".join(sorted(path.name for path in paths))
