"""Error-taxonomy lint (rules ``error-taxonomy`` and ``silent-except``).

The serving layer promises callers a typed error surface rooted at
:class:`repro.errors.GraphittiError` — the net tier maps taxonomy classes to
wire error codes, and the replica tier retries on specific subclasses.  A
``raise ValueError(...)`` deep in the shard router silently breaks both.

``error-taxonomy``
    Every ``raise X(...)`` in the scoped packages must instantiate a class in
    the ``GraphittiError`` subclass closure (computed from ``errors.py``'s
    AST, so new subclasses are picked up automatically).  Bare re-raises
    (``raise`` / ``raise exc``) and ``NotImplementedError`` (the abstract-
    method convention) are allowed.  Injected-fault raises in test harness
    paths carry ``# repro: allow-error-taxonomy`` pragmas.

``silent-except``
    Durability and serving paths may not swallow errors blind: a bare
    ``except:`` is always a finding, and ``except Exception:`` /
    ``except BaseException:`` whose body is only ``pass`` / ``continue`` /
    ``...`` is a finding.  Narrow handlers (``except OSError:``) and
    handlers that log, count, or re-raise are fine.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.report import Finding

#: Builtin raises that are conventionally fine anywhere.
ALWAYS_ALLOWED_RAISES = frozenset({"NotImplementedError"})

#: Lowercase names that ARE exception classes (socket's legacy aliases);
#: other lowercase calls (``self._decode_error(...)``) are error factories
#: whose type the AST cannot know — the factory's own body is in scope, so
#: flagging the raise too would only manufacture pragma noise.
LOWERCASE_EXCEPTION_NAMES = frozenset({"timeout", "error", "gaierror", "herror"})

#: Exception names treated as "broad" for the silent-except rule.
BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


def taxonomy_closure(
    errors_path: str | Path, extra_paths: list[str | Path] | None = None
) -> set[str]:
    """Class names in the ``GraphittiError`` subclass closure.

    Derived from the AST so the lint tracks the taxonomy without importing it
    (fixture taxonomies stay import-free too).  *extra_paths* lets scanned
    modules contribute their own subclasses (``StaleTermError(ServiceError)``
    defined next to the code that raises it is taxonomy, not a violation).
    """
    bases: dict[str, set[str]] = {}
    for path in [Path(errors_path), *map(Path, extra_paths or [])]:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                names = set()
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        names.add(base.id)
                    elif isinstance(base, ast.Attribute):
                        names.add(base.attr)
                bases.setdefault(node.name, set()).update(names)
    closure = {"GraphittiError"}
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in closure and parents & closure:
                closure.add(name)
                changed = True
    return closure


def _terminal_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _parse(path: Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def check_raises(paths: list[str | Path], errors_path: str | Path) -> list[Finding]:
    """The ``error-taxonomy`` rule over *paths*."""
    allowed = taxonomy_closure(errors_path, list(paths)) | ALWAYS_ALLOWED_RAISES
    findings: list[Finding] = []
    for path in [Path(p) for p in paths]:
        for node in ast.walk(_parse(path)):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            if not isinstance(node.exc, ast.Call):
                continue  # `raise exc` re-raise of a caught object
            name = _terminal_name(node.exc.func)
            if name is None or name in allowed:
                continue
            looks_like_class = name.lstrip("_")[:1].isupper()
            if not looks_like_class and name not in LOWERCASE_EXCEPTION_NAMES:
                continue  # lowercase call: an error factory, not a class
            findings.append(
                Finding(
                    rule="error-taxonomy",
                    path=str(path),
                    line=node.lineno,
                    message=(
                        f"raise {name}(...) is outside the GraphittiError "
                        "taxonomy; raise a typed subclass (or add one to "
                        "errors.py) so the net/replica tiers can classify it"
                    ),
                )
            )
    return findings


def check_silent_excepts(paths: list[str | Path]) -> list[Finding]:
    """The ``silent-except`` rule over *paths*."""
    findings: list[Finding] = []
    for path in [Path(p) for p in paths]:
        for node in ast.walk(_parse(path)):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    Finding(
                        rule="silent-except",
                        path=str(path),
                        line=node.lineno,
                        message="bare `except:` catches SystemExit/KeyboardInterrupt; "
                        "name the exception type",
                    )
                )
                continue
            if _is_broad(node.type) and _body_is_silent(node.body):
                findings.append(
                    Finding(
                        rule="silent-except",
                        path=str(path),
                        line=node.lineno,
                        message=(
                            "`except Exception: pass` swallows failures on a "
                            "durability/serving path; log, count, narrow, or "
                            "re-raise"
                        ),
                    )
                )
    return findings


def _is_broad(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(elt) for elt in expr.elts)
    return _terminal_name(expr) in BROAD_HANDLERS


def _body_is_silent(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True
