"""Lock-discipline decorator convention consumed by ``repro lint``.

These decorators are **annotations, not enforcement**: each one tags the
function with an attribute and returns it unchanged, so decorated mutation
paths pay zero runtime cost.  The static checkers in
:mod:`repro.analysis.lockcheck` read the decorator names from the AST and
prove the declared contracts hold at every call site.

Conventions
-----------
``@mutates_state``
    A public serving-layer entry point that mutates shared state.  The
    checker proves its body acquires the write lock (directly, or via the
    ``_traced_write`` helper) before any annotated mutation runs.

``@requires_write_lock``
    A method that must only ever run while the owning service's write lock
    is held.  The checker proves every call site inside a lock-owning class
    is dominated by ``with ...write_locked():`` (or sits in another
    ``@requires_write_lock`` body, which inherits the obligation).

``@io_under_lock_ok``
    A reviewed exception to the no-blocking-I/O-under-the-write-lock rule.
    The WAL append fsync *is* the acknowledged-durability point and the O(1)
    segment seal is the designed under-lock checkpoint step; everything else
    (snapshot serialization, socket sends) must stay off-lock, and the
    checker walks the call graph to prove it.

This module must stay import-light (stdlib only): it is imported by
``repro.core`` and ``repro.service`` at module load.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

#: Attribute names the AST checkers match by decorator name; the runtime
#: attributes exist so tooling (and tests) can introspect live objects too.
MUTATES_STATE_ATTR = "__repro_mutates_state__"
REQUIRES_WRITE_LOCK_ATTR = "__repro_requires_write_lock__"
IO_UNDER_LOCK_OK_ATTR = "__repro_io_under_lock_ok__"


def mutates_state(fn: F) -> F:
    """Tag *fn* as a serving-layer mutation entry point (self-locking)."""
    setattr(fn, MUTATES_STATE_ATTR, True)
    return fn


def requires_write_lock(fn: F) -> F:
    """Tag *fn* as callable only while the service write lock is held."""
    setattr(fn, REQUIRES_WRITE_LOCK_ATTR, True)
    return fn


def io_under_lock_ok(fn: F) -> F:
    """Tag *fn* as reviewed, intentional blocking I/O under the write lock."""
    setattr(fn, IO_UNDER_LOCK_OK_ATTR, True)
    return fn
