"""Predicate and query expression API for the embedded relational engine.

Predicates are small composable objects (``eq``, ``lt``, ``like``, ``and_``,
...) that can either be evaluated against a row dict or, when the shape
allows, pushed down to a table index.  The :class:`Query` object is a fluent
builder over a :class:`~repro.relational.table.Table` supporting ``where``,
``order_by``, ``limit``, ``project`` and ``join``.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import UnknownColumnError


class Predicate:
    """Base class for row predicates.

    Subclasses implement :meth:`matches`; the optional hooks
    :meth:`equality_key` and :meth:`range_bounds` let the table use an index
    instead of scanning.
    """

    def matches(self, row: dict[str, Any]) -> bool:
        """Return ``True`` when *row* satisfies the predicate."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Column names referenced by this predicate."""
        return set()

    def equality_key(self) -> tuple[str, Any] | None:
        """``(column, value)`` when the predicate is a simple equality."""
        return None

    def range_bounds(self) -> tuple[str, Any, Any, bool, bool] | None:
        """``(column, low, high, include_low, include_high)`` for range predicates."""
        return None

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Comparison(Predicate):
    """Compare one column against a constant with a named operator."""

    column: str
    op: str
    value: Any

    _OPS: tuple[str, ...] = ("==", "!=", "<", "<=", ">", ">=")

    def matches(self, row: dict[str, Any]) -> bool:
        if self.column not in row:
            raise UnknownColumnError(f"row has no column {self.column!r}")
        actual = row[self.column]
        if actual is None:
            # SQL-ish semantics: NULL never satisfies a comparison except !=
            return self.op == "!=" and self.value is not None
        if self.op == "==":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        try:
            if self.op == "<":
                return actual < self.value
            if self.op == "<=":
                return actual <= self.value
            if self.op == ">":
                return actual > self.value
            if self.op == ">=":
                return actual >= self.value
        except TypeError:
            return False
        raise ValueError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> set[str]:
        return {self.column}

    def equality_key(self) -> tuple[str, Any] | None:
        if self.op == "==":
            return (self.column, self.value)
        return None

    def range_bounds(self) -> tuple[str, Any, Any, bool, bool] | None:
        if self.op == "<":
            return (self.column, None, self.value, True, False)
        if self.op == "<=":
            return (self.column, None, self.value, True, True)
        if self.op == ">":
            return (self.column, self.value, None, False, True)
        if self.op == ">=":
            return (self.column, self.value, None, True, True)
        if self.op == "==":
            return (self.column, self.value, self.value, True, True)
        return None


@dataclass(frozen=True)
class In(Predicate):
    """Membership of a column value in a fixed collection."""

    column: str
    values: tuple[Any, ...]

    def matches(self, row: dict[str, Any]) -> bool:
        if self.column not in row:
            raise UnknownColumnError(f"row has no column {self.column!r}")
        return row[self.column] in self.values

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Like(Predicate):
    """Glob-style pattern match (``*``, ``?``) on a text column."""

    column: str
    pattern: str
    case_sensitive: bool = False

    def matches(self, row: dict[str, Any]) -> bool:
        if self.column not in row:
            raise UnknownColumnError(f"row has no column {self.column!r}")
        value = row[self.column]
        if not isinstance(value, str):
            return False
        if self.case_sensitive:
            return fnmatch.fnmatchcase(value, self.pattern)
        return fnmatch.fnmatchcase(value.lower(), self.pattern.lower())

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class IsNull(Predicate):
    """True when the column value is ``None`` (or is not, when negated)."""

    column: str
    negated: bool = False

    def matches(self, row: dict[str, Any]) -> bool:
        if self.column not in row:
            raise UnknownColumnError(f"row has no column {self.column!r}")
        is_null = row[self.column] is None
        return not is_null if self.negated else is_null

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Lambda(Predicate):
    """Arbitrary row predicate supplied as a callable (never index-assisted)."""

    fn: Callable[[dict[str, Any]], bool]

    def matches(self, row: dict[str, Any]) -> bool:
        return bool(self.fn(row))


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    parts: tuple[Predicate, ...]

    def matches(self, row: dict[str, Any]) -> bool:
        return all(part.matches(row) for part in self.parts)

    def columns(self) -> set[str]:
        result: set[str] = set()
        for part in self.parts:
            result.update(part.columns())
        return result

    def flattened(self) -> tuple[Predicate, ...]:
        """Flatten nested conjunctions into a single tuple of conjuncts."""
        parts: list[Predicate] = []
        for part in self.parts:
            if isinstance(part, And):
                parts.extend(part.flattened())
            else:
                parts.append(part)
        return tuple(parts)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    parts: tuple[Predicate, ...]

    def matches(self, row: dict[str, Any]) -> bool:
        return any(part.matches(row) for part in self.parts)

    def columns(self) -> set[str]:
        result: set[str] = set()
        for part in self.parts:
            result.update(part.columns())
        return result


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    part: Predicate

    def matches(self, row: dict[str, Any]) -> bool:
        return not self.part.matches(row)

    def columns(self) -> set[str]:
        return self.part.columns()


# ---------------------------------------------------------------------------
# Convenience constructors


def eq(column: str, value: Any) -> Comparison:
    """``column == value``"""
    return Comparison(column, "==", value)


def ne(column: str, value: Any) -> Comparison:
    """``column != value``"""
    return Comparison(column, "!=", value)


def lt(column: str, value: Any) -> Comparison:
    """``column < value``"""
    return Comparison(column, "<", value)


def le(column: str, value: Any) -> Comparison:
    """``column <= value``"""
    return Comparison(column, "<=", value)


def gt(column: str, value: Any) -> Comparison:
    """``column > value``"""
    return Comparison(column, ">", value)


def ge(column: str, value: Any) -> Comparison:
    """``column >= value``"""
    return Comparison(column, ">=", value)


def in_(column: str, values: Iterable[Any]) -> In:
    """``column IN values``"""
    return In(column, tuple(values))


def like(column: str, pattern: str, case_sensitive: bool = False) -> Like:
    """Glob match of *column* against *pattern* (``*`` and ``?`` wildcards)."""
    return Like(column, pattern, case_sensitive)


def is_null(column: str) -> IsNull:
    """``column IS NULL``"""
    return IsNull(column)


def not_null(column: str) -> IsNull:
    """``column IS NOT NULL``"""
    return IsNull(column, negated=True)


def and_(*parts: Predicate) -> Predicate:
    """Conjunction of one or more predicates."""
    if not parts:
        raise ValueError("and_() requires at least one predicate")
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def or_(*parts: Predicate) -> Predicate:
    """Disjunction of one or more predicates."""
    if not parts:
        raise ValueError("or_() requires at least one predicate")
    if len(parts) == 1:
        return parts[0]
    return Or(tuple(parts))


def where(fn: Callable[[dict[str, Any]], bool]) -> Lambda:
    """Wrap an arbitrary callable as a predicate."""
    return Lambda(fn)


# ---------------------------------------------------------------------------
# Query builder


class Query:
    """Fluent query over one table, with optional joins.

    A :class:`Query` is lazy: nothing is evaluated until :meth:`all`,
    :meth:`first`, :meth:`count` or iteration.  Each builder method returns a
    new query object, so queries can be shared and refined safely.
    """

    def __init__(self, table: "Any"):
        self._table = table
        self._predicates: list[Predicate] = []
        self._order: list[tuple[str, bool]] = []
        self._limit: int | None = None
        self._offset: int = 0
        self._projection: tuple[str, ...] | None = None
        self._joins: list[tuple[Any, str, str, str]] = []

    def _clone(self) -> "Query":
        clone = Query(self._table)
        clone._predicates = list(self._predicates)
        clone._order = list(self._order)
        clone._limit = self._limit
        clone._offset = self._offset
        clone._projection = self._projection
        clone._joins = list(self._joins)
        return clone

    def where(self, predicate: Predicate) -> "Query":
        """Add a predicate (conjunction with any existing predicates)."""
        clone = self._clone()
        clone._predicates.append(predicate)
        return clone

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Sort results by *column* (stable, appended after prior orderings)."""
        clone = self._clone()
        clone._order.append((column, descending))
        return clone

    def limit(self, count: int) -> "Query":
        """Keep at most *count* result rows."""
        clone = self._clone()
        clone._limit = count
        return clone

    def offset(self, count: int) -> "Query":
        """Skip the first *count* result rows."""
        clone = self._clone()
        clone._offset = count
        return clone

    def project(self, *columns: str) -> "Query":
        """Restrict result rows to the given columns."""
        clone = self._clone()
        clone._projection = tuple(columns)
        return clone

    def join(self, other: "Any", left_column: str, right_column: str, prefix: str | None = None) -> "Query":
        """Equi-join with another table.

        Joined columns are added to the result row under ``prefix.column``
        (the prefix defaults to the other table's name).
        """
        clone = self._clone()
        clone._joins.append((other, left_column, right_column, prefix or other.name))
        return clone

    # -- evaluation -------------------------------------------------------

    def _combined_predicate(self) -> Predicate | None:
        if not self._predicates:
            return None
        return and_(*self._predicates)

    def _base_rows(self) -> Iterator[dict[str, Any]]:
        predicate = self._combined_predicate()
        yield from self._table.select(predicate)

    def _joined_rows(self) -> Iterator[dict[str, Any]]:
        rows: Iterable[dict[str, Any]] = self._base_rows()
        for other, left_column, right_column, prefix in self._joins:
            rows = self._apply_join(rows, other, left_column, right_column, prefix)
        yield from rows

    @staticmethod
    def _apply_join(
        rows: Iterable[dict[str, Any]],
        other: "Any",
        left_column: str,
        right_column: str,
        prefix: str,
    ) -> Iterator[dict[str, Any]]:
        for row in rows:
            key = row.get(left_column)
            for match in other.select(eq(right_column, key)):
                merged = dict(row)
                for column, value in match.items():
                    merged[f"{prefix}.{column}"] = value
                yield merged

    def all(self) -> list[dict[str, Any]]:
        """Evaluate the query and return all result rows."""
        rows = list(self._joined_rows())
        for column, descending in reversed(self._order):
            rows.sort(key=lambda row: _order_key(row.get(column)), reverse=descending)
        if self._offset:
            rows = rows[self._offset:]
        if self._limit is not None:
            rows = rows[: self._limit]
        if self._projection is not None:
            rows = [{column: row.get(column) for column in self._projection} for row in rows]
        return rows

    def first(self) -> dict[str, Any] | None:
        """First result row or ``None``."""
        results = self.limit(1).all() if self._limit is None else self.all()
        return results[0] if results else None

    def count(self) -> int:
        """Number of result rows."""
        return len(self.all())

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.all())


def _order_key(value: Any) -> tuple[int, Any]:
    """Total-order key tolerating ``None`` and mixed types for ORDER BY."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    if isinstance(value, str):
        return (2, value)
    return (3, repr(value))
