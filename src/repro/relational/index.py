"""Secondary indexes for the embedded relational engine.

Two index structures are provided:

* :class:`HashIndex` -- equality lookups in expected O(1),
* :class:`SortedIndex` -- equality and range lookups in O(log n) via a
  sorted key list maintained with :mod:`bisect`.

Both index row identifiers (integers assigned by the owning
:class:`~repro.relational.table.Table`), never the rows themselves, so a row
update only has to touch the indexes whose key columns changed.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.errors import RelationalError

#: Sentinel ordering key used so that ``None`` sorts before every real value.
_NONE_KEY = (0, None)


def _sort_key(value: Any) -> tuple[int, Any]:
    """Produce a total-order key that tolerates ``None`` and mixed numerics."""
    if value is None:
        return _NONE_KEY
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, bytes):
        return (3, value)
    return (4, repr(value))


class HashIndex:
    """Equality index mapping a key value to the set of row ids holding it."""

    def __init__(self, name: str, columns: tuple[str, ...]):
        self.name = name
        self.columns = tuple(columns)
        self._buckets: dict[Any, set[int]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def key_for(self, row: dict[str, Any]) -> Any:
        """Extract this index's key from a row dict."""
        if len(self.columns) == 1:
            return row[self.columns[0]]
        return tuple(row[column] for column in self.columns)

    def insert(self, key: Any, row_id: int) -> None:
        """Add *row_id* under *key*."""
        self._buckets.setdefault(key, set()).add(row_id)

    def remove(self, key: Any, row_id: int) -> None:
        """Remove *row_id* from *key*; silently ignores missing entries."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: Any) -> set[int]:
        """Row ids whose key equals *key* (empty set when absent)."""
        return set(self._buckets.get(key, ()))

    def keys(self) -> Iterator[Any]:
        """Iterate over distinct keys present in the index."""
        return iter(self._buckets)

    def clear(self) -> None:
        """Drop all entries."""
        self._buckets.clear()


class SortedIndex:
    """Ordered index supporting equality and range lookups.

    The index keeps a sorted list of ``(sort_key, original_key)`` pairs plus a
    parallel hash map from original key to row ids, giving O(log n) range
    scans and O(1) equality lookups.
    """

    def __init__(self, name: str, column: str):
        self.name = name
        self.column = column
        self._keys: list[tuple[tuple[int, Any], Any]] = []
        self._rows: dict[Any, set[int]] = {}

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._rows.values())

    def key_for(self, row: dict[str, Any]) -> Any:
        """Extract this index's key from a row dict."""
        return row[self.column]

    def insert(self, key: Any, row_id: int) -> None:
        """Add *row_id* under *key*."""
        if key not in self._rows:
            entry = (_sort_key(key), key)
            bisect.insort(self._keys, entry)
            self._rows[key] = set()
        self._rows[key].add(row_id)

    def remove(self, key: Any, row_id: int) -> None:
        """Remove *row_id* from *key*; silently ignores missing entries."""
        ids = self._rows.get(key)
        if ids is None:
            return
        ids.discard(row_id)
        if not ids:
            del self._rows[key]
            entry = (_sort_key(key), key)
            position = bisect.bisect_left(self._keys, entry)
            if position < len(self._keys) and self._keys[position] == entry:
                self._keys.pop(position)

    def lookup(self, key: Any) -> set[int]:
        """Row ids whose key equals *key*."""
        return set(self._rows.get(key, ()))

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> set[int]:
        """Row ids whose key lies within ``[low, high]`` (inclusive by default).

        ``None`` bounds are open; ``range()`` with both bounds ``None`` returns
        every indexed row id.
        """
        if low is not None and high is not None and _sort_key(low) > _sort_key(high):
            return set()
        if low is None:
            start = 0
        else:
            low_entry = (_sort_key(low), low)
            start = (
                bisect.bisect_left(self._keys, low_entry)
                if include_low
                else bisect.bisect_right(self._keys, low_entry)
            )
        if high is None:
            stop = len(self._keys)
        else:
            high_entry = (_sort_key(high), high)
            stop = (
                bisect.bisect_right(self._keys, high_entry)
                if include_high
                else bisect.bisect_left(self._keys, high_entry)
            )
        result: set[int] = set()
        for _, key in self._keys[start:stop]:
            result.update(self._rows[key])
        return result

    def min_key(self) -> Any:
        """Smallest key in the index; raises when empty."""
        if not self._keys:
            raise RelationalError(f"index {self.name!r} is empty")
        return self._keys[0][1]

    def max_key(self) -> Any:
        """Largest key in the index; raises when empty."""
        if not self._keys:
            raise RelationalError(f"index {self.name!r} is empty")
        return self._keys[-1][1]

    def ordered_keys(self) -> Iterable[Any]:
        """Iterate keys in ascending order."""
        for _, key in self._keys:
            yield key

    def clear(self) -> None:
        """Drop all entries."""
        self._keys.clear()
        self._rows.clear()
