"""Grouping and aggregation over relational query results.

The paper stores data-object metadata in relations; answering "how many
sequences per organism?" or "mean length per chromosome?" needs grouping and
aggregation on top of the select/project/join core.  This module adds a small
group-by/aggregate layer that consumes the row dicts a
:class:`~repro.relational.query.Query` produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import RelationalError


def count(column: str | None = None) -> "Aggregate":
    """COUNT aggregate (counts rows, or non-null values of *column*)."""
    return Aggregate("count", column)


def sum_(column: str) -> "Aggregate":
    """SUM aggregate over *column*."""
    return Aggregate("sum", column)


def avg(column: str) -> "Aggregate":
    """AVG (mean) aggregate over *column*."""
    return Aggregate("avg", column)


def min_(column: str) -> "Aggregate":
    """MIN aggregate over *column*."""
    return Aggregate("min", column)


def max_(column: str) -> "Aggregate":
    """MAX aggregate over *column*."""
    return Aggregate("max", column)


def collect(column: str) -> "Aggregate":
    """Collect the column's values into a list (group array-agg)."""
    return Aggregate("collect", column)


@dataclass(frozen=True)
class Aggregate:
    """One aggregate specification (function + column + output alias)."""

    func: str
    column: str | None = None
    alias: str | None = None

    def as_(self, alias: str) -> "Aggregate":
        """Return a copy with an explicit output alias."""
        return Aggregate(self.func, self.column, alias)

    @property
    def output_name(self) -> str:
        """Column name this aggregate writes into the result row."""
        if self.alias is not None:
            return self.alias
        if self.column is None:
            return self.func
        return f"{self.func}_{self.column}"

    def compute(self, rows: Sequence[dict[str, Any]]) -> Any:
        """Compute the aggregate over a group of rows."""
        if self.func == "count":
            if self.column is None:
                return len(rows)
            return sum(1 for row in rows if row.get(self.column) is not None)
        values = [row.get(self.column) for row in rows if row.get(self.column) is not None]
        if self.func == "collect":
            return values
        if not values:
            return None
        if self.func == "sum":
            return sum(values)
        if self.func == "avg":
            return sum(values) / len(values)
        if self.func == "min":
            return min(values)
        if self.func == "max":
            return max(values)
        raise RelationalError(f"unknown aggregate function {self.func!r}")


def group_by(
    rows: Iterable[dict[str, Any]],
    keys: Sequence[str],
    aggregates: Sequence[Aggregate],
    having: Callable[[dict[str, Any]], bool] | None = None,
) -> list[dict[str, Any]]:
    """Group *rows* by *keys* and compute *aggregates* per group.

    Returns one result row per group: the group-key columns plus each
    aggregate's output column.  An optional *having* predicate filters the
    computed groups.  Groups are returned in ascending key order.
    """
    keys = tuple(keys)
    grouped: dict[tuple, list[dict[str, Any]]] = {}
    for row in rows:
        group_key = tuple(row.get(key) for key in keys)
        grouped.setdefault(group_key, []).append(row)
    results: list[dict[str, Any]] = []
    for group_key in sorted(grouped, key=_group_sort_key):
        group_rows = grouped[group_key]
        result_row: dict[str, Any] = dict(zip(keys, group_key))
        for aggregate in aggregates:
            result_row[aggregate.output_name] = aggregate.compute(group_rows)
        if having is None or having(result_row):
            results.append(result_row)
    return results


def aggregate_all(rows: Iterable[dict[str, Any]], aggregates: Sequence[Aggregate]) -> dict[str, Any]:
    """Compute aggregates over *all* rows (a single implicit group)."""
    materialized = list(rows)
    return {aggregate.output_name: aggregate.compute(materialized) for aggregate in aggregates}


def _group_sort_key(group_key: tuple) -> tuple:
    """Total-order key for group tuples tolerating None / mixed types."""
    parts = []
    for value in group_key:
        if value is None:
            parts.append((0, 0))
        elif isinstance(value, bool):
            parts.append((1, int(value)))
        elif isinstance(value, (int, float)):
            parts.append((1, float(value)))
        elif isinstance(value, str):
            parts.append((2, value))
        else:
            parts.append((3, repr(value)))
    return tuple(parts)
