"""Row storage with constraint enforcement and index maintenance.

A :class:`Table` owns its rows (dicts keyed by column name), assigns a
monotonically increasing internal row id to each row, enforces the schema's
primary-key/unique/not-null constraints, and keeps any secondary indexes in
sync on insert, update, and delete.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ConstraintViolation, RelationalError, UnknownColumnError
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.query import Predicate, And, Query, eq
from repro.relational.schema import TableSchema

#: Alias used throughout the package: a row is just a plain dict.
Row = dict


class Table:
    """One relational table: schema + rows + indexes.

    The table automatically maintains a unique (hash) index per uniqueness
    constraint declared in the schema; additional secondary indexes can be
    created with :meth:`create_index` / :meth:`create_sorted_index`.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_row_id = 1
        self._unique_indexes: dict[tuple[str, ...], HashIndex] = {}
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        for key in schema.unique_keys():
            self._unique_indexes[key] = HashIndex(f"uniq:{schema.name}:{'+'.join(key)}", key)

    # -- basic properties --------------------------------------------------

    @property
    def name(self) -> str:
        """The table's name (from its schema)."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return (dict(row) for row in self._rows.values())

    def row_ids(self) -> Iterator[int]:
        """Iterate the internal row ids (stable across updates)."""
        return iter(self._rows)

    # -- index management ---------------------------------------------------

    def create_index(self, column: str) -> HashIndex:
        """Create (or return an existing) hash index on *column*."""
        if not self.schema.has_column(column):
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        if column in self._hash_indexes:
            return self._hash_indexes[column]
        index = HashIndex(f"hash:{self.name}:{column}", (column,))
        for row_id, row in self._rows.items():
            index.insert(row[column], row_id)
        self._hash_indexes[column] = index
        return index

    def create_sorted_index(self, column: str) -> SortedIndex:
        """Create (or return an existing) sorted index on *column*."""
        if not self.schema.has_column(column):
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        if column in self._sorted_indexes:
            return self._sorted_indexes[column]
        index = SortedIndex(f"sorted:{self.name}:{column}", column)
        for row_id, row in self._rows.items():
            index.insert(row[column], row_id)
        self._sorted_indexes[column] = index
        return index

    def has_index(self, column: str) -> bool:
        """True when an equality-capable index exists on *column*."""
        return (
            column in self._hash_indexes
            or column in self._sorted_indexes
            or (column,) in self._unique_indexes
        )

    # -- mutation -----------------------------------------------------------

    def insert(self, values: Mapping[str, Any]) -> int:
        """Insert one row, returning its internal row id.

        Raises :class:`~repro.errors.ConstraintViolation` when a uniqueness
        constraint would be violated and :class:`~repro.errors.SchemaError`
        when the payload does not match the schema.
        """
        row = self.schema.validate_row(values)
        self._check_unique(row, exclude_row_id=None)
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = row
        self._index_insert(row, row_id)
        return row_id

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> list[int]:
        """Insert several rows, returning their row ids (all-or-nothing is
        *not* guaranteed; rows preceding a failure remain inserted)."""
        return [self.insert(row) for row in rows]

    def update(self, predicate: Predicate | None, changes: Mapping[str, Any]) -> int:
        """Update every row matching *predicate* with *changes*.

        Returns the number of rows updated.  Primary keys may be changed as
        long as uniqueness is preserved.
        """
        for column in changes:
            if not self.schema.has_column(column):
                raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        updated = 0
        for row_id in list(self._candidate_row_ids(predicate)):
            row = self._rows[row_id]
            if predicate is not None and not predicate.matches(row):
                continue
            new_row = dict(row)
            new_row.update(changes)
            new_row = self.schema.validate_row(new_row)
            self._check_unique(new_row, exclude_row_id=row_id)
            self._index_remove(row, row_id)
            self._rows[row_id] = new_row
            self._index_insert(new_row, row_id)
            updated += 1
        return updated

    def delete(self, predicate: Predicate | None) -> int:
        """Delete every row matching *predicate*, returning the count."""
        deleted = 0
        for row_id in list(self._candidate_row_ids(predicate)):
            row = self._rows.get(row_id)
            if row is None:
                continue
            if predicate is not None and not predicate.matches(row):
                continue
            self._index_remove(row, row_id)
            del self._rows[row_id]
            deleted += 1
        return deleted

    def clear(self) -> None:
        """Remove every row and reset the indexes (row ids keep counting up)."""
        self._rows.clear()
        for index in self._all_indexes():
            index.clear()

    # -- retrieval ----------------------------------------------------------

    def get(self, primary_key_value: Any) -> dict[str, Any] | None:
        """Fetch the row whose primary key equals *primary_key_value*."""
        if self.schema.primary_key is None:
            raise RelationalError(f"table {self.name!r} has no primary key")
        rows = self.select(eq(self.schema.primary_key, primary_key_value))
        return rows[0] if rows else None

    def select(self, predicate: Predicate | None = None) -> list[dict[str, Any]]:
        """Return copies of every row matching *predicate* (all rows if None)."""
        results: list[dict[str, Any]] = []
        for row_id in self._candidate_row_ids(predicate):
            row = self._rows.get(row_id)
            if row is None:
                continue
            if predicate is None or predicate.matches(row):
                results.append(dict(row))
        return results

    def query(self) -> Query:
        """Start a fluent :class:`~repro.relational.query.Query` over the table."""
        return Query(self)

    # -- internals ----------------------------------------------------------

    def _all_indexes(self) -> Iterator[HashIndex | SortedIndex]:
        yield from self._unique_indexes.values()
        yield from self._hash_indexes.values()
        yield from self._sorted_indexes.values()

    def _index_insert(self, row: dict[str, Any], row_id: int) -> None:
        for index in self._all_indexes():
            index.insert(index.key_for(row), row_id)

    def _index_remove(self, row: dict[str, Any], row_id: int) -> None:
        for index in self._all_indexes():
            index.remove(index.key_for(row), row_id)

    def _check_unique(self, row: dict[str, Any], exclude_row_id: int | None) -> None:
        for key, index in self._unique_indexes.items():
            value = index.key_for(row)
            if _key_has_null(value, key):
                continue
            existing = index.lookup(value)
            existing.discard(exclude_row_id if exclude_row_id is not None else -1)
            if existing:
                raise ConstraintViolation(
                    f"table {self.name!r}: duplicate value {value!r} for unique key {key!r}"
                )

    def _candidate_row_ids(self, predicate: Predicate | None) -> Iterable[int]:
        """Pick an access path: index lookup when possible, else full scan."""
        if predicate is None:
            return list(self._rows)
        conjuncts: tuple[Predicate, ...]
        if isinstance(predicate, And):
            conjuncts = predicate.flattened()
        else:
            conjuncts = (predicate,)
        # Equality pushdown first (most selective in practice).
        for part in conjuncts:
            equality = part.equality_key()
            if equality is None:
                continue
            column, value = equality
            ids = self._lookup_equality(column, value)
            if ids is not None:
                return ids
        # Range pushdown on sorted indexes.
        for part in conjuncts:
            bounds = part.range_bounds()
            if bounds is None:
                continue
            column, low, high, include_low, include_high = bounds
            index = self._sorted_indexes.get(column)
            if index is not None:
                return index.range(low, high, include_low, include_high)
        return list(self._rows)

    def _lookup_equality(self, column: str, value: Any) -> set[int] | None:
        unique = self._unique_indexes.get((column,))
        if unique is not None:
            return unique.lookup(value)
        hash_index = self._hash_indexes.get(column)
        if hash_index is not None:
            return hash_index.lookup(value)
        sorted_index = self._sorted_indexes.get(column)
        if sorted_index is not None:
            return sorted_index.lookup(value)
        return None

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize schema + rows to a JSON-compatible dict (BLOBs hex-encoded)."""
        rows = []
        for row in self._rows.values():
            encoded = {}
            for key, value in row.items():
                if isinstance(value, bytes):
                    encoded[key] = {"__blob__": value.hex()}
                else:
                    encoded[key] = value
            rows.append(encoded)
        return {"schema": self.schema.to_dict(), "rows": rows}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Table":
        """Reconstruct a table from :meth:`to_dict` output."""
        table = cls(TableSchema.from_dict(payload["schema"]))
        for row in payload.get("rows", []):
            decoded = {}
            for key, value in row.items():
                if isinstance(value, dict) and "__blob__" in value:
                    decoded[key] = bytes.fromhex(value["__blob__"])
                else:
                    decoded[key] = value
            table.insert(decoded)
        return table


def _key_has_null(value: Any, key: tuple[str, ...]) -> bool:
    """Unique constraints ignore rows with NULL key parts (SQL semantics)."""
    if len(key) == 1:
        return value is None
    return any(part is None for part in value)
