"""Embedded relational engine used as Graphitti's data-object store.

The paper stores "the data objects and their metadata ... as type-specific
relations stored in a relational database".  This package provides a small
but complete in-process relational substrate:

* :mod:`repro.relational.schema` -- typed columns and table schemas,
* :mod:`repro.relational.table` -- row storage with constraint enforcement,
* :mod:`repro.relational.index` -- hash and sorted secondary indexes,
* :mod:`repro.relational.query` -- a composable select/project/join API,
* :mod:`repro.relational.database` -- the database object tying it together,
* :mod:`repro.relational.persistence` -- JSON snapshot save/load.

The engine is deliberately dependency-free so that benchmarks measure the
algorithms in this repository and nothing else.
"""

from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Row, Table
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.query import Predicate, Query, and_, eq, ge, gt, in_, le, lt, ne, like
from repro.relational.database import Database
from repro.relational.persistence import load_database, save_database
from repro.relational.aggregate import (
    Aggregate,
    aggregate_all,
    avg,
    collect,
    count,
    group_by,
    max_,
    min_,
    sum_,
)

__all__ = [
    "Column",
    "ColumnType",
    "TableSchema",
    "Row",
    "Table",
    "HashIndex",
    "SortedIndex",
    "Predicate",
    "Query",
    "Database",
    "and_",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "in_",
    "like",
    "load_database",
    "save_database",
    "Aggregate",
    "group_by",
    "aggregate_all",
    "count",
    "sum_",
    "avg",
    "min_",
    "max_",
    "collect",
]
