"""Table schemas for the embedded relational engine.

A :class:`TableSchema` is a named, ordered collection of :class:`Column`
definitions plus the table-level constraints (primary key, unique keys).
Schemas validate rows before they are stored so that every row inside a
:class:`~repro.relational.table.Table` is structurally sound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column value types.

    ``BLOB`` holds arbitrary Python bytes (the paper stores "the raw actual
    data ... in their native formats" alongside the metadata); ``JSON`` holds
    any JSON-serialisable structure and is used for loosely structured
    metadata.
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    BLOB = "blob"
    JSON = "json"

    def validate(self, value: Any) -> bool:
        """Return ``True`` when *value* is acceptable for this column type."""
        if value is None:
            return True
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        if self is ColumnType.BOOLEAN:
            return isinstance(value, bool)
        if self is ColumnType.BLOB:
            return isinstance(value, (bytes, bytearray))
        if self is ColumnType.JSON:
            return _is_jsonable(value)
        return False  # pragma: no cover - exhaustive enum

    def coerce(self, value: Any) -> Any:
        """Coerce *value* to the canonical Python representation for the type.

        Coercion is intentionally conservative: only loss-free conversions are
        performed (``int`` -> ``float`` for FLOAT columns, ``bytearray`` ->
        ``bytes`` for BLOB columns).
        """
        if value is None:
            return None
        if self is ColumnType.FLOAT and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self is ColumnType.BLOB and isinstance(value, bytearray):
            return bytes(value)
        return value


def _is_jsonable(value: Any) -> bool:
    """Check (recursively) that *value* only uses JSON-compatible types."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_jsonable(item) for item in value)
    if isinstance(value, dict):
        return all(isinstance(key, str) and _is_jsonable(item) for key, item in value.items())
    return False


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Parameters
    ----------
    name:
        Column name; must be a valid identifier-ish string, unique per table.
    type:
        The :class:`ColumnType` governing accepted values.
    nullable:
        When ``False`` a ``None`` value is rejected on insert/update.
    default:
        Value used when an insert omits the column.
    """

    name: str
    type: ColumnType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("column name must be a non-empty string")
        if self.name.strip() != self.name or " " in self.name:
            raise SchemaError(f"invalid column name: {self.name!r}")
        if not isinstance(self.type, ColumnType):
            raise SchemaError(f"column {self.name!r}: type must be a ColumnType")
        if self.default is not None and not self.type.validate(self.default):
            raise SchemaError(
                f"column {self.name!r}: default {self.default!r} does not match type {self.type.value}"
            )

    def validate_value(self, value: Any) -> Any:
        """Validate and coerce a value destined for this column.

        Raises :class:`~repro.errors.SchemaError` when the value is not
        acceptable, otherwise returns the coerced value.
        """
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return None
        if not self.type.validate(value):
            raise SchemaError(
                f"column {self.name!r}: value {value!r} does not match type {self.type.value}"
            )
        return self.type.coerce(value)


@dataclass
class TableSchema:
    """Schema of one relational table.

    Parameters
    ----------
    name:
        Table name, unique within a :class:`~repro.relational.database.Database`.
    columns:
        Ordered column definitions.
    primary_key:
        Optional name of the primary-key column.  Primary keys are unique and
        not nullable.
    unique:
        Optional sequence of column names (or tuples of names for composite
        uniqueness) that must be unique across rows.
    """

    name: str
    columns: Sequence[Column]
    primary_key: str | None = None
    unique: Sequence[str | tuple[str, ...]] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("table name must be a non-empty string")
        self.columns = tuple(self.columns)
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        self._by_name = {column.name: column for column in self.columns}
        if self.primary_key is not None and self.primary_key not in self._by_name:
            raise SchemaError(
                f"table {self.name!r}: primary key {self.primary_key!r} is not a column"
            )
        normalized: list[tuple[str, ...]] = []
        for key in self.unique:
            cols = (key,) if isinstance(key, str) else tuple(key)
            for col in cols:
                if col not in self._by_name:
                    raise SchemaError(f"table {self.name!r}: unique key column {col!r} is not a column")
            normalized.append(cols)
        self.unique = tuple(normalized)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Ordered tuple of column names."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Return the :class:`Column` named *name* or raise ``SchemaError``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Return ``True`` when the schema defines a column named *name*."""
        return name in self._by_name

    def validate_row(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Validate an insert payload and return a complete, coerced row dict.

        Missing columns receive their defaults; unknown keys raise
        :class:`~repro.errors.SchemaError`.
        """
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"table {self.name!r}: unknown columns {sorted(unknown)!r}"
            )
        row: dict[str, Any] = {}
        for column in self.columns:
            value = values.get(column.name, column.default)
            if column.name == self.primary_key and value is None:
                raise SchemaError(
                    f"table {self.name!r}: primary key {column.name!r} must not be null"
                )
            row[column.name] = column.validate_value(value)
        return row

    def unique_keys(self) -> tuple[tuple[str, ...], ...]:
        """All uniqueness constraints, including the primary key."""
        keys: list[tuple[str, ...]] = []
        if self.primary_key is not None:
            keys.append((self.primary_key,))
        keys.extend(self.unique)
        return tuple(keys)

    def to_dict(self) -> dict[str, Any]:
        """Serialize the schema to a JSON-compatible dictionary."""
        return {
            "name": self.name,
            "columns": [
                {
                    "name": column.name,
                    "type": column.type.value,
                    "nullable": column.nullable,
                    "default": column.default if not isinstance(column.default, bytes) else None,
                }
                for column in self.columns
            ],
            "primary_key": self.primary_key,
            "unique": [list(key) for key in self.unique],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TableSchema":
        """Reconstruct a schema from :meth:`to_dict` output."""
        columns = [
            Column(
                name=item["name"],
                type=ColumnType(item["type"]),
                nullable=item.get("nullable", True),
                default=item.get("default"),
            )
            for item in payload["columns"]
        ]
        return cls(
            name=payload["name"],
            columns=columns,
            primary_key=payload.get("primary_key"),
            unique=[tuple(key) for key in payload.get("unique", [])],
        )


def schema(name: str, columns: Iterable[tuple[str, ColumnType]], primary_key: str | None = None) -> TableSchema:
    """Convenience constructor for simple schemas.

    ``schema("t", [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)], "id")``
    """
    return TableSchema(
        name=name,
        columns=[Column(col_name, col_type) for col_name, col_type in columns],
        primary_key=primary_key,
    )
