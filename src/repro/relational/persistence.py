"""JSON snapshot persistence for the embedded relational engine.

The paper's prototype persists its relations in an external RDBMS; this
module provides the equivalent durability hook for the embedded engine:
write the whole database to a JSON file and read it back.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import RelationalError
from repro.relational.database import Database


def save_database(database: Database, path: str | Path) -> Path:
    """Write *database* to *path* as JSON and return the resolved path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = database.to_dict()
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return target


def load_database(path: str | Path) -> Database:
    """Read a database previously written with :func:`save_database`."""
    source = Path(path)
    if not source.exists():
        raise RelationalError(f"database snapshot {source} does not exist")
    with source.open("r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise RelationalError(f"database snapshot {source} is not valid JSON: {exc}") from exc
    return Database.from_dict(payload)
