"""The database object: a named collection of tables.

Graphitti stores each registered data type's metadata in its own
"type-specific relation"; the :class:`Database` is the container those
relations live in.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import RelationalError, UnknownTableError
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table


class Database:
    """A named collection of :class:`~repro.relational.table.Table` objects."""

    def __init__(self, name: str = "graphitti"):
        self.name = name
        self._tables: dict[str, Table] = {}

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of every table, in creation order."""
        return tuple(self._tables)

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from *schema*; fails if the name is taken."""
        if schema.name in self._tables:
            raise RelationalError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def create_table_from_columns(
        self,
        name: str,
        columns: Mapping[str, ColumnType] | list[tuple[str, ColumnType]],
        primary_key: str | None = None,
    ) -> Table:
        """Convenience: create a table from a ``{name: type}`` mapping."""
        pairs = columns.items() if isinstance(columns, Mapping) else columns
        schema = TableSchema(
            name=name,
            columns=[Column(column_name, column_type) for column_name, column_type in pairs],
            primary_key=primary_key,
        )
        return self.create_table(schema)

    def table(self, name: str) -> Table:
        """Return the table named *name* or raise ``UnknownTableError``."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"database {self.name!r} has no table {name!r}") from None

    def drop_table(self, name: str) -> None:
        """Remove a table and all its rows."""
        if name not in self._tables:
            raise UnknownTableError(f"database {self.name!r} has no table {name!r}")
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        """True when a table named *name* exists."""
        return name in self._tables

    def total_rows(self) -> int:
        """Total number of rows across every table."""
        return sum(len(table) for table in self._tables.values())

    def to_dict(self) -> dict[str, Any]:
        """Serialize the entire database to a JSON-compatible dict."""
        return {
            "name": self.name,
            "tables": {name: table.to_dict() for name, table in self._tables.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Database":
        """Reconstruct a database from :meth:`to_dict` output."""
        database = cls(payload.get("name", "graphitti"))
        for name, table_payload in payload.get("tables", {}).items():
            database._tables[name] = Table.from_dict(table_payload)
        return database
