"""R-tree for 2D/3D annotated regions.

The paper stores 2D/3D substructures (image regions referenced against a
shared coordinate system, e.g. a brain atlas at a given resolution) in
R-trees, one per coordinate system.  This module implements a Guttman R-tree
with quadratic node splitting, supporting insertion, deletion, overlap
(window) queries, containment queries, and nearest-neighbour search.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.errors import SpatialError
from repro.spatial.rect import Rect, bounding_rect


class _Entry:
    """An entry in an R-tree node: a box plus either a child node or a leaf record."""

    __slots__ = ("rect", "child", "record")

    def __init__(self, rect: Rect, child: "_Node | None" = None, record: Rect | None = None):
        self.rect = rect
        self.child = child
        self.record = record


class _Node:
    """An R-tree node (leaf or internal)."""

    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.entries: list[_Entry] = []
        self.parent: "_Node | None" = None

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the node's entries."""
        return bounding_rect([entry.rect for entry in self.entries])


class RTree:
    """Guttman R-tree with quadratic splits.

    Parameters
    ----------
    max_entries:
        Maximum entries per node (``M``); minimum is ``max(2, M // 2)``.
    space:
        Optional coordinate-system name.  When set, inserted rectangles must
        either carry the same space name or none.
    """

    def __init__(self, max_entries: int = 8, space: str | None = None):
        if max_entries < 4:
            raise SpatialError("max_entries must be at least 4")
        self.space = space
        self._max_entries = max_entries
        self._min_entries = max(2, max_entries // 2)
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def bounds(self) -> Rect | None:
        """Exact minimum bounding rect of every stored rect (None when empty).

        Read from the root's maintained entry MBRs — O(root fan-out), kept
        tight by insert/remove adjustment, so deletions shrink it.
        """
        if self._size == 0:
            return None
        return self._root.mbr()

    def __iter__(self) -> Iterator[Rect]:
        yield from self._iterate(self._root)

    def _iterate(self, node: _Node) -> Iterator[Rect]:
        for entry in node.entries:
            if node.leaf:
                assert entry.record is not None
                yield entry.record
            else:
                assert entry.child is not None
                yield from self._iterate(entry.child)

    # -- insertion ----------------------------------------------------------

    def insert(self, rect: Rect) -> None:
        """Insert a rectangle record."""
        if self.space is not None and rect.space not in (None, self.space):
            raise SpatialError(
                f"rect space {rect.space!r} does not match R-tree space {self.space!r}"
            )
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append(_Entry(rect, record=rect))
        self._size += 1
        self._handle_overflow(leaf)
        self._adjust_upward(leaf)

    def insert_many(self, rects: list[Rect]) -> None:
        """Insert several rectangles."""
        for rect in rects:
            self.insert(rect)

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.leaf:
            best: _Entry | None = None
            best_key: tuple[float, float] | None = None
            for entry in node.entries:
                key = (entry.rect.enlargement_to_include(rect), entry.rect.area())
                if best_key is None or key < best_key:
                    best, best_key = entry, key
            assert best is not None and best.child is not None
            best.rect = best.rect.union(rect)
            node = best.child
        return node

    def _handle_overflow(self, node: _Node) -> None:
        while len(node.entries) > self._max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                for child in (node, sibling):
                    child.parent = new_root
                    new_root.entries.append(_Entry(child.mbr(), child=child))
                self._root = new_root
                return
            sibling.parent = parent
            for entry in parent.entries:
                if entry.child is node:
                    entry.rect = node.mbr()
                    break
            parent.entries.append(_Entry(sibling.mbr(), child=sibling))
            node = parent

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: pick the two seeds wasting the most area, then
        distribute remaining entries by minimum enlargement."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        remaining = [entry for position, entry in enumerate(entries) if position not in (seed_a, seed_b)]
        mbr_a = group_a[0].rect
        mbr_b = group_b[0].rect
        while remaining:
            # Force assignment when one group must absorb all remaining entries.
            if len(group_a) + len(remaining) == self._min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) == self._min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            entry = self._pick_next(remaining, mbr_a, mbr_b)
            remaining.remove(entry)
            enlarge_a = mbr_a.enlargement_to_include(entry.rect)
            enlarge_b = mbr_b.enlargement_to_include(entry.rect)
            if (enlarge_a, mbr_a.area(), len(group_a)) <= (enlarge_b, mbr_b.area(), len(group_b)):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.rect)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.rect)
        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        if not node.leaf:
            for entry in sibling.entries:
                assert entry.child is not None
                entry.child.parent = sibling
        return sibling

    @staticmethod
    def _pick_seeds(entries: list[_Entry]) -> tuple[int, int]:
        worst_pair = (0, 1)
        worst_waste = float("-inf")
        for (pos_a, entry_a), (pos_b, entry_b) in itertools.combinations(enumerate(entries), 2):
            waste = (
                entry_a.rect.union(entry_b.rect).area()
                - entry_a.rect.area()
                - entry_b.rect.area()
            )
            if waste > worst_waste:
                worst_waste = waste
                worst_pair = (pos_a, pos_b)
        return worst_pair

    @staticmethod
    def _pick_next(remaining: list[_Entry], mbr_a: Rect, mbr_b: Rect) -> _Entry:
        best_entry = remaining[0]
        best_difference = float("-inf")
        for entry in remaining:
            difference = abs(
                mbr_a.enlargement_to_include(entry.rect) - mbr_b.enlargement_to_include(entry.rect)
            )
            if difference > best_difference:
                best_difference = difference
                best_entry = entry
        return best_entry

    def _adjust_upward(self, node: _Node) -> None:
        current = node
        while current.parent is not None:
            parent = current.parent
            for entry in parent.entries:
                if entry.child is current:
                    entry.rect = current.mbr()
                    break
            current = parent

    # -- deletion -----------------------------------------------------------

    def remove(self, rect: Rect) -> bool:
        """Remove one record equal to *rect* (same bounds and payload).

        Returns ``True`` when a record was removed.  Underflowing nodes are
        condensed by re-inserting orphaned records (Guttman's CondenseTree).
        """
        leaf = self._find_leaf(self._root, rect)
        if leaf is None:
            return False
        for position, entry in enumerate(leaf.entries):
            if entry.record is not None and entry.record == rect and entry.record.payload == rect.payload:
                leaf.entries.pop(position)
                self._size -= 1
                self._condense(leaf)
                return True
        return False

    def _find_leaf(self, node: _Node, rect: Rect) -> _Node | None:
        if node.leaf:
            for entry in node.entries:
                if entry.record is not None and entry.record == rect and entry.record.payload == rect.payload:
                    return node
            return None
        for entry in node.entries:
            if entry.rect.overlaps(rect):
                assert entry.child is not None
                found = self._find_leaf(entry.child, rect)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: list[Rect] = []
        current = node
        while current.parent is not None:
            parent = current.parent
            if len(current.entries) < self._min_entries:
                parent.entries = [entry for entry in parent.entries if entry.child is not current]
                orphans.extend(self._collect_records(current))
            else:
                for entry in parent.entries:
                    if entry.child is current:
                        entry.rect = current.mbr()
                        break
            current = parent
        if not self._root.leaf and len(self._root.entries) == 1:
            only = self._root.entries[0].child
            assert only is not None
            only.parent = None
            self._root = only
        if not self._root.leaf and not self._root.entries:
            self._root = _Node(leaf=True)
        self._size -= len(orphans)
        for record in orphans:
            self.insert(record)

    def _collect_records(self, node: _Node) -> list[Rect]:
        return list(self._iterate(node))

    # -- queries ------------------------------------------------------------

    def search_overlap(self, query: Rect) -> list[Rect]:
        """All stored records whose box overlaps *query*."""
        results: list[Rect] = []
        self._search(self._root, query, results, containment=False)
        return results

    def search_contained_in(self, query: Rect) -> list[Rect]:
        """All stored records fully contained in *query*."""
        results: list[Rect] = []
        self._search(self._root, query, results, containment=True)
        return results

    def search_point(self, point: tuple[float, ...]) -> list[Rect]:
        """All stored records containing *point*."""
        query = Rect(point, point, space=self.space)
        return self.search_overlap(query)

    def count_overlap(self, query: Rect) -> int:
        """Number of stored records overlapping *query*."""
        return len(self.search_overlap(query))

    def nearest(self, point: tuple[float, ...], count: int = 1) -> list[Rect]:
        """The *count* records nearest to *point* (branch-and-bound search)."""
        if self._size == 0:
            return []
        target = Rect(point, point, space=self.space)
        best: list[tuple[float, int, Rect]] = []
        counter = itertools.count()

        def visit(node: _Node) -> None:
            candidates = []
            for entry in node.entries:
                distance = entry.rect.min_distance(target)
                candidates.append((distance, entry))
            candidates.sort(key=lambda item: item[0])
            for distance, entry in candidates:
                if len(best) >= count and distance > best[-1][0]:
                    continue
                if node.leaf:
                    assert entry.record is not None
                    best.append((distance, next(counter), entry.record))
                    best.sort(key=lambda item: (item[0], item[1]))
                    del best[count:]
                else:
                    assert entry.child is not None
                    visit(entry.child)

        visit(self._root)
        return [record for _, _, record in best]

    def height(self) -> int:
        """Height of the tree (1 for a single leaf root)."""
        height = 1
        node = self._root
        while not node.leaf:
            height += 1
            assert node.entries[0].child is not None
            node = node.entries[0].child
        return height

    def _search(self, node: _Node, query: Rect, results: list[Rect], containment: bool) -> None:
        for entry in node.entries:
            if not entry.rect.overlaps(query):
                continue
            if node.leaf:
                assert entry.record is not None
                if containment:
                    if query.contains(entry.record):
                        results.append(entry.record)
                elif entry.record.overlaps(query):
                    results.append(entry.record)
            else:
                assert entry.child is not None
                self._search(entry.child, query, results, containment)

    # -- bulk construction ----------------------------------------------------

    @classmethod
    def from_rects(cls, rects: list[Rect], max_entries: int = 8, space: str | None = None) -> "RTree":
        """Build an R-tree from a list of rectangles (one-by-one insertion)."""
        tree = cls(max_entries=max_entries, space=space)
        tree.insert_many(rects)
        return tree

    @classmethod
    def bulk_load(cls, rects: list[Rect], max_entries: int = 8, space: str | None = None) -> "RTree":
        """Build an R-tree by Sort-Tile-Recursive (STR) bulk loading.

        STR sorts the rectangles into vertical tiles by one axis, then packs
        each tile along the next axis, producing a near-optimal, well-packed
        tree far faster than repeated insertion.  Falls back to one-by-one
        insertion for inputs small enough to fit in a single leaf.
        """
        tree = cls(max_entries=max_entries, space=space)
        if len(rects) <= max_entries:
            tree.insert_many(rects)
            return tree
        leaves = cls._str_pack_leaves(list(rects), max_entries, space)
        nodes = leaves
        while len(nodes) > 1:
            nodes = cls._str_pack_level(nodes, max_entries)
        root = nodes[0]
        root.parent = None
        tree._root = root
        tree._size = len(rects)
        return tree

    @staticmethod
    def _str_pack_leaves(rects: list[Rect], max_entries: int, space: str | None) -> list[_Node]:
        import math

        count = len(rects)
        leaf_count = math.ceil(count / max_entries)
        slice_count = max(1, math.ceil(math.sqrt(leaf_count)))
        rects.sort(key=lambda rect: rect.center[0])
        per_slice = math.ceil(count / slice_count)
        leaves: list[_Node] = []
        for start in range(0, count, per_slice):
            tile = rects[start:start + per_slice]
            tile.sort(key=lambda rect: rect.center[1] if rect.dimension > 1 else rect.center[0])
            for leaf_start in range(0, len(tile), max_entries):
                group = tile[leaf_start:leaf_start + max_entries]
                node = _Node(leaf=True)
                node.entries = [_Entry(rect, record=rect) for rect in group]
                leaves.append(node)
        return leaves

    @staticmethod
    def _str_pack_level(children: list[_Node], max_entries: int) -> list[_Node]:
        import math

        children.sort(key=lambda node: node.mbr().center[0])
        parents: list[_Node] = []
        for start in range(0, len(children), max_entries):
            group = children[start:start + max_entries]
            parent = _Node(leaf=False)
            for child in group:
                child.parent = parent
                parent.entries.append(_Entry(child.mbr(), child=child))
            parents.append(parent)
        return parents


class RTreeFamily:
    """A family of R-trees keyed by coordinate-system name.

    Mirrors the paper's optimisation: "regions [of] all brain images of the
    same resolution are referenced with respect to the same brain coordinate
    system, and placed in a single R-tree".
    """

    def __init__(self, max_entries: int = 8):
        self._max_entries = max_entries
        self._trees: dict[str, RTree] = {}

    def __len__(self) -> int:
        return len(self._trees)

    def __contains__(self, space: str) -> bool:
        return space in self._trees

    @property
    def spaces(self) -> tuple[str, ...]:
        """Known coordinate-system names."""
        return tuple(self._trees)

    def tree(self, space: str) -> RTree:
        """The R-tree for *space*, created on first use."""
        if space not in self._trees:
            self._trees[space] = RTree(max_entries=self._max_entries, space=space)
        return self._trees[space]

    def insert(self, space: str, rect: Rect) -> None:
        """Insert a rectangle into the R-tree for *space*."""
        self.tree(space).insert(rect)

    def search_overlap(self, space: str, query: Rect) -> list[Rect]:
        """Overlap query against one coordinate system."""
        if space not in self._trees:
            return []
        return self._trees[space].search_overlap(query)

    def total_rects(self) -> int:
        """Total number of indexed rectangles across all spaces."""
        return sum(len(tree) for tree in self._trees.values())
