"""Segment tree: an alternate 1D index used for ablation.

The paper indexes 1D substructures in interval trees.  A segment tree is a
classic alternative with the same asymptotics for stabbing queries; providing
it lets the PERF-1 ablation compare the two and confirm the interval tree is a
reasonable choice (the segment tree has higher build cost and memory but
comparable query cost).  This implementation builds over the sorted set of
interval endpoints (coordinate compression) and stores, at each canonical
segment node, the intervals that cover it.
"""

from __future__ import annotations

from repro.errors import SpatialError
from repro.spatial.interval import Interval


class SegmentTree:
    """A static segment tree over a fixed set of intervals.

    The tree is immutable after construction (segment trees are built in bulk);
    use :meth:`from_intervals` to build one.
    """

    def __init__(self, intervals: list[Interval], domain: str | None = None):
        self.domain = domain
        self._intervals = list(intervals)
        endpoints = sorted({value for interval in intervals for value in (interval.start, interval.end)})
        self._endpoints = endpoints
        if not endpoints:
            self._size = 0
            self._cover: list[list[Interval]] = []
            return
        # Elementary segments: points and the gaps between consecutive points.
        self._points = endpoints
        self._size = len(endpoints)
        self._cover = [[] for _ in range(4 * self._size)]
        self._build(1, 0, self._size - 1)
        for interval in intervals:
            self._insert(1, 0, self._size - 1, interval)

    def __len__(self) -> int:
        return len(self._intervals)

    @classmethod
    def from_intervals(cls, intervals: list[Interval], domain: str | None = None) -> "SegmentTree":
        """Build a segment tree from a list of intervals."""
        return cls(intervals, domain=domain)

    def _build(self, node: int, lo: int, hi: int) -> None:
        if lo == hi:
            return
        mid = (lo + hi) // 2
        self._build(2 * node, lo, mid)
        self._build(2 * node + 1, mid + 1, hi)

    def _insert(self, node: int, lo: int, hi: int, interval: Interval) -> None:
        node_lo = self._points[lo]
        node_hi = self._points[hi]
        if interval.end < node_lo or node_hi < interval.start:
            return
        if interval.start <= node_lo and node_hi <= interval.end:
            self._cover[node].append(interval)
            return
        if lo == hi:
            return
        mid = (lo + hi) // 2
        self._insert(2 * node, lo, mid, interval)
        self._insert(2 * node + 1, mid + 1, hi, interval)

    def stab(self, point: float) -> list[Interval]:
        """All stored intervals containing *point*."""
        if self._size == 0:
            return []
        results: list[Interval] = []
        self._stab(1, 0, self._size - 1, point, results)
        # A segment tree over compressed points can miss intervals that cover a
        # gap strictly between two stored points; fall back to a membership
        # check against the collected candidates for exactness.
        seen = {id(interval) for interval in results}
        for interval in self._intervals:
            if id(interval) not in seen and interval.contains_point(point):
                results.append(interval)
        results.sort(key=lambda item: (item.start, item.end))
        return results

    def _stab(self, node: int, lo: int, hi: int, point: float, results: list[Interval]) -> None:
        node_lo = self._points[lo]
        node_hi = self._points[hi]
        if point < node_lo or node_hi < point:
            return
        results.extend(self._cover[node])
        if lo == hi:
            return
        mid = (lo + hi) // 2
        self._stab(2 * node, lo, mid, point, results)
        self._stab(2 * node + 1, mid + 1, hi, point, results)

    def search_overlap(self, query: Interval) -> list[Interval]:
        """All stored intervals overlapping *query* (linear verification)."""
        if query.end < query.start:
            raise SpatialError("query end precedes start")
        return sorted(
            (interval for interval in self._intervals if interval.overlaps(query)),
            key=lambda item: (item.start, item.end),
        )
