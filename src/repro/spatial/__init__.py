"""Spatial sub-structure indexes.

Graphitti stores "the annotated substructures of the primary data ... in a
collection of interval trees for 1D data (e.g. sequences) and a collection of
R-trees for 2D and 3D data (e.g., image regions)".  This package implements
both index families from scratch, the coordinate-system bookkeeping that
keeps "the number of index structures small" (one interval tree per
chromosome, one R-tree per shared image coordinate system), and the SUB-X
operators the paper defines (``ifOverlap``, ``next``, ``intersect``).
"""

from repro.spatial.interval import Interval, merge_intervals, total_coverage
from repro.spatial.interval_tree import IntervalIndexFamily, IntervalTree
from repro.spatial.rect import Rect, bounding_rect
from repro.spatial.rtree import RTree, RTreeFamily
from repro.spatial.segment_tree import SegmentTree
from repro.spatial.kdtree import KdTree
from repro.spatial.coordinate import (
    CoordinateKind,
    CoordinateSystem,
    CoordinateSystemRegistry,
)
from repro.spatial.operators import (
    Substructure,
    are_consecutive,
    are_disjoint,
    if_overlap,
    intersect,
    next_substructure,
)

__all__ = [
    "Interval",
    "IntervalTree",
    "IntervalIndexFamily",
    "Rect",
    "RTree",
    "RTreeFamily",
    "SegmentTree",
    "KdTree",
    "CoordinateKind",
    "CoordinateSystem",
    "CoordinateSystemRegistry",
    "Substructure",
    "if_overlap",
    "intersect",
    "next_substructure",
    "are_consecutive",
    "are_disjoint",
    "merge_intervals",
    "total_coverage",
    "bounding_rect",
]
