"""The SUB-X operators defined in the paper.

Section II lists the operations Graphitti applies to annotated substructures:

* ``ifOverlap : SUB-X x SUB-X -> {0, 1}`` — true when two substructures
  overlap (applies to every substructure type),
* ``next : SUB-X -> SUB-X`` — the next substructure in the domain ordering
  (only for types with a strict ordering, e.g. sequence intervals),
* ``intersect : SUB-X x SUB-X -> SUB-X`` — the intersection of two
  substructures (only for convex types such as sequences and rectangles).

These module-level functions dispatch on the operand types
(:class:`~repro.spatial.interval.Interval` or
:class:`~repro.spatial.rect.Rect`) so that the query processor can treat
substructures uniformly.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SpatialError
from repro.spatial.interval import Interval
from repro.spatial.rect import Rect

#: Substructure union type used throughout the query layer.
Substructure = Interval | Rect


def if_overlap(left: Substructure, right: Substructure) -> bool:
    """The paper's ``ifOverlap`` operator.

    Substructures of incompatible kinds (an interval and a rectangle) never
    overlap; substructures on different named domains/spaces never overlap.
    """
    if isinstance(left, Interval) and isinstance(right, Interval):
        return left.overlaps(right)
    if isinstance(left, Rect) and isinstance(right, Rect):
        if left.dimension != right.dimension:
            return False
        if left.space is not None and right.space is not None and left.space != right.space:
            return False
        return left.overlaps(right)
    return False


def intersect(left: Substructure, right: Substructure) -> Substructure | None:
    """The paper's ``intersect`` operator (convex types only).

    Returns ``None`` when the operands do not overlap.  Raises
    :class:`~repro.errors.SpatialError` when the operands are of different
    kinds, because the intersection of e.g. an interval and a rectangle is
    not defined.
    """
    if isinstance(left, Interval) and isinstance(right, Interval):
        return left.intersection(right)
    if isinstance(left, Rect) and isinstance(right, Rect):
        if not if_overlap(left, right):
            return None
        return left.intersection(right)
    raise SpatialError(
        f"intersect is undefined between {type(left).__name__} and {type(right).__name__}"
    )


def next_substructure(current: Interval, ordered: Sequence[Interval]) -> Interval | None:
    """The paper's ``next`` operator for strictly ordered domains.

    Given the *current* substructure and the collection it belongs to,
    returns the substructure encountered next in the (start, end) ordering,
    or ``None`` when *current* is the last one.  Only 1D intervals have a
    strict domain ordering; calling this with rectangles raises.
    """
    if not isinstance(current, Interval):
        raise SpatialError("next is only defined for ordered (1D) substructures")
    candidates = [
        interval
        for interval in ordered
        if isinstance(interval, Interval)
        and interval._same_domain(current)
        and (interval.start, interval.end) > (current.start, current.end)
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda interval: (interval.start, interval.end))


def are_consecutive(intervals: Sequence[Interval], max_gap: float | None = None) -> bool:
    """True when the intervals are in increasing order and pairwise disjoint.

    This is the graph constraint used by the paper's Figure-2 query ("4
    consecutive non-overlapping intervals").  When *max_gap* is given, the
    gap between successive intervals must not exceed it.
    """
    if len(intervals) < 2:
        return True
    ordered = list(intervals)
    for earlier, later in zip(ordered, ordered[1:]):
        if not isinstance(earlier, Interval) or not isinstance(later, Interval):
            raise SpatialError("consecutive-ness is only defined for 1D intervals")
        if not earlier.precedes(later, strict=True):
            return False
        if max_gap is not None and later.start - earlier.end > max_gap:
            return False
    return True


def are_disjoint(substructures: Sequence[Substructure]) -> bool:
    """True when no two substructures in the sequence overlap."""
    items = list(substructures)
    for position, left in enumerate(items):
        for right in items[position + 1:]:
            if if_overlap(left, right):
                return False
    return True
