"""1D intervals over ordered domains (sequence coordinates).

An :class:`Interval` is a half-open-agnostic, *closed* integer-or-float
interval ``[start, end]`` with ``start <= end``, optionally carrying a domain
name (e.g. the chromosome or sequence accession it belongs to) and an
arbitrary payload (typically a referent identifier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SpatialError


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` on a 1D ordered domain.

    The ordering of intervals is lexicographic on ``(start, end)`` which is
    what the paper's ``next`` operator needs for "the sub-structure
    encountered next in the ordering".
    """

    start: float
    end: float
    domain: str | None = field(default=None, compare=False)
    payload: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SpatialError(f"interval end {self.end} precedes start {self.start}")

    @property
    def length(self) -> float:
        """Length of the interval (0 for a point interval)."""
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one point.

        Intervals on different named domains never overlap.
        """
        if not self._same_domain(other):
            return False
        return self.start <= other.end and other.start <= self.end

    def contains(self, other: "Interval") -> bool:
        """True when *other* lies entirely within this interval."""
        if not self._same_domain(other):
            return False
        return self.start <= other.start and other.end <= self.end

    def contains_point(self, point: float) -> bool:
        """True when *point* lies within the closed interval."""
        return self.start <= point <= self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping sub-interval, or ``None`` when disjoint.

        This is the paper's ``intersect`` operator for the sequence data
        type ("valid for convex data types such as sequences").
        """
        if not self.overlaps(other):
            return None
        return Interval(
            start=max(self.start, other.start),
            end=min(self.end, other.end),
            domain=self.domain,
        )

    def union_span(self, other: "Interval") -> "Interval":
        """Smallest interval covering both (they need not overlap)."""
        if not self._same_domain(other):
            raise SpatialError(
                f"cannot span intervals on different domains {self.domain!r} and {other.domain!r}"
            )
        return Interval(min(self.start, other.start), max(self.end, other.end), domain=self.domain)

    def distance_to(self, other: "Interval") -> float:
        """Gap between the intervals (0 when they touch or overlap)."""
        if not self._same_domain(other):
            raise SpatialError("distance is undefined across domains")
        if self.overlaps(other):
            return 0.0
        if self.end < other.start:
            return float(other.start - self.end)
        return float(self.start - other.end)

    def precedes(self, other: "Interval", strict: bool = True) -> bool:
        """True when this interval ends before *other* begins."""
        if not self._same_domain(other):
            return False
        if strict:
            return self.end < other.start
        return self.end <= other.start

    def shifted(self, offset: float) -> "Interval":
        """A copy translated by *offset*."""
        return Interval(self.start + offset, self.end + offset, domain=self.domain, payload=self.payload)

    def with_payload(self, payload: Any) -> "Interval":
        """A copy carrying *payload*."""
        return Interval(self.start, self.end, domain=self.domain, payload=payload)

    def _same_domain(self, other: "Interval") -> bool:
        if self.domain is None or other.domain is None:
            return True
        return self.domain == other.domain

    def as_tuple(self) -> tuple[float, float]:
        """``(start, end)`` tuple."""
        return (self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        domain = f" {self.domain}" if self.domain else ""
        return f"Interval([{self.start}, {self.end}]{domain})"


def merge_intervals(intervals: list[Interval]) -> list[Interval]:
    """Merge overlapping/touching intervals into a minimal disjoint cover.

    The input may be unsorted; the output is sorted by start.  Domains are
    respected: intervals from different domains are never merged.
    """
    by_domain: dict[str | None, list[Interval]] = {}
    for interval in intervals:
        by_domain.setdefault(interval.domain, []).append(interval)
    merged: list[Interval] = []
    for domain, group in by_domain.items():
        group = sorted(group, key=lambda item: (item.start, item.end))
        current: Interval | None = None
        for interval in group:
            if current is None:
                current = interval
                continue
            if interval.start <= current.end:
                current = Interval(current.start, max(current.end, interval.end), domain=domain)
            else:
                merged.append(current)
                current = interval
        if current is not None:
            merged.append(current)
    return sorted(merged, key=lambda item: (item.domain or "", item.start, item.end))


def total_coverage(intervals: list[Interval]) -> float:
    """Total length covered by the (possibly overlapping) intervals."""
    return sum(interval.length for interval in merge_intervals(intervals))
