"""Augmented interval tree (one per coordinate domain).

The paper keeps "a single interval tree ... per chromosome instead of per
annotated DNA sequence".  This module implements a classic augmented
balanced-BST interval tree: nodes are keyed by interval start and each node
stores the maximum end value of its subtree, giving O(log n + k) stabbing and
overlap queries.  Balancing uses the AVL discipline so adversarially ordered
inserts (e.g. sorted genomic features) stay logarithmic.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import SpatialError
from repro.spatial.interval import Interval


class _Node:
    """One AVL node holding all intervals that share a ``(start, end)`` key."""

    __slots__ = ("key", "intervals", "left", "right", "height", "max_end")

    def __init__(self, interval: Interval):
        self.key = (interval.start, interval.end)
        self.intervals: list[Interval] = [interval]
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.height = 1
        self.max_end = interval.end


def _height(node: _Node | None) -> int:
    return node.height if node is not None else 0


def _max_end(node: _Node | None) -> float:
    return node.max_end if node is not None else float("-inf")


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))
    node.max_end = max(node.key[1], _max_end(node.left), _max_end(node.right))


def _rotate_right(node: _Node) -> _Node:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _update(node)
    _update(pivot)
    return pivot


def _rotate_left(node: _Node) -> _Node:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _update(node)
    _update(pivot)
    return pivot


def _balance(node: _Node) -> _Node:
    _update(node)
    balance = _height(node.left) - _height(node.right)
    if balance > 1:
        assert node.left is not None
        if _height(node.left.left) < _height(node.left.right):
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _height(node.right.right) < _height(node.right.left):
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class IntervalTree:
    """Augmented AVL interval tree over one coordinate domain.

    Parameters
    ----------
    domain:
        Optional domain name (e.g. ``"chr7"``).  When set, inserted intervals
        must either carry the same domain or no domain at all.
    """

    def __init__(self, domain: str | None = None):
        self.domain = domain
        self._root: _Node | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Interval]:
        yield from self._inorder(self._root)

    # -- mutation -----------------------------------------------------------

    def insert(self, interval: Interval) -> None:
        """Insert an interval (duplicates with distinct payloads are kept)."""
        if self.domain is not None and interval.domain not in (None, self.domain):
            raise SpatialError(
                f"interval domain {interval.domain!r} does not match tree domain {self.domain!r}"
            )
        self._root = self._insert(self._root, interval)
        self._size += 1

    def insert_many(self, intervals: list[Interval]) -> None:
        """Insert several intervals."""
        for interval in intervals:
            self.insert(interval)

    def remove(self, interval: Interval) -> bool:
        """Remove one stored interval equal to *interval* (same start/end and
        payload).  Returns ``True`` when something was removed."""
        removed, self._root = self._remove(self._root, interval)
        if removed:
            self._size -= 1
        return removed

    def _insert(self, node: _Node | None, interval: Interval) -> _Node:
        if node is None:
            return _Node(interval)
        key = (interval.start, interval.end)
        if key == node.key:
            node.intervals.append(interval)
            _update(node)
            return node
        if key < node.key:
            node.left = self._insert(node.left, interval)
        else:
            node.right = self._insert(node.right, interval)
        return _balance(node)

    def _remove(self, node: _Node | None, interval: Interval) -> tuple[bool, _Node | None]:
        if node is None:
            return False, None
        key = (interval.start, interval.end)
        if key < node.key:
            removed, node.left = self._remove(node.left, interval)
            return removed, _balance(node) if node else node
        if key > node.key:
            removed, node.right = self._remove(node.right, interval)
            return removed, _balance(node)
        # key matches: remove one matching interval (payload-aware)
        for position, stored in enumerate(node.intervals):
            if stored.payload == interval.payload:
                node.intervals.pop(position)
                break
        else:
            return False, _balance(node)
        if node.intervals:
            return True, _balance(node)
        # node is now empty: splice it out of the BST
        if node.left is None:
            return True, node.right
        if node.right is None:
            return True, node.left
        successor = node.right
        while successor.left is not None:
            successor = successor.left
        node.key = successor.key
        node.intervals = successor.intervals
        successor.intervals = []
        _, node.right = self._remove_node(node.right, successor)
        return True, _balance(node)

    def _remove_node(self, node: _Node | None, target: _Node) -> tuple[bool, _Node | None]:
        if node is None:
            return False, None
        if node is target:
            if node.left is None:
                return True, node.right
            if node.right is None:
                return True, node.left
        if target.key < node.key:
            removed, node.left = self._remove_node(node.left, target)
        else:
            removed, node.right = self._remove_node(node.right, target)
        return removed, _balance(node)

    # -- queries ------------------------------------------------------------

    def search_overlap(self, query: Interval) -> list[Interval]:
        """All stored intervals overlapping *query*, sorted by (start, end)."""
        results: list[Interval] = []
        self._search(self._root, query, results)
        results.sort(key=lambda item: (item.start, item.end))
        return results

    def stab(self, point: float) -> list[Interval]:
        """All stored intervals containing *point*."""
        return self.search_overlap(Interval(point, point, domain=self.domain))

    def search_contained_in(self, query: Interval) -> list[Interval]:
        """All stored intervals fully contained in *query*."""
        return [interval for interval in self.search_overlap(query) if query.contains(interval)]

    def next_after(self, query: Interval) -> Interval | None:
        """The paper's ``next`` operator: the first stored interval strictly
        after *query* in the (start, end) ordering."""
        best: Interval | None = None
        node = self._root
        key = (query.start, query.end)
        while node is not None:
            if node.key > key:
                best = node.intervals[0]
                node = node.left
            else:
                node = node.right
        return best

    def count_overlap(self, query: Interval) -> int:
        """Number of stored intervals overlapping *query*."""
        return len(self.search_overlap(query))

    def span(self) -> Interval | None:
        """Smallest interval covering every stored interval, or None if empty."""
        if self._root is None:
            return None
        node = self._root
        while node.left is not None:
            node = node.left
        return Interval(node.key[0], self._root.max_end, domain=self.domain)

    def height(self) -> int:
        """Tree height (0 when empty); useful for balance assertions."""
        return _height(self._root)

    def _search(self, node: _Node | None, query: Interval, results: list[Interval]) -> None:
        if node is None:
            return
        if _max_end(node) < query.start:
            return
        self._search(node.left, query, results)
        if node.key[0] <= query.end and query.start <= node.key[1]:
            results.extend(
                interval for interval in node.intervals if interval.overlaps(query)
            )
        if node.key[0] <= query.end:
            self._search(node.right, query, results)

    def _inorder(self, node: _Node | None) -> Iterator[Interval]:
        if node is None:
            return
        yield from self._inorder(node.left)
        yield from node.intervals
        yield from self._inorder(node.right)

    # -- bulk construction ----------------------------------------------------

    @classmethod
    def from_intervals(cls, intervals: list[Interval], domain: str | None = None) -> "IntervalTree":
        """Build a tree from a list of intervals."""
        tree = cls(domain=domain)
        tree.insert_many(intervals)
        return tree


class IntervalIndexFamily:
    """A family of interval trees keyed by domain name.

    The paper's space optimisation ("a single interval tree is created per
    chromosome instead of per annotated DNA sequence") is exactly this
    grouping: referents from many sequences that share a coordinate domain
    live in the same tree.
    """

    def __init__(self) -> None:
        self._trees: dict[str, IntervalTree] = {}

    def __len__(self) -> int:
        return len(self._trees)

    def __contains__(self, domain: str) -> bool:
        return domain in self._trees

    @property
    def domains(self) -> tuple[str, ...]:
        """Known coordinate domains."""
        return tuple(self._trees)

    def tree(self, domain: str) -> IntervalTree:
        """The tree for *domain*, created on first use."""
        if domain not in self._trees:
            self._trees[domain] = IntervalTree(domain=domain)
        return self._trees[domain]

    def insert(self, domain: str, interval: Interval) -> None:
        """Insert an interval into the tree for *domain*."""
        self.tree(domain).insert(interval)

    def search_overlap(self, domain: str, query: Interval) -> list[Interval]:
        """Overlap query against one domain (empty when the domain is unknown)."""
        if domain not in self._trees:
            return []
        return self._trees[domain].search_overlap(query)

    def total_intervals(self) -> int:
        """Total number of indexed intervals across all domains."""
        return sum(len(tree) for tree in self._trees.values())

    def apply(self, fn: Callable[[str, IntervalTree], Any]) -> list[Any]:
        """Apply *fn(domain, tree)* to every tree and collect the results."""
        return [fn(domain, tree) for domain, tree in self._trees.items()]
