"""Axis-aligned rectangles / boxes in 2 or 3 dimensions.

A :class:`Rect` is the unit stored in Graphitti's R-trees: an annotated image
region (2D) or volumetric region (3D), expressed in a shared coordinate
system such as a brain atlas space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import SpatialError


@dataclass(frozen=True)
class Rect:
    """An axis-aligned box: ``lo[i] <= hi[i]`` for every dimension ``i``.

    Parameters
    ----------
    lo, hi:
        Lower and upper corner coordinates.  Both must have the same length
        (2 or 3 in practice, any dimension is supported).
    space:
        Optional name of the coordinate system the box lives in.
    payload:
        Arbitrary payload (typically a referent identifier).
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]
    space: str | None = field(default=None, compare=False)
    payload: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        lo = tuple(float(value) for value in self.lo)
        hi = tuple(float(value) for value in self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if len(lo) != len(hi):
            raise SpatialError("lo and hi must have the same dimensionality")
        if not lo:
            raise SpatialError("a rectangle needs at least one dimension")
        for low, high in zip(lo, hi):
            if high < low:
                raise SpatialError(f"upper bound {high} precedes lower bound {low}")

    @classmethod
    def from_points(cls, *points: Sequence[float], space: str | None = None, payload: Any = None) -> "Rect":
        """Bounding box of a set of points."""
        if not points:
            raise SpatialError("at least one point is required")
        dimension = len(points[0])
        lo = tuple(min(point[i] for point in points) for i in range(dimension))
        hi = tuple(max(point[i] for point in points) for i in range(dimension))
        return cls(lo, hi, space=space, payload=payload)

    @property
    def dimension(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def center(self) -> tuple[float, ...]:
        """Center point of the box."""
        return tuple((low + high) / 2.0 for low, high in zip(self.lo, self.hi))

    def extent(self, axis: int) -> float:
        """Length along *axis*."""
        return self.hi[axis] - self.lo[axis]

    def area(self) -> float:
        """Hyper-volume of the box (area in 2D, volume in 3D)."""
        result = 1.0
        for low, high in zip(self.lo, self.hi):
            result *= (high - low)
        return result

    def margin(self) -> float:
        """Sum of the edge lengths (the R*-tree 'margin' measure)."""
        return sum(high - low for low, high in zip(self.lo, self.hi))

    def overlaps(self, other: "Rect") -> bool:
        """True when the closed boxes share at least one point."""
        self._check_compatible(other)
        return all(
            low <= other_high and other_low <= high
            for low, high, other_low, other_high in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains(self, other: "Rect") -> bool:
        """True when *other* lies entirely inside this box."""
        self._check_compatible(other)
        return all(
            low <= other_low and other_high <= high
            for low, high, other_low, other_high in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when *point* lies within the closed box."""
        if len(point) != self.dimension:
            raise SpatialError("point dimensionality mismatch")
        return all(low <= value <= high for low, high, value in zip(self.lo, self.hi, point))

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping box, or ``None`` when disjoint.

        This is the paper's ``intersect`` operator for convex 2D/3D regions.
        """
        if not self.overlaps(other):
            return None
        lo = tuple(max(low, other_low) for low, other_low in zip(self.lo, other.lo))
        hi = tuple(min(high, other_high) for high, other_high in zip(self.hi, other.hi))
        return Rect(lo, hi, space=self.space)

    def union(self, other: "Rect") -> "Rect":
        """Smallest box covering both."""
        self._check_compatible(other)
        lo = tuple(min(low, other_low) for low, other_low in zip(self.lo, other.lo))
        hi = tuple(max(high, other_high) for high, other_high in zip(self.hi, other.hi))
        return Rect(lo, hi, space=self.space or other.space)

    def enlargement_to_include(self, other: "Rect") -> float:
        """Increase in area needed to cover *other* (Guttman's insertion metric)."""
        return self.union(other).area() - self.area()

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (0 when disjoint)."""
        shared = self.intersection(other)
        return shared.area() if shared is not None else 0.0

    def min_distance(self, other: "Rect") -> float:
        """Minimum Euclidean distance between the two boxes (0 when overlapping)."""
        self._check_compatible(other)
        total = 0.0
        for low, high, other_low, other_high in zip(self.lo, self.hi, other.lo, other.hi):
            if other_high < low:
                gap = low - other_high
            elif high < other_low:
                gap = other_low - high
            else:
                gap = 0.0
            total += gap * gap
        return total ** 0.5

    def with_payload(self, payload: Any) -> "Rect":
        """Copy carrying *payload*."""
        return Rect(self.lo, self.hi, space=self.space, payload=payload)

    def _check_compatible(self, other: "Rect") -> None:
        if self.dimension != other.dimension:
            raise SpatialError(
                f"dimension mismatch: {self.dimension} vs {other.dimension}"
            )
        if self.space is not None and other.space is not None and self.space != other.space:
            raise SpatialError(
                f"coordinate-space mismatch: {self.space!r} vs {other.space!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        space = f" {self.space}" if self.space else ""
        return f"Rect({self.lo} .. {self.hi}{space})"


def bounding_rect(rects: Sequence[Rect]) -> Rect:
    """Smallest box covering every box in *rects*."""
    if not rects:
        raise SpatialError("bounding_rect() of an empty sequence")
    result = rects[0]
    for rect in rects[1:]:
        result = result.union(rect)
    return result
