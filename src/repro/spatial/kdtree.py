"""KD-tree over rectangle centers: an alternate 2D/3D index for ablation.

The paper indexes 2D/3D substructures in R-trees.  A KD-tree on region centers
is a common alternative for point/nearest queries; providing it lets the
PERF-2 ablation contrast the two.  Window (overlap) queries on a KD-tree of
centers are answered by pruning on the split axis and verifying candidate
rectangles, so the structure is exact for the rectangle-overlap predicate the
query layer needs.
"""

from __future__ import annotations

from repro.errors import SpatialError
from repro.spatial.rect import Rect


class _KdNode:
    __slots__ = ("rect", "center", "axis", "left", "right", "max_hi")

    def __init__(self, rect: Rect, axis: int):
        self.rect = rect
        self.center = rect.center
        self.axis = axis
        self.left: "_KdNode | None" = None
        self.right: "_KdNode | None" = None
        # Max upper-corner per axis in this subtree, for overlap pruning.
        self.max_hi = list(rect.hi)


class KdTree:
    """A static KD-tree over rectangle centers."""

    def __init__(self, rects: list[Rect], space: str | None = None):
        self.space = space
        self._rects = list(rects)
        self._dimension = rects[0].dimension if rects else 2
        self._root = self._build(list(rects), depth=0)

    def __len__(self) -> int:
        return len(self._rects)

    @classmethod
    def from_rects(cls, rects: list[Rect], space: str | None = None) -> "KdTree":
        """Build a KD-tree from a list of rectangles."""
        return cls(rects, space=space)

    def _build(self, rects: list[Rect], depth: int) -> _KdNode | None:
        if not rects:
            return None
        axis = depth % self._dimension
        rects.sort(key=lambda rect: rect.center[axis])
        mid = len(rects) // 2
        node = _KdNode(rects[mid], axis)
        node.left = self._build(rects[:mid], depth + 1)
        node.right = self._build(rects[mid + 1:], depth + 1)
        for child in (node.left, node.right):
            if child is not None:
                node.max_hi = [max(a, b) for a, b in zip(node.max_hi, child.max_hi)]
        return node

    def search_overlap(self, query: Rect) -> list[Rect]:
        """All stored rectangles overlapping *query*."""
        if self.space is not None and query.space is not None and self.space != query.space:
            raise SpatialError("coordinate-space mismatch")
        results: list[Rect] = []
        self._search(self._root, query, results)
        return results

    def _search(self, node: _KdNode | None, query: Rect, results: list[Rect]) -> None:
        if node is None:
            return
        # Prune: if the whole subtree lies below the query on every axis, skip.
        if all(node.max_hi[axis] >= query.lo[axis] for axis in range(self._dimension)):
            if node.rect.overlaps(query):
                results.append(node.rect)
            self._search(node.left, query, results)
            self._search(node.right, query, results)
        else:
            # Still may contain overlaps on the left (smaller) side.
            self._search(node.left, query, results)
            self._search(node.right, query, results)

    def count_overlap(self, query: Rect) -> int:
        """Number of stored rectangles overlapping *query*."""
        return len(self.search_overlap(query))
