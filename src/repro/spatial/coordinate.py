"""Coordinate systems shared by annotated substructures.

The paper keeps "the number of the index structures small" by indexing all
substructures that share a coordinate domain in one structure: one interval
tree per chromosome, one R-tree per brain coordinate system (per resolution).
A :class:`CoordinateSystem` names such a domain and records enough metadata
to validate marks against it; the :class:`CoordinateSystemRegistry` is the
authoritative list of systems known to a Graphitti instance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.errors import CoordinateSystemError


class CoordinateKind(enum.Enum):
    """Dimensionality class of a coordinate system."""

    LINEAR = "linear"      # 1D ordered domain: sequences, chromosomes, time
    PLANAR = "planar"      # 2D: image pixel / section coordinates
    VOLUMETRIC = "volumetric"  # 3D: atlas / volumetric coordinates

    @property
    def dimension(self) -> int:
        """Number of spatial dimensions."""
        if self is CoordinateKind.LINEAR:
            return 1
        if self is CoordinateKind.PLANAR:
            return 2
        return 3


@dataclass(frozen=True)
class CoordinateSystem:
    """A named coordinate domain that substructure marks are expressed in.

    Parameters
    ----------
    name:
        Unique name, e.g. ``"influenza:segment4"`` or ``"mouse-atlas:25um"``.
    kind:
        Dimensionality class.
    extent:
        Optional domain bounds.  For LINEAR systems a ``(lo, hi)`` pair; for
        PLANAR/VOLUMETRIC systems a per-axis sequence of ``(lo, hi)`` pairs.
    resolution:
        Optional human-readable resolution tag (the paper groups brain images
        "of the same resolution" into one system).
    metadata:
        Free-form extra attributes.
    """

    name: str
    kind: CoordinateKind
    extent: tuple | None = None
    resolution: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise CoordinateSystemError("coordinate system name must be non-empty")
        if self.extent is not None:
            object.__setattr__(self, "extent", self._normalize_extent(self.extent))

    def _normalize_extent(self, extent: Any) -> tuple:
        if self.kind is CoordinateKind.LINEAR:
            lo, hi = extent
            if hi < lo:
                raise CoordinateSystemError("linear extent upper bound precedes lower bound")
            return (float(lo), float(hi))
        axes = tuple(tuple(map(float, axis)) for axis in extent)
        if len(axes) != self.kind.dimension:
            raise CoordinateSystemError(
                f"{self.kind.value} extent must have {self.kind.dimension} axes, got {len(axes)}"
            )
        for lo, hi in axes:
            if hi < lo:
                raise CoordinateSystemError("extent upper bound precedes lower bound")
        return axes

    @property
    def dimension(self) -> int:
        """Number of spatial dimensions."""
        return self.kind.dimension

    def validate_interval(self, start: float, end: float) -> None:
        """Check a 1D mark against the system (LINEAR systems only)."""
        if self.kind is not CoordinateKind.LINEAR:
            raise CoordinateSystemError(
                f"coordinate system {self.name!r} is {self.kind.value}, not linear"
            )
        if end < start:
            raise CoordinateSystemError("interval end precedes start")
        if self.extent is not None:
            lo, hi = self.extent
            if start < lo or end > hi:
                raise CoordinateSystemError(
                    f"interval [{start}, {end}] outside extent [{lo}, {hi}] of {self.name!r}"
                )

    def validate_box(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        """Check a 2D/3D mark against the system (PLANAR/VOLUMETRIC only)."""
        if self.kind is CoordinateKind.LINEAR:
            raise CoordinateSystemError(
                f"coordinate system {self.name!r} is linear, not {len(lo)}-dimensional"
            )
        if len(lo) != self.dimension or len(hi) != self.dimension:
            raise CoordinateSystemError(
                f"mark dimensionality {len(lo)} does not match {self.name!r} ({self.dimension}D)"
            )
        for axis, (low, high) in enumerate(zip(lo, hi)):
            if high < low:
                raise CoordinateSystemError("box upper corner precedes lower corner")
            if self.extent is not None:
                axis_lo, axis_hi = self.extent[axis]
                if low < axis_lo or high > axis_hi:
                    raise CoordinateSystemError(
                        f"box axis {axis} [{low}, {high}] outside extent [{axis_lo}, {axis_hi}]"
                    )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "extent": self.extent,
            "resolution": self.resolution,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CoordinateSystem":
        """Reconstruct from :meth:`to_dict` output."""
        extent = payload.get("extent")
        if extent is not None:
            extent = tuple(tuple(axis) if isinstance(axis, (list, tuple)) else axis for axis in extent)
        return cls(
            name=payload["name"],
            kind=CoordinateKind(payload["kind"]),
            extent=extent,
            resolution=payload.get("resolution"),
            metadata=payload.get("metadata", {}),
        )


class CoordinateSystemRegistry:
    """Registry of the coordinate systems known to a Graphitti instance."""

    def __init__(self) -> None:
        self._systems: dict[str, CoordinateSystem] = {}

    def __len__(self) -> int:
        return len(self._systems)

    def __contains__(self, name: str) -> bool:
        return name in self._systems

    def __iter__(self) -> Iterator[CoordinateSystem]:
        return iter(self._systems.values())

    def register(self, system: CoordinateSystem) -> CoordinateSystem:
        """Register a coordinate system.

        Re-registering an identical system is a no-op; registering a
        different system under an existing name raises.
        """
        existing = self._systems.get(system.name)
        if existing is not None:
            if existing == system:
                return existing
            raise CoordinateSystemError(
                f"coordinate system {system.name!r} already registered with different parameters"
            )
        self._systems[system.name] = system
        return system

    def linear(self, name: str, extent: tuple[float, float] | None = None, **metadata: Any) -> CoordinateSystem:
        """Register (or fetch) a linear coordinate system."""
        return self.register(CoordinateSystem(name, CoordinateKind.LINEAR, extent=extent, metadata=metadata))

    def planar(self, name: str, extent: tuple | None = None, resolution: str | None = None) -> CoordinateSystem:
        """Register (or fetch) a planar (2D) coordinate system."""
        return self.register(
            CoordinateSystem(name, CoordinateKind.PLANAR, extent=extent, resolution=resolution)
        )

    def volumetric(self, name: str, extent: tuple | None = None, resolution: str | None = None) -> CoordinateSystem:
        """Register (or fetch) a volumetric (3D) coordinate system."""
        return self.register(
            CoordinateSystem(name, CoordinateKind.VOLUMETRIC, extent=extent, resolution=resolution)
        )

    def get(self, name: str) -> CoordinateSystem:
        """The registered system named *name*; raises when unknown."""
        try:
            return self._systems[name]
        except KeyError:
            raise CoordinateSystemError(f"unknown coordinate system {name!r}") from None

    def names(self) -> tuple[str, ...]:
        """Names of every registered system."""
        return tuple(self._systems)
