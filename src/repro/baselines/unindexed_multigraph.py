"""The pre-indexing labeled multigraph engine, kept as a benchmark baseline.

This module preserves the access paths the a-graph substrate used before the
indexed-adjacency refactor, so ``benchmarks/bench_adjacency_engine.py`` can
measure the refactor against the exact code shape it replaced:

* adjacency stored as one flat edge list per node — every access copies the
  list, and a label filter is a linear scan over all incident edges;
* ``path()`` concatenates the out- and in-lists on every BFS expansion;
* connected components are recomputed with a full BFS sweep per query;
* ``connect()`` re-runs ``path()`` from the anchor once per terminal;
* pairwise path evaluation runs one BFS per (source, target) pair.

It intentionally mirrors the old :class:`LabeledMultigraph`/`AGraph` API
surface the benchmarks exercise; it is not meant for production use.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Iterable

from repro.errors import UnknownNodeError


class UnindexedMultigraph:
    """Flat-edge-list multigraph: the pre-refactor adjacency representation."""

    def __init__(self) -> None:
        self._nodes: dict[Hashable, str] = {}
        self._out: dict[Hashable, list[tuple[Hashable, Hashable, str]]] = {}
        self._in: dict[Hashable, list[tuple[Hashable, Hashable, str]]] = {}
        self._edge_count = 0

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._edge_count

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    def add_node(self, node_id: Hashable, kind: str = "node") -> None:
        """Add (or update the kind of) a node."""
        if node_id not in self._nodes:
            self._out[node_id] = []
            self._in[node_id] = []
        self._nodes[node_id] = kind

    def add_edge(self, source: Hashable, target: Hashable, label: str = "") -> None:
        """Add a directed labeled edge (endpoints must already exist)."""
        if source not in self._nodes or target not in self._nodes:
            raise UnknownNodeError("both endpoints must exist")
        edge = (source, target, label)
        self._out[source].append(edge)
        self._in[target].append(edge)
        self._edge_count += 1

    def node_kind(self, node_id: Hashable) -> str:
        """The kind tag of *node_id*."""
        return self._nodes[node_id]

    def node_ids(self) -> tuple[Hashable, ...]:
        """All node ids."""
        return tuple(self._nodes)

    def nodes_of_kind(self, kind: str) -> list[Hashable]:
        """Node ids of *kind*, by full node-table scan (the old access path)."""
        return [node_id for node_id, node_kind in self._nodes.items() if node_kind == kind]

    def incident_edges(
        self, node_id: Hashable, allowed: set[str] | None = None
    ) -> list[tuple[Hashable, Hashable, str]]:
        """Concatenated out+in edge lists, linearly filtered by label.

        Mirrors the pre-refactor ``AGraph._incident_edges`` shape exactly:
        the out- and in-lists are defensively copied (the old ``out_edges`` /
        ``in_edges`` accessors), concatenated, and label-filtered by scan.
        """
        edges = list(self._out[node_id]) + list(self._in[node_id])
        if allowed is None:
            return edges
        return [edge for edge in edges if edge[2] in allowed]

    def neighbors_undirected(self, node_id: Hashable) -> set[Hashable]:
        """Undirected neighbours, re-derived from the flat lists per call."""
        neighbors = {target for _, target, _ in self._out[node_id]}
        neighbors |= {source for source, _, _ in self._in[node_id]}
        return neighbors

    # -- pre-refactor traversal algorithms ------------------------------------

    def path(
        self, node1: Hashable, node2: Hashable, labels: Iterable[str] | None = None
    ) -> list[Hashable] | None:
        """Shortest undirected path; list-concatenating BFS expansion."""
        if node1 not in self._nodes or node2 not in self._nodes:
            raise UnknownNodeError("both endpoints must exist")
        if node1 == node2:
            return [node1]
        allowed = set(labels) if labels is not None else None
        previous: dict[Hashable, Hashable] = {node1: node1}
        queue: deque[Hashable] = deque([node1])
        while queue:
            current = queue.popleft()
            for source, target, _ in self.incident_edges(current, allowed):
                neighbor = target if source == current else source
                if neighbor not in previous:
                    previous[neighbor] = current
                    if neighbor == node2:
                        return _reconstruct(previous, node1, node2)
                    queue.append(neighbor)
        return None

    def connected_component(self, node_id: Hashable) -> set[Hashable]:
        """Component by BFS sweep (recomputed from scratch on every call)."""
        seen = {node_id}
        queue = deque([node_id])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors_undirected(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen

    def connected_components(self) -> list[set[Hashable]]:
        """All components, one BFS sweep per undiscovered node."""
        seen: set[Hashable] = set()
        components: list[set[Hashable]] = []
        for node in self._nodes:
            if node not in seen:
                component = self.connected_component(node)
                seen |= component
                components.append(component)
        return components

    def connect_nodes(self, *node_ids: Hashable):
        """Star-of-paths connection, the pre-refactor way: one ``path()`` BFS
        per terminal, then a linear incident-list scan per hop to materialize
        the edges along each path (the old ``AGraph._find_edge``)."""
        terminals = tuple(node_ids)
        anchor = terminals[0]
        results = []
        for terminal in terminals[1:]:
            path = self.path(anchor, terminal)
            if path is None:
                continue
            edges = []
            for source, target in zip(path, path[1:]):
                edge = self._find_edge_scan(source, target)
                if edge is not None:
                    edges.append(edge)
            results.append((path, edges))
        return results

    def _find_edge_scan(
        self, source: Hashable, target: Hashable
    ) -> tuple[Hashable, Hashable, str] | None:
        for edge in self._out[source]:
            if edge[1] == target:
                return edge
        for edge in self._in[source]:
            if edge[0] == target:
                return edge
        return None

    def pairwise_path_eval(
        self,
        sources: Iterable[Hashable],
        targets: Iterable[Hashable],
        max_length: int,
        kind: str = "content",
    ) -> set[Hashable]:
        """The old path-constraint evaluation: a BFS per (source, target)."""
        reachable: set[Hashable] = set()
        target_list = list(targets)
        for source in sources:
            for target in target_list:
                if source == target:
                    reachable.add(source)
                    continue
                path = self.path(source, target)
                if path is not None and len(path) - 1 <= max_length:
                    reachable.update(
                        node for node in path if self._nodes[node] == kind
                    )
        return reachable

    def group_by_component(self, node_ids: Iterable[Hashable]) -> list[list[Hashable]]:
        """The old result-page grouping: a component BFS per result seed."""
        remaining = set(node_ids)
        groups: list[list[Hashable]] = []
        while remaining:
            seed = next(iter(remaining))
            component = self.connected_component(seed)
            groups.append(sorted(remaining & component, key=repr))
            remaining -= component
        return groups


def _reconstruct(
    previous: dict[Hashable, Hashable], start: Hashable, end: Hashable
) -> list[Hashable]:
    path = [end]
    while path[-1] != start:
        path.append(previous[path[-1]])
    path.reverse()
    return path


def mirror_agraph(agraph: Any) -> UnindexedMultigraph:
    """Copy an :class:`~repro.agraph.agraph.AGraph`'s structure into the
    unindexed baseline representation (same nodes, kinds, and edges)."""
    mirror = UnindexedMultigraph()
    for node in agraph.graph.nodes():
        mirror.add_node(node.node_id, kind=node.kind)
    for edge in agraph.graph.edges():
        mirror.add_edge(edge.source, edge.target, label=edge.label)
    return mirror
