"""Linear-scan baselines for substructure overlap queries.

These reproduce "what you get without the index": every stored interval /
rectangle is tested against the query.  They share the query API of
:class:`~repro.spatial.interval_tree.IntervalTree` /
:class:`~repro.spatial.rtree.RTree` so the benchmark harness can swap them in.
"""

from __future__ import annotations

from repro.spatial.interval import Interval
from repro.spatial.rect import Rect


def linear_interval_overlap(intervals: list[Interval], query: Interval) -> list[Interval]:
    """All intervals overlapping *query*, found by linear scan."""
    return [interval for interval in intervals if interval.overlaps(query)]


def linear_region_overlap(rects: list[Rect], query: Rect) -> list[Rect]:
    """All rectangles overlapping *query*, found by linear scan."""
    return [rect for rect in rects if rect.overlaps(query)]


class LinearIntervalIndex:
    """A no-op "index" over intervals: inserts append, queries scan."""

    def __init__(self, domain: str | None = None):
        self.domain = domain
        self._intervals: list[Interval] = []

    def __len__(self) -> int:
        return len(self._intervals)

    def insert(self, interval: Interval) -> None:
        """Append an interval (O(1))."""
        self._intervals.append(interval)

    def insert_many(self, intervals: list[Interval]) -> None:
        """Append several intervals."""
        self._intervals.extend(intervals)

    def search_overlap(self, query: Interval) -> list[Interval]:
        """Overlap query by linear scan (O(n))."""
        results = linear_interval_overlap(self._intervals, query)
        results.sort(key=lambda item: (item.start, item.end))
        return results

    def stab(self, point: float) -> list[Interval]:
        """Point-stab query by linear scan."""
        return self.search_overlap(Interval(point, point, domain=self.domain))

    def count_overlap(self, query: Interval) -> int:
        """Count of overlapping intervals."""
        return sum(1 for interval in self._intervals if interval.overlaps(query))


class LinearRegionIndex:
    """A no-op "index" over rectangles: inserts append, queries scan."""

    def __init__(self, space: str | None = None):
        self.space = space
        self._rects: list[Rect] = []

    def __len__(self) -> int:
        return len(self._rects)

    def insert(self, rect: Rect) -> None:
        """Append a rectangle (O(1))."""
        self._rects.append(rect)

    def insert_many(self, rects: list[Rect]) -> None:
        """Append several rectangles."""
        self._rects.extend(rects)

    def search_overlap(self, query: Rect) -> list[Rect]:
        """Overlap query by linear scan (O(n))."""
        return linear_region_overlap(self._rects, query)

    def count_overlap(self, query: Rect) -> int:
        """Count of overlapping rectangles."""
        return sum(1 for rect in self._rects if rect.overlaps(query))
