"""Baseline implementations for benchmark comparison.

The paper's design choices (interval trees, R-trees, the a-graph join index,
an indexed XML content collection, a query planner) only justify themselves
against the obvious alternatives.  This package provides those alternatives so
the benchmark harness can quantify the speed-up:

* :mod:`repro.baselines.linear_scan` -- substructure overlap by linear scan
  (no interval tree / R-tree),
* :mod:`repro.baselines.naive_graph` -- a-graph path/connection search over an
  unindexed edge list, and a networkx-backed comparator,
* :mod:`repro.baselines.unindexed_multigraph` -- the pre-indexing multigraph
  engine (flat per-node edge lists, list-concatenating BFS, per-query
  component sweeps, pairwise path evaluation),
* :mod:`repro.baselines.relational_annotation` -- a Bhagwat-style single-table
  relational annotation store (annotations as rows, searched by scan).
"""

from repro.baselines.linear_scan import (
    LinearIntervalIndex,
    LinearRegionIndex,
    linear_interval_overlap,
    linear_region_overlap,
)
from repro.baselines.naive_graph import NaiveGraph, networkx_shortest_path
from repro.baselines.relational_annotation import RelationalAnnotationStore
from repro.baselines.unindexed_multigraph import UnindexedMultigraph, mirror_agraph

__all__ = [
    "LinearIntervalIndex",
    "LinearRegionIndex",
    "linear_interval_overlap",
    "linear_region_overlap",
    "NaiveGraph",
    "networkx_shortest_path",
    "RelationalAnnotationStore",
    "UnindexedMultigraph",
    "mirror_agraph",
]
