"""Naive graph baselines for the a-graph primitives.

:class:`NaiveGraph` stores edges in a flat list and answers path queries by
re-deriving adjacency on every call (no persistent adjacency index).  It is
the "unindexed edge list" comparator for the a-graph's ``path``/``connect``.
A thin wrapper around networkx is also provided so the benchmark can compare
against a mature library implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable


class NaiveGraph:
    """An undirected graph stored as a flat edge list (no adjacency index)."""

    def __init__(self) -> None:
        self._nodes: set[Hashable] = set()
        self._edges: list[tuple[Hashable, Hashable]] = []

    def add_node(self, node: Hashable) -> None:
        """Add a node."""
        self._nodes.add(node)

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Add an undirected edge (endpoints created as needed)."""
        self._nodes.add(source)
        self._nodes.add(target)
        self._edges.append((source, target))

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def _neighbors(self, node: Hashable) -> list[Hashable]:
        """Derive neighbours by scanning the whole edge list (O(E))."""
        neighbors = []
        for source, target in self._edges:
            if source == node:
                neighbors.append(target)
            elif target == node:
                neighbors.append(source)
        return neighbors

    def path(self, source: Hashable, target: Hashable) -> list[Hashable] | None:
        """Shortest path by BFS, re-scanning edges at every expansion."""
        if source not in self._nodes or target not in self._nodes:
            return None
        if source == target:
            return [source]
        previous: dict[Hashable, Hashable] = {source: source}
        queue: deque[Hashable] = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self._neighbors(current):
                if neighbor not in previous:
                    previous[neighbor] = current
                    if neighbor == target:
                        return self._reconstruct(previous, source, target)
                    queue.append(neighbor)
        return None

    def connected(self, source: Hashable, target: Hashable) -> bool:
        """True when a path exists between the two nodes."""
        return self.path(source, target) is not None

    @staticmethod
    def _reconstruct(previous: dict, source: Hashable, target: Hashable) -> list[Hashable]:
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return path


def networkx_shortest_path(edges: list[tuple[Hashable, Hashable]], source: Hashable, target: Hashable):
    """Shortest path via networkx (import is local so networkx stays optional)."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_edges_from(edges)
    if source not in graph or target not in graph:
        return None
    try:
        return nx.shortest_path(graph, source, target)
    except nx.NetworkXNoPath:
        return None
