"""Bhagwat-style relational annotation store baseline.

Bhagwat et al. (VLDB 2004, reference [2] in the paper) store annotations as
rows in a relational database and search them with SQL-ish scans.  This
baseline reproduces that approach over the embedded relational engine: every
annotation-referent pair is one row in a single flat table, and queries are
answered by scanning/filtering rows rather than by a graph join index.  It is
the comparator for the ingest and mixed-query benchmarks.
"""

from __future__ import annotations

from typing import Any

from repro.relational.database import Database
from repro.relational.query import and_, eq, ge, le
from repro.relational.schema import Column, ColumnType, TableSchema


class RelationalAnnotationStore:
    """A single-table relational annotation store (the flat baseline)."""

    TABLE = "annotations"

    def __init__(self, indexed: bool = False):
        self._database = Database("relational-annotations")
        schema = TableSchema(
            name=self.TABLE,
            columns=[
                Column("row_id", ColumnType.INTEGER, nullable=False),
                Column("annotation_id", ColumnType.TEXT, nullable=False),
                Column("keywords", ColumnType.TEXT),
                Column("object_id", ColumnType.TEXT),
                Column("data_type", ColumnType.TEXT),
                Column("domain", ColumnType.TEXT),
                Column("start", ColumnType.FLOAT),
                Column("end", ColumnType.FLOAT),
                Column("ontology_term", ColumnType.TEXT),
            ],
            primary_key="row_id",
        )
        self._table = self._database.create_table(schema)
        self._next_row = 1
        if indexed:
            self._table.create_index("annotation_id")
            self._table.create_index("ontology_term")
            self._table.create_sorted_index("start")

    @property
    def row_count(self) -> int:
        """Number of annotation-referent rows."""
        return len(self._table)

    def add_referent_row(
        self,
        annotation_id: str,
        keywords: str,
        object_id: str,
        data_type: str,
        domain: str | None = None,
        start: float | None = None,
        end: float | None = None,
        ontology_term: str | None = None,
    ) -> int:
        """Insert one annotation-referent row."""
        row_id = self._next_row
        self._next_row += 1
        self._table.insert(
            {
                "row_id": row_id,
                "annotation_id": annotation_id,
                "keywords": keywords,
                "object_id": object_id,
                "data_type": data_type,
                "domain": domain,
                "start": start,
                "end": end,
                "ontology_term": ontology_term,
            }
        )
        return row_id

    def search_keyword(self, keyword: str) -> list[str]:
        """Annotation ids whose keyword column contains *keyword* (scan)."""
        needle = keyword.lower()
        matches = {
            row["annotation_id"]
            for row in self._table
            if row["keywords"] and needle in row["keywords"].lower()
        }
        return sorted(matches)

    def search_ontology(self, term: str) -> list[str]:
        """Annotation ids with a row pointing at *term*."""
        matches = {row["annotation_id"] for row in self._table.select(eq("ontology_term", term))}
        return sorted(matches)

    def search_overlap(self, domain: str, start: float, end: float) -> list[str]:
        """Annotation ids with a referent overlapping ``[start, end]``.

        Overlap is ``row.start <= end AND row.end >= start`` evaluated by the
        relational engine (which will scan when no index helps the range).
        """
        predicate = and_(eq("domain", domain), le("start", end), ge("end", start))
        matches = {row["annotation_id"] for row in self._table.select(predicate)}
        return sorted(matches)

    def mixed_query(self, keyword: str, domain: str, start: float, end: float, term: str | None = None) -> list[str]:
        """A mixed keyword + overlap (+ optional ontology) query by scanning."""
        keyword_hits = set(self.search_keyword(keyword))
        overlap_hits = set(self.search_overlap(domain, start, end))
        result = keyword_hits & overlap_hits
        if term is not None:
            result &= set(self.search_ontology(term))
        return sorted(result)
