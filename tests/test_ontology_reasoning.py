"""Tests for the ontology reasoning layer."""

import pytest

from repro.errors import UnknownTermError
from repro.ontology.builtin import build_brain_region_ontology, build_protein_ontology
from repro.ontology.reasoning import OntologyReasoner


def protein_reasoner():
    return OntologyReasoner(build_protein_ontology())


def brain_reasoner():
    return OntologyReasoner(build_brain_region_ontology())


def test_lca_basic():
    r = protein_reasoner()
    # protease and kinase are both is_a enzyme
    lcas = r.lowest_common_ancestors("protein:protease", "protein:kinase")
    assert "protein:enzyme" in lcas


def test_lca_self():
    r = protein_reasoner()
    assert r.lowest_common_ancestors("protein:protease", "protein:protease") == {"protein:protease"}


def test_lca_disjoint_returns_common_root_if_any():
    r = protein_reasoner()
    # synuclein (structural) and protease (enzyme) share 'protein' root
    lcas = r.lowest_common_ancestors("protein:synuclein", "protein:protease")
    assert "protein:protein" in lcas


def test_wu_palmer_identical():
    r = protein_reasoner()
    assert r.wu_palmer_similarity("protein:protease", "protein:protease") == 1.0


def test_wu_palmer_related_more_than_distant():
    r = protein_reasoner()
    close = r.wu_palmer_similarity("protein:protease", "protein:kinase")
    far = r.wu_palmer_similarity("protein:protease", "protein:synuclein")
    assert 0.0 < far < close <= 1.0


def test_information_content_leaf_higher():
    r = brain_reasoner()
    leaf = r.information_content("brain:dentate")
    root = r.information_content("brain:brain")
    assert leaf > root


def test_relation_path():
    r = brain_reasoner()
    path = r.relation_path("brain:dentate", "brain:brain")
    assert path[0] == "brain:dentate"
    assert path[-1] == "brain:brain"


def test_relation_path_self():
    r = protein_reasoner()
    assert r.relation_path("protein:protease", "protein:protease") == ["protein:protease"]


def test_relation_path_unknown():
    r = protein_reasoner()
    with pytest.raises(UnknownTermError):
        r.relation_path("ghost", "protein:protease")


def test_distance():
    r = brain_reasoner()
    assert r.distance("brain:dentate", "brain:dcn") == 1
    assert r.distance("brain:dcn", "brain:dentate") == 1


def test_most_specific():
    r = brain_reasoner()
    # given cerebellum and its descendant dcn, only dcn is most specific
    result = r.most_specific(["brain:cerebellum", "brain:dcn"])
    assert result == ["brain:dcn"]


def test_most_specific_independent():
    r = protein_reasoner()
    result = r.most_specific(["protein:protease", "protein:kinase"])
    assert set(result) == {"protein:protease", "protein:kinase"}
