"""Cross-module integration tests exercising full Graphitti workflows."""

import pytest

from repro import Graphitti
from repro.datatypes import DnaSequence, Image, InteractionGraph, RelationalRecord, parse_newick
from repro.ontology.builtin import build_brain_region_ontology, build_protein_ontology
from repro.query.builder import QueryBuilder


def test_full_annotate_query_explore_cycle():
    g = Graphitti("integration")
    g.register_ontology(build_protein_ontology())
    g.register_ontology(build_brain_region_ontology())

    g.register(DnaSequence("gene", "ACGT" * 100, domain="chr1"))
    g.register(Image("slide", dimension=2, space="atlas", size=(200, 200)))
    g.register(parse_newick("((a,b),(c,d));", object_id="tree"))

    a1 = (
        g.new_annotation("ann1", keywords=["protease"], body="a protease site")
        .mark_sequence("gene", 10, 50, ontology_terms=["protein:protease"])
        .mark_region("slide", (10, 10), (50, 50), ontology_terms=["Deep Cerebellar nuclei"])
        .mark_clade_by_leaves("tree", ["a", "b"])
        .commit()
    )
    a2 = (
        g.new_annotation("ann2", keywords=["binding"], body="a binding region")
        .mark_sequence("gene", 10, 50)
        .commit()
    )

    # annotate wired the a-graph
    assert g.related_annotations("ann1") == ["ann2"]

    # query across content, ontology, spatial
    result = g.query(
        QueryBuilder.contents()
        .contains("protease")
        .refers("protein:protease")
        .overlaps_interval("chr1", 20, 30)
        .build()
    )
    assert result.annotation_ids == ["ann1"]

    # explore
    witness = g.witness_structure("ann1")
    assert len(witness["referents"]) == 3
    correlated = g.correlated_data("ann1")
    assert any("ann2" in others for others in correlated.values())


def test_xml_content_searchable_after_commit():
    g = Graphitti("x")
    g.register(DnaSequence("s", "ACGT" * 10, domain="c"))
    g.new_annotation("a", keywords=["unique_keyword_xyz"]).mark_sequence("s", 0, 5).commit()
    # the content document must be in the collection and keyword-searchable
    assert "a" in g.contents
    assert g.search_by_keyword("unique_keyword_xyz") == ["a"]


def test_shared_referent_creates_single_node():
    g = Graphitti("x")
    g.register(DnaSequence("s", "ACGT" * 10, domain="c"))
    g.new_annotation("a1").mark_sequence("s", 0, 5).commit()
    g.new_annotation("a2").mark_sequence("s", 0, 5).commit()
    # the identical mark is one referent node shared by both annotations
    assert g.substructures.total_indexed_intervals() == 1
    assert len(g.substructures) == 1


def test_distinct_marks_create_distinct_nodes():
    g = Graphitti("x")
    g.register(DnaSequence("s", "ACGT" * 10, domain="c"))
    g.new_annotation("a1").mark_sequence("s", 0, 5).commit()
    g.new_annotation("a2").mark_sequence("s", 6, 10).commit()
    assert len(g.substructures) == 2


def test_heterogeneous_join_via_ontology():
    g = Graphitti("x")
    g.register_ontology(build_protein_ontology())
    g.register(DnaSequence("seq", "ACGT" * 10, domain="c"))
    g.register(Image("img", dimension=2, space="atlas"))
    # two annotations on different data types share an ontology term
    g.new_annotation("seq-anno").mark_sequence("seq", 0, 5, ontology_terms=["protein:protease"]).commit()
    g.new_annotation("img-anno").mark_region("img", (0, 0), (5, 5), ontology_terms=["protein:protease"]).commit()
    # they are connected through the shared ontology node
    path = g.path_between_annotations("seq-anno", "img-anno")
    assert path is not None
    assert "protein:protease" in path


def test_statistics_consistency(workload_graphitti):
    g, summary = workload_graphitti
    stats = g.statistics()
    assert stats["annotations"] == len(summary["annotation_ids"])
    assert stats["agraph_nodes"] >= stats["annotations"]


def test_query_on_large_workload(workload_graphitti):
    g, summary = workload_graphitti
    result = g.query(QueryBuilder.contents().contains("protease").build())
    # every returned annotation really contains the keyword
    for annotation_id in result.annotation_ids:
        assert "protease" in g.annotation(annotation_id).content.text().lower()
