"""Tests for the OntoQuest operation set."""

import pytest

from repro.errors import OntologyError, UnknownTermError
from repro.ontology.builtin import build_brain_region_ontology, build_protein_ontology
from repro.ontology.model import INSTANCE_OF, IS_A, Ontology
from repro.ontology.operations import OntologyOperations


def make_ops(cache=True):
    o = build_protein_ontology()
    return OntologyOperations(o, cache=cache)


def test_ci_collects_instances_of_subconcepts():
    ops = make_ops()
    # Protease has instances trypsin, pepsin, ns3_protease.
    assert ops.ci("protein:protease") == {"protein:trypsin", "protein:pepsin", "protein:ns3_protease"}


def test_ci_of_parent_includes_descendant_instances():
    ops = make_ops()
    # Enzyme is_a parent of protease and kinase; CI should include protease instances.
    enzyme_instances = ops.ci("protein:enzyme")
    assert {"protein:trypsin", "protein:pepsin"} <= enzyme_instances


def test_ci_on_instance_raises():
    ops = make_ops()
    with pytest.raises(OntologyError):
        ops.ci("protein:trypsin")


def test_cri_restricts_relation():
    ops = make_ops()
    # Using only is_a from protease (no sub-concepts below protease) -> just its instances.
    assert ops.cri("protein:protease", IS_A) == {"protein:trypsin", "protein:pepsin", "protein:ns3_protease"}


def test_cmri_requires_relations():
    ops = make_ops()
    with pytest.raises(OntologyError):
        ops.cmri("protein:protease", [])


def test_cmri():
    ops = make_ops()
    result = ops.cmri("protein:enzyme", [IS_A])
    assert {"protein:trypsin", "protein:pepsin"} <= result


def test_mcmri_union():
    ops = make_ops()
    result = ops.mcmri(["protein:protease", "protein:kinase"], [IS_A])
    assert {"protein:trypsin", "protein:pepsin"} <= result


def test_mcmri_requires_concepts():
    ops = make_ops()
    with pytest.raises(OntologyError):
        ops.mcmri([], [IS_A])


def test_subtree():
    ops = OntologyOperations(build_brain_region_ontology())
    subtree = ops.subtree("brain:cerebellum", "part_of")
    assert "brain:cerebellum" in subtree
    assert "brain:dcn" in subtree


def test_subtree_difference():
    ops = OntologyOperations(build_brain_region_ontology())
    full = ops.subtree("brain:cerebellum", "part_of")
    difference = ops.subtree_difference("brain:cerebellum", "brain:dcn", "part_of")
    assert "brain:dcn" not in difference
    assert "brain:cerebellum" in difference
    assert difference < full


def test_subtree_difference_requires_descendant():
    ops = OntologyOperations(build_brain_region_ontology())
    with pytest.raises(OntologyError):
        ops.subtree_difference("brain:dcn", "brain:cerebellum", "part_of")


def test_subtree_edges():
    ops = OntologyOperations(build_brain_region_ontology())
    edges = ops.subtree_edges("brain:dcn", "is_a")
    assert ("brain:dentate", "brain:dcn") in edges


def test_resolve_term_by_id_and_name():
    ops = make_ops()
    assert ops.resolve_term("protein:protease") == "protein:protease"
    assert ops.resolve_term("Protease") == "protein:protease"


def test_resolve_term_unknown():
    ops = make_ops()
    with pytest.raises(UnknownTermError):
        ops.resolve_term("Nonexistent")


def test_concept_and_descendants():
    ops = OntologyOperations(build_brain_region_ontology())
    result = ops.concept_and_descendants("Deep Cerebellar nuclei")
    assert "brain:dcn" in result
    assert "brain:dentate" in result


def test_cache_consistency():
    ops_cached = make_ops(cache=True)
    ops_uncached = make_ops(cache=False)
    assert ops_cached.ci("protein:enzyme") == ops_uncached.ci("protein:enzyme")
    # cached call again returns same
    assert ops_cached.ci("protein:enzyme") == ops_uncached.ci("protein:enzyme")


def test_invalidate_cache():
    ops = make_ops(cache=True)
    _ = ops.ci("protein:protease")
    ops.invalidate_cache()
    assert ops.ci("protein:protease")  # still works after invalidation
