"""Tests for the GQL parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.ast import (
    KeywordConstraint,
    OntologyConstraint,
    OverlapConstraint,
    PathConstraint,
    RegionConstraint,
    ReturnKind,
    TypeConstraint,
)
from repro.query.parser import parse_query


def test_parse_keyword_query():
    q = parse_query('SELECT contents WHERE { CONTENT CONTAINS "protease" }')
    assert q.return_kind is ReturnKind.CONTENTS
    assert len(q.constraints) == 1
    assert isinstance(q.constraints[0], KeywordConstraint)
    assert q.constraints[0].keyword == "protease"


def test_parse_ontology_query():
    q = parse_query('SELECT referents WHERE { REFERENT REFERS "protein:protease" IN proteins }')
    constraint = q.constraints[0]
    assert isinstance(constraint, OntologyConstraint)
    assert constraint.term == "protein:protease"
    assert constraint.ontology == "proteins"
    assert constraint.include_descendants is True


def test_parse_ontology_nodesc():
    q = parse_query('SELECT contents WHERE { REFERENT REFERS "x" NODESC }')
    assert q.constraints[0].include_descendants is False


def test_parse_interval_query():
    q = parse_query("SELECT contents WHERE { INTERVAL OVERLAPS chr1 [10, 40] MINCOUNT 2 }")
    constraint = q.constraints[0]
    assert isinstance(constraint, OverlapConstraint)
    assert constraint.domain == "chr1"
    assert constraint.start == 10 and constraint.end == 40
    assert constraint.min_count == 2


def test_parse_region_query():
    q = parse_query("SELECT graph WHERE { REGION OVERLAPS atlas [0,0] .. [100,100] }")
    constraint = q.constraints[0]
    assert isinstance(constraint, RegionConstraint)
    assert constraint.lo == (0, 0)
    assert constraint.hi == (100, 100)


def test_parse_region_3d():
    q = parse_query("SELECT graph WHERE { REGION OVERLAPS vol [0,0,0] .. [1,1,1] }")
    assert q.constraints[0].lo == (0, 0, 0)


def test_parse_region_dimension_mismatch():
    with pytest.raises(QuerySyntaxError):
        parse_query("SELECT graph WHERE { REGION OVERLAPS v [0,0] .. [1,1,1] }")


def test_parse_type_query():
    q = parse_query("SELECT contents WHERE { TYPE dna_sequence }")
    assert isinstance(q.constraints[0], TypeConstraint)
    assert q.constraints[0].data_type == "dna_sequence"


def test_parse_path_query():
    q = parse_query('SELECT graph WHERE { PATH "a" TO "b" MAXLEN 4 }')
    constraint = q.constraints[0]
    assert isinstance(constraint, PathConstraint)
    assert constraint.from_keyword == "a" and constraint.to_keyword == "b"
    assert constraint.max_length == 4


def test_parse_multiple_constraints():
    q = parse_query(
        'SELECT contents WHERE { CONTENT CONTAINS "x" TYPE dna INTERVAL OVERLAPS c [1,2] }'
    )
    assert len(q.constraints) == 3


def test_parse_limit():
    q = parse_query('SELECT contents WHERE { CONTENT CONTAINS "x" } LIMIT 5')
    assert q.limit == 5


def test_parse_missing_select():
    with pytest.raises(QuerySyntaxError):
        parse_query('WHERE { CONTENT CONTAINS "x" }')


def test_parse_unterminated_where():
    with pytest.raises(QuerySyntaxError):
        parse_query('SELECT contents WHERE { CONTENT CONTAINS "x"')


def test_parse_trailing_tokens():
    with pytest.raises(QuerySyntaxError):
        parse_query('SELECT contents WHERE { } garbage')


def test_parse_unknown_constraint():
    with pytest.raises(QuerySyntaxError):
        parse_query("SELECT contents WHERE { BOGUS thing }")


def test_query_describe_roundtrips_structure():
    q = parse_query('SELECT contents WHERE { CONTENT CONTAINS "protease" }')
    description = q.describe()
    assert "SELECT contents" in description
    assert "protease" in description
