"""Tests for the provenance ledger."""

import pytest

from repro.provenance.ledger import ProvenanceLedger, ProvenanceRecord


def make_ledger():
    ledger = ProvenanceLedger()
    ledger.record("root")
    ledger.record("child1", operation="propagate", parents=("root",))
    ledger.record("child2", operation="propagate", parents=("root",))
    ledger.record("grandchild", operation="propagate", parents=("child1",))
    return ledger


def test_record_and_get():
    ledger = make_ledger()
    record = ledger.get("child1")
    assert record.operation == "propagate"
    assert record.parents == ("root",)


def test_parents_and_children():
    ledger = make_ledger()
    assert ledger.parents("child1") == ("root",)
    assert ledger.children("root") == {"child1", "child2"}


def test_ancestors():
    ledger = make_ledger()
    assert ledger.ancestors("grandchild") == {"child1", "root"}


def test_descendants():
    ledger = make_ledger()
    assert ledger.descendants("root") == {"child1", "child2", "grandchild"}


def test_roots():
    ledger = make_ledger()
    assert ledger.roots() == ["root"]


def test_lineage():
    ledger = make_ledger()
    assert ledger.lineage("grandchild") == ["root", "child1", "grandchild"]


def test_unknown_record():
    ledger = ProvenanceLedger()
    assert ledger.get("nope") is None
    assert ledger.parents("nope") == ()
    assert ledger.descendants("nope") == set()


def test_len_and_contains():
    ledger = make_ledger()
    assert len(ledger) == 4
    assert "root" in ledger
    assert "ghost" not in ledger


def test_records_iter():
    ledger = make_ledger()
    ids = {record.annotation_id for record in ledger.records()}
    assert ids == {"root", "child1", "child2", "grandchild"}
