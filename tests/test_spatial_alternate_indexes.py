"""Tests for the alternate index structures (segment tree, KD-tree, STR load)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.linear_scan import linear_interval_overlap, linear_region_overlap
from repro.spatial.interval import Interval
from repro.spatial.kdtree import KdTree
from repro.spatial.rect import Rect
from repro.spatial.rtree import RTree
from repro.spatial.segment_tree import SegmentTree


# -- segment tree -----------------------------------------------------------


def test_segment_tree_empty():
    tree = SegmentTree.from_intervals([])
    assert len(tree) == 0
    assert tree.stab(5) == []


def test_segment_tree_stab():
    tree = SegmentTree.from_intervals([Interval(1, 5), Interval(4, 8), Interval(10, 12)])
    assert len(tree.stab(4)) == 2
    assert len(tree.stab(11)) == 1
    assert tree.stab(20) == []


def test_segment_tree_overlap():
    tree = SegmentTree.from_intervals([Interval(1, 5), Interval(4, 8), Interval(20, 30)])
    assert len(tree.search_overlap(Interval(3, 6))) == 2


@settings(max_examples=40)
@given(
    intervals=st.lists(st.tuples(st.integers(0, 200), st.integers(0, 40)), min_size=1, max_size=60),
    point=st.integers(0, 200),
)
def test_segment_tree_stab_matches_bruteforce(intervals, point):
    items = [Interval(start, start + length) for start, length in intervals]
    tree = SegmentTree.from_intervals(items)
    expected = sorted((i.start, i.end) for i in items if i.contains_point(point))
    actual = sorted((i.start, i.end) for i in tree.stab(point))
    assert actual == expected


# -- KD-tree ----------------------------------------------------------------


def test_kdtree_overlap_matches_scan():
    rng = random.Random(2)
    rects = [Rect((x := rng.uniform(0, 500), y := rng.uniform(0, 500)), (x + 10, y + 10)) for _ in range(300)]
    tree = KdTree.from_rects(rects)
    query = Rect((100, 100), (200, 200))
    assert tree.count_overlap(query) == len(linear_region_overlap(rects, query))


def test_kdtree_3d():
    rng = random.Random(3)
    rects = [
        Rect((x := rng.uniform(0, 100), y := rng.uniform(0, 100), z := rng.uniform(0, 100)), (x + 5, y + 5, z + 5))
        for _ in range(200)
    ]
    tree = KdTree.from_rects(rects)
    query = Rect((10, 10, 10), (40, 40, 40))
    assert tree.count_overlap(query) == len(linear_region_overlap(rects, query))


def test_kdtree_space_mismatch():
    tree = KdTree.from_rects([Rect((0, 0), (1, 1), space="a")], space="a")
    with pytest.raises(Exception):
        tree.search_overlap(Rect((0, 0), (1, 1), space="b"))


@settings(max_examples=30, deadline=None)
@given(
    rects=st.lists(st.tuples(st.integers(0, 200), st.integers(0, 200), st.integers(1, 20), st.integers(1, 20)), min_size=1, max_size=60),
    query=st.tuples(st.integers(0, 200), st.integers(0, 200), st.integers(1, 40), st.integers(1, 40)),
)
def test_kdtree_matches_scan_property(rects, query):
    items = [Rect((x, y), (x + w, y + h), payload=i) for i, (x, y, w, h) in enumerate(rects)]
    tree = KdTree.from_rects(items)
    q = Rect((query[0], query[1]), (query[0] + query[2], query[1] + query[3]))
    expected = {rect.payload for rect in linear_region_overlap(items, q)}
    actual = {rect.payload for rect in tree.search_overlap(q)}
    assert actual == expected


# -- STR bulk load ----------------------------------------------------------


def test_str_bulk_load_correct():
    rng = random.Random(4)
    rects = [Rect((x := rng.uniform(0, 1000), y := rng.uniform(0, 1000)), (x + 5, y + 5), payload=i) for i in range(400)]
    tree = RTree.bulk_load(rects, max_entries=16)
    assert len(tree) == 400
    query = Rect((200, 200), (400, 400))
    expected = {rect.payload for rect in linear_region_overlap(rects, query)}
    actual = {rect.payload for rect in tree.search_overlap(query)}
    assert actual == expected


def test_str_bulk_load_small_input():
    rects = [Rect((0, 0), (1, 1)), Rect((5, 5), (6, 6))]
    tree = RTree.bulk_load(rects, max_entries=16)
    assert len(tree) == 2


def test_str_bulk_load_height_reasonable():
    rng = random.Random(7)
    rects = [Rect((x := rng.uniform(0, 1000), y := rng.uniform(0, 1000)), (x + 1, y + 1)) for _ in range(1000)]
    tree = RTree.bulk_load(rects, max_entries=16)
    # A well-packed tree of 1000/16 leaves should be only a few levels deep.
    assert tree.height() <= 4
