"""Tests for the query executor and result collation."""

import pytest

from repro.query.ast import ReturnKind
from repro.query.builder import QueryBuilder
from repro.query.planner import QueryPlanner


def test_keyword_query(small_graphitti):
    result = small_graphitti.query(QueryBuilder.contents().contains("protease").build())
    assert result.annotation_ids == ["a1"]
    assert result.count == 1
    assert len(result.fragments) == 1


def test_ontology_query(small_graphitti):
    result = small_graphitti.query(
        QueryBuilder.contents().refers("protein:protease").build()
    )
    assert "a1" in result.annotation_ids


def test_interval_query(small_graphitti):
    result = small_graphitti.query(
        QueryBuilder.contents().overlaps_interval("chr1", 20, 25).build()
    )
    assert set(result.annotation_ids) == {"a1", "a2"}


def test_conjunction_narrows(small_graphitti):
    result = small_graphitti.query(
        QueryBuilder.contents()
        .contains("protease")
        .overlaps_interval("chr1", 20, 25)
        .build()
    )
    assert result.annotation_ids == ["a1"]


def test_empty_result(small_graphitti):
    result = small_graphitti.query(QueryBuilder.contents().contains("nonexistent").build())
    assert result.is_empty()


def test_referents_return_kind(small_graphitti):
    result = small_graphitti.query(QueryBuilder.referents().contains("protease").build())
    assert result.return_kind is ReturnKind.REFERENTS
    assert len(result.referents) == 2  # a1 has a sequence + an image referent


def test_graph_return_kind(small_graphitti):
    result = small_graphitti.query(QueryBuilder.graph().overlaps_interval("chr1", 20, 25).build())
    assert result.return_kind is ReturnKind.GRAPH
    assert len(result.subgraphs) >= 1
    assert result.subgraphs[0].is_connected


def test_type_constraint(small_graphitti):
    result = small_graphitti.query(QueryBuilder.contents().of_type("image").build())
    assert result.annotation_ids == ["a1"]


def test_limit(small_graphitti):
    result = small_graphitti.query(
        QueryBuilder.contents().overlaps_interval("chr1", 20, 25).limit(1).build()
    )
    assert result.count == 1


def test_steps_recorded(small_graphitti):
    result = small_graphitti.query(
        QueryBuilder.contents().contains("protease").overlaps_interval("chr1", 20, 25).build()
    )
    assert len(result.steps) == 2


def test_min_count_region(neuroscience):
    # neuro-a1 has two regions on mouse_brain_1
    from repro.query.parser import parse_query

    q = parse_query(
        'SELECT contents WHERE { REGION OVERLAPS mouse-atlas:25um [0,0] .. [512,512] MINCOUNT 2 }'
    )
    result = neuroscience.query(q)
    assert "neuro-a1" in result.annotation_ids


def test_path_constraint(influenza):
    result = influenza.query(QueryBuilder.contents().path("binding", "lineage").build())
    # flu-a1 (binding) connects to flu-a3 (lineage) via surface_protein
    assert result.count >= 1


def test_planner_ordering_does_not_change_results(small_graphitti):
    query = QueryBuilder.contents().contains("protease").overlaps_interval("chr1", 20, 25).build()
    ordered = small_graphitti.query(query, enable_ordering=True)
    naive = small_graphitti.query(query, enable_ordering=False)
    assert set(ordered.annotation_ids) == set(naive.annotation_ids)


def test_result_to_dict(small_graphitti):
    result = small_graphitti.query(QueryBuilder.contents().contains("protease").build())
    payload = result.to_dict()
    assert payload["count"] == 1
    assert payload["return_kind"] == "contents"
