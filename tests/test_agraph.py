"""Tests for the typed a-graph and its path/connect primitives."""

import pytest

from repro.agraph.agraph import AGraph, NodeKind
from repro.errors import AGraphError, UnknownNodeError


def make_agraph():
    g = AGraph()
    g.add_content("c1")
    g.add_content("c2")
    g.add_referent("r1")
    g.add_referent("r2")
    g.add_ontology_node("t1")
    g.link_annotation("c1", "r1")
    g.link_annotation("c1", "r2")
    g.link_annotation("c2", "r1")  # c1 and c2 share r1
    g.link_ontology("r2", "t1")
    return g


def test_typed_accessors():
    g = make_agraph()
    assert set(g.contents()) == {"c1", "c2"}
    assert set(g.referents()) == {"r1", "r2"}
    assert g.ontology_nodes() == ["t1"]


def test_referents_of():
    g = make_agraph()
    assert set(g.referents_of("c1")) == {"r1", "r2"}


def test_contents_annotating():
    g = make_agraph()
    assert set(g.contents_annotating("r1")) == {"c1", "c2"}


def test_related_annotations():
    g = make_agraph()
    assert g.related_annotations("c1") == {"c2"}
    assert g.related_annotations("c2") == {"c1"}


def test_ontology_terms_of():
    g = make_agraph()
    assert g.ontology_terms_of("r2") == ["t1"]


def test_link_wrong_kind():
    g = make_agraph()
    with pytest.raises(AGraphError):
        g.link_annotation("r1", "r2")  # r1 is a referent, not content


def test_link_ontology_requires_ontology_node():
    g = make_agraph()
    with pytest.raises(AGraphError):
        g.link_ontology("c1", "r1")  # r1 is not an ontology node


def test_path_same_node():
    g = make_agraph()
    assert g.path("c1", "c1") == ["c1"]


def test_path_between_contents():
    g = make_agraph()
    path = g.path("c1", "c2")
    assert path[0] == "c1" and path[-1] == "c2"
    assert "r1" in path


def test_path_none_when_disconnected():
    g = AGraph()
    g.add_content("c1")
    g.add_content("c2")
    assert g.path("c1", "c2") is None


def test_path_unknown_node():
    g = make_agraph()
    with pytest.raises(UnknownNodeError):
        g.path("c1", "ghost")


def test_path_with_label_filter():
    g = make_agraph()
    # Only annotates edges: c1 -> r2 reachable, but r2 -> t1 is refers_to
    path = g.path("c1", "t1", labels=["annotates"])
    assert path is None


def test_weighted_path():
    g = AGraph()
    g.add_content("c1")
    g.add_referent("r1")
    g.add_referent("r2")
    g.link_annotation("c1", "r1", weight=5)
    g.link_referents("r1", "r2", weight=1)
    result = g.weighted_path("c1", "r2")
    assert result is not None
    path, cost = result
    assert cost == 6


def test_all_paths():
    g = make_agraph()
    paths = g.all_paths("c1", "c2", max_length=4)
    assert any(path[0] == "c1" and path[-1] == "c2" for path in paths)


def test_connect_requires_two_nodes():
    g = make_agraph()
    with pytest.raises(AGraphError):
        g.connect("c1")


def test_connect_builds_subgraph():
    g = make_agraph()
    subgraph = g.connect("c1", "c2")
    assert subgraph.is_connected
    assert "r1" in subgraph.nodes


def test_connect_with_hub():
    g = make_agraph()
    subgraph = g.connect("c1", "c2", hub="r1")
    assert subgraph.is_connected


def test_connection_exists():
    g = make_agraph()
    assert g.connection_exists("c1", "c2")


def test_connected_component():
    g = make_agraph()
    component = g.connected_component("c1")
    assert {"c1", "c2", "r1", "r2", "t1"} <= component


def test_connected_components_count():
    g = AGraph()
    g.add_content("c1")
    g.add_content("c2")
    g.add_referent("r1")
    g.link_annotation("c1", "r1")
    # c2 is isolated
    components = g.connected_components()
    assert len(components) == 2


def test_same_object_link():
    g = AGraph()
    g.add_referent("r1")
    g.add_referent("r2")
    edge = g.link_referents("r1", "r2")
    assert edge.label == "relates"
