"""ShardedGraphittiService behaviour: oracle equality, durability, aggregation.

The load-bearing invariant is that a sharded deployment is *observationally
identical* to a single service for annotation-level queries — same
annotation ids, same order, same referent pages — while writes route, caches
invalidate per shard, and every shard recovers independently.
"""

import pytest

from repro.core.manager import Graphitti
from repro.datatypes.sequence import DnaSequence
from repro.errors import AnnotationError, ServiceError
from repro.service import GraphittiService, ServiceConfig
from repro.shard import (
    ShardedGraphittiService,
    read_manifest,
    shard_for_key,
    shard_from_annotation_id,
)

PROBES = (
    'SELECT contents WHERE { CONTENT CONTAINS "alpha" }',
    "SELECT contents WHERE { INTERVAL OVERLAPS sh:chr1 [100, 2000] }",
    'SELECT referents WHERE { CONTENT CONTAINS "common" INTERVAL OVERLAPS sh:chr1 [0, 3000] }',
    'SELECT contents WHERE { NOT { CONTENT CONTAINS "alpha" } }',
    'SELECT contents WHERE { ANY { CONTENT CONTAINS "alpha" CONTENT CONTAINS "beta" } }',
    'SELECT contents WHERE { CONTENT CONTAINS "common" } LIMIT 7',
)


def populate(service, count: int = 36) -> list[str]:
    object_ids = []
    for index in range(6):
        obj = DnaSequence(
            f"obj{index}", "ACGT" * 300, domain="sh:chr1", offset=index * 1200
        )
        service.register(obj)
        object_ids.append(obj.object_id)
    for index in range(count):
        (
            service.new_annotation(
                f"x-{index:03d}",
                title=f"t{index}",
                keywords=["alpha" if index % 2 else "beta", "common"],
                body=f"body {index}",
            )
            .mark_sequence(object_ids[index % 6], (index * 17) % 900, (index * 17) % 900 + 30)
            .commit()
        )
    return object_ids


@pytest.fixture
def pair():
    sharded = ShardedGraphittiService(shards=4, name="test-sharded")
    oracle = GraphittiService(manager=Graphitti("test-oracle"))
    populate(sharded)
    populate(oracle)
    yield sharded, oracle
    sharded.close()
    oracle.close()


def assert_bit_identical(sharded, oracle):
    for text in PROBES:
        left = sharded.query(text)
        right = oracle.query(text)
        assert left.annotation_ids == right.annotation_ids, text
        left_refs = [referent.referent_id for referent in left.referents]
        right_refs = [referent.referent_id for referent in right.referents]
        assert left_refs == right_refs, text


def test_queries_bit_identical_to_unsharded(pair):
    assert_bit_identical(*pair)


def test_queries_bit_identical_after_deletes(pair):
    sharded, oracle = pair
    for index in (3, 10, 25):
        sharded.delete_annotation(f"x-{index:03d}")
        oracle.delete_annotation(f"x-{index:03d}")
    assert_bit_identical(sharded, oracle)


def test_annotations_route_by_object_and_colocate():
    sharded = ShardedGraphittiService(shards=4, name="route-test")
    populate(sharded)
    for shard_index, shard in enumerate(sharded.shards):
        for annotation in shard.manager.annotations():
            object_id = annotation.referents[0].ref.object_id
            assert shard_for_key(object_id, 4) == shard_index
    sharded.close()


def test_generated_ids_encode_their_shard():
    sharded = ShardedGraphittiService(shards=4, name="id-test")
    populate(sharded, count=4)
    builder = sharded.new_annotation(title="auto", keywords=["auto"])
    builder.mark_sequence("obj3", 5, 5)
    committed = sharded.commit(builder)
    assert shard_from_annotation_id(committed.annotation_id) == shard_for_key("obj3", 4)
    # the encoded id resolves without a scatter and round-trips lookups
    assert sharded.annotation(committed.annotation_id).annotation_id == committed.annotation_id
    sharded.delete_annotation(committed.annotation_id)
    with pytest.raises(AnnotationError):
        sharded.annotation(committed.annotation_id)
    sharded.close()


def test_duplicate_explicit_id_rejected(pair):
    sharded, _ = pair
    with pytest.raises(AnnotationError):
        sharded.new_annotation("x-001", keywords=["dup"])


def _cross_shard_pair(sharded):
    """Two same-id builders whose referents route to DIFFERENT shards."""
    objects = sorted(range(6), key=lambda index: shard_for_key(f"obj{index}", 4))
    first, second = objects[0], objects[-1]
    assert shard_for_key(f"obj{first}", 4) != shard_for_key(f"obj{second}", 4)
    left = sharded.new_annotation(keywords=["dup"])
    left._annotation.annotation_id = "cross-dup"  # bypass the builder check
    left._annotation.content.dublin_core.identifier = "cross-dup"
    left.mark_sequence(f"obj{first}", 0, 5)
    right = sharded.new_annotation(keywords=["dup"])
    right._annotation.annotation_id = "cross-dup"
    right._annotation.content.dublin_core.identifier = "cross-dup"
    right.mark_sequence(f"obj{second}", 0, 5)
    return left.build(), right.build()


def test_duplicate_id_rejected_across_shards_at_commit(pair):
    """Regression: two same-id annotations routing to different shards must
    not both commit — the second commit fails like a single service's."""
    sharded, _ = pair
    left, right = _cross_shard_pair(sharded)
    sharded.commit(left)
    with pytest.raises(AnnotationError):
        sharded.commit(right)
    assert sharded.annotation("cross-dup").referents[0].ref.object_id == left.referents[0].ref.object_id


def test_duplicate_id_rejected_across_shards_in_bulk(pair):
    sharded, _ = pair
    left, right = _cross_shard_pair(sharded)
    with pytest.raises(AnnotationError):
        sharded.bulk_commit([left, right])


def test_open_refuses_unsharded_root(tmp_path):
    """Regression: laying shard directories (and a manifest) over a root
    holding single-service state would permanently hide that data."""
    root = tmp_path / "was-single"
    single = GraphittiService.open(root)
    single.register(DnaSequence("solo", "ACGT" * 50, domain="solo:1"))
    single.close()
    with pytest.raises(ServiceError):
        ShardedGraphittiService.open(root, shards=4)
    # the single-service state is untouched and still opens
    reopened = GraphittiService.open(root)
    assert "solo" in reopened.manager.registry
    reopened.close()


def test_bulk_commit_groups_by_shard_and_keeps_input_order(pair):
    sharded, oracle = pair
    def batch_for(service):
        batch = []
        for index in range(14):
            batch.append(
                service.new_annotation(
                    f"bulk-{index:02d}", title=f"bulk {index}", keywords=["bulkkw"]
                ).mark_sequence(f"obj{index % 6}", 0, 10)
            )
        return batch

    committed = sharded.bulk_commit(batch_for(sharded))
    oracle.bulk_commit(batch_for(oracle))
    assert [annotation.annotation_id for annotation in committed] == [
        f"bulk-{index:02d}" for index in range(14)
    ]
    assert_bit_identical(sharded, oracle)
    # the batch actually spread over more than one shard
    owners = {shard_for_key(f"obj{index % 6}", 4) for index in range(14)}
    assert len(owners) > 1


def test_statistics_aggregate(pair):
    sharded, oracle = pair
    stats = sharded.statistics()
    expected = oracle.statistics()
    assert stats["annotations"] == expected["annotations"]
    assert stats["referents"] == expected["referents"]
    # replicated substrates report one copy, not shards * copies
    assert stats["data_objects"] == expected["data_objects"]
    assert stats["sharding"]["shards"] == 4
    assert len(stats["sharding"]["per_shard"]) == 4
    assert sum(row["annotations"] for row in stats["sharding"]["per_shard"]) == stats["annotations"]
    cache = stats["service"]["query_cache"]
    assert 0.0 <= cache["hit_rate"] <= 1.0


def test_per_shard_cache_survives_writes_to_other_shards(pair):
    sharded, _ = pair
    probe = PROBES[0]
    sharded.query(probe)  # warm every shard
    before = sharded.statistics()["service"]["query_cache"]["hits"]
    builder = sharded.new_annotation(title="w", keywords=["gamma"])
    builder.mark_sequence("obj0", 1, 2)
    sharded.commit(builder)
    sharded.query(probe)
    after = sharded.statistics()["service"]["query_cache"]["hits"]
    # statistics() itself runs no queries; the single write invalidated ONE
    # shard's entry, so at least shards-1 of the scatter still hit.
    assert after - before >= sharded.shard_count - 1


def test_explain_aggregates_per_shard_plans(pair):
    sharded, _ = pair
    explanation = sharded.explain(PROBES[0])
    assert explanation["mode"] == "scatter-gather"
    assert explanation["shards"] == 4
    assert len(explanation["plans"]) == 4
    assert all("plan" in plan for plan in explanation["plans"])


def test_integrity_check_covers_every_shard(pair):
    sharded, _ = pair
    report = sharded.check_integrity()
    assert report.ok
    assert len(report.reports) == 4


def test_search_passthroughs_merge(pair):
    sharded, oracle = pair
    assert sharded.search_by_keyword("common") == oracle.search_by_keyword("common")
    assert sharded.annotation_count == oracle.annotation_count
    assert sharded.related_annotations("x-000") == oracle.related_annotations("x-000")


def test_checkpoint_recover_round_trip(tmp_path):
    root = tmp_path / "sharded"
    sharded = ShardedGraphittiService.open(root, shards=4)
    oracle = GraphittiService(manager=Graphitti("rt-oracle"))
    populate(sharded)
    populate(oracle)
    sharded.checkpoint()
    manifest = read_manifest(root)
    assert manifest["shards"] == 4
    assert manifest["checkpoints"] >= 1
    sharded.close()

    recovered = ShardedGraphittiService.recover(root)
    assert_bit_identical(recovered, oracle)
    assert recovered.check_integrity().ok
    recovered.close()
    oracle.close()


def test_recover_replays_unsnapshotted_wal(tmp_path):
    root = tmp_path / "replay"
    config = ServiceConfig(checkpoint_on_close=False)
    sharded = ShardedGraphittiService.open(root, shards=3, config=config)
    oracle = GraphittiService(manager=Graphitti("replay-oracle"))
    populate(sharded)
    populate(oracle)
    sharded.close()  # no checkpoint: state lives only in the shard WALs

    recovered = ShardedGraphittiService.recover(root, config=config)
    info = recovered.recovery_info
    assert info is not None and info["replayed"] > 0
    assert_bit_identical(recovered, oracle)
    recovered.close()
    oracle.close()


def test_open_rejects_topology_mismatch(tmp_path):
    root = tmp_path / "fixed"
    ShardedGraphittiService.open(root, shards=4).close()
    with pytest.raises(ServiceError):
        ShardedGraphittiService.open(root, shards=2)
    # manifest wins when shards is omitted
    reopened = ShardedGraphittiService.open(root)
    assert reopened.shard_count == 4
    reopened.close()


def test_recover_empty_root_raises(tmp_path):
    with pytest.raises(ServiceError):
        ShardedGraphittiService.recover(tmp_path / "nothing")


def test_lost_manifest_infers_topology_from_shard_dirs(tmp_path):
    """Regression: a root whose manifest was lost must derive its shard
    count from the shard directories — defaulting to 4 on an 8-shard root
    would serve half the data and misroute every write."""
    from repro.shard import MANIFEST_FILE

    root = tmp_path / "lost-manifest"
    sharded = ShardedGraphittiService.open(root, shards=6)
    populate(sharded, count=12)
    sharded.checkpoint()
    sharded.close()
    (root / MANIFEST_FILE).unlink()

    recovered = ShardedGraphittiService.recover(root)
    assert recovered.shard_count == 6
    assert recovered.annotation_count == 12
    recovered.close()
    # an explicit conflicting count is a migration, not an open-time flag
    (root / MANIFEST_FILE).unlink()
    with pytest.raises(ServiceError):
        ShardedGraphittiService.open(root, shards=4)


def test_foreign_shard_encoded_id_still_resolves(pair):
    """Regression: an id that LOOKS shard-encoded but was minted under a
    different topology routes by referent hash like any explicit id; lookups
    must fall through to the full probe instead of trusting the encoding."""
    sharded, _ = pair
    builder = sharded.new_annotation("anno-s01-999999", keywords=["foreign"])
    builder.mark_sequence("obj0", 3, 9)
    committed = sharded.commit(builder)
    owner = shard_for_key("obj0", 4)
    assert owner != 1  # the premise: the encoding lies about the owner
    assert sharded.annotation(committed.annotation_id).annotation_id == committed.annotation_id
    sharded.delete_annotation(committed.annotation_id)
    with pytest.raises(AnnotationError):
        sharded.annotation(committed.annotation_id)


def test_graph_results_respect_global_limit(pair):
    """Regression: GRAPH pages must re-apply LIMIT globally — every subgraph
    member is a returned annotation id and pages never exceed the limit."""
    sharded, _ = pair
    result = sharded.query('SELECT graph WHERE { CONTENT CONTAINS "common" } LIMIT 5')
    assert len(result.annotation_ids) == 5
    returned = set(result.annotation_ids)
    assert len(result.subgraphs) <= 5
    for subgraph in result.subgraphs:
        assert set(subgraph.terminals) <= returned


def test_single_shard_degenerate_case_matches_oracle():
    sharded = ShardedGraphittiService(shards=1, name="degenerate")
    oracle = GraphittiService(manager=Graphitti("degenerate-oracle"))
    populate(sharded)
    populate(oracle)
    assert_bit_identical(sharded, oracle)
    sharded.close()
    oracle.close()
