"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_base():
    base = errors.GraphittiError
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, base), name


def test_subsystem_hierarchy():
    assert issubclass(errors.SchemaError, errors.RelationalError)
    assert issubclass(errors.ConstraintViolation, errors.RelationalError)
    assert issubclass(errors.XmlParseError, errors.XmlStoreError)
    assert issubclass(errors.XPathError, errors.XmlStoreError)
    assert issubclass(errors.CoordinateSystemError, errors.SpatialError)
    assert issubclass(errors.UnknownTermError, errors.OntologyError)
    assert issubclass(errors.UnknownNodeError, errors.AGraphError)
    assert issubclass(errors.QuerySyntaxError, errors.QueryError)


def test_catch_base_catches_all():
    for exc_type in (
        errors.SchemaError,
        errors.XPathError,
        errors.SpatialError,
        errors.OntologyError,
        errors.QuerySyntaxError,
    ):
        with pytest.raises(errors.GraphittiError):
            raise exc_type("boom")


def test_distinct_subsystems_are_unrelated():
    assert not issubclass(errors.RelationalError, errors.SpatialError)
    assert not issubclass(errors.QueryError, errors.OntologyError)
