"""Property-based tests for Graphitti manager invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Graphitti
from repro.datatypes import DnaSequence, Image
from repro.ontology.builtin import build_protein_ontology


def _build(num_annotations, seed):
    rng = random.Random(seed)
    g = Graphitti(f"prop{seed}")
    g.register_ontology(build_protein_ontology())
    g.register(DnaSequence("seq", "ACGT" * 200, domain="chr1"))
    g.register(Image("img", dimension=2, space="atlas", size=(100, 100)))
    keywords = ["protease", "kinase", "binding", "mutation"]
    for index in range(num_annotations):
        builder = g.new_annotation(f"a{index}", keywords=[rng.choice(keywords)])
        start = rng.randint(0, 700)
        builder.mark_sequence("seq", start, start + rng.randint(5, 40))
        if rng.random() < 0.4:
            x = rng.uniform(0, 80)
            builder.mark_region("img", (x, x), (x + 10, x + 10))
        builder.commit()
    return g


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(num_annotations=st.integers(1, 20), seed=st.integers(0, 1000))
def test_integrity_always_holds(num_annotations, seed):
    g = _build(num_annotations, seed)
    assert g.check_integrity().ok


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(num_annotations=st.integers(1, 20), seed=st.integers(0, 1000))
def test_statistics_consistent(num_annotations, seed):
    g = _build(num_annotations, seed)
    stats = g.statistics()
    assert stats["annotations"] == num_annotations
    # every annotation is a content node in the a-graph
    assert len(g.agraph.contents()) == num_annotations


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(num_annotations=st.integers(1, 15), seed=st.integers(0, 1000))
def test_keyword_search_sound(num_annotations, seed):
    g = _build(num_annotations, seed)
    for keyword in ["protease", "kinase", "binding", "mutation"]:
        for annotation_id in g.search_by_keyword(keyword):
            assert keyword in g.annotation(annotation_id).content.text().lower()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(num_annotations=st.integers(2, 15), seed=st.integers(0, 1000))
def test_snapshot_roundtrip_preserves_counts(num_annotations, seed):
    from repro.core.persistence import rebuild, snapshot

    g = _build(num_annotations, seed)
    reloaded = rebuild(snapshot(g))
    assert reloaded.statistics()["annotations"] == g.statistics()["annotations"]
    assert reloaded.statistics()["agraph_edges"] == g.statistics()["agraph_edges"]


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(num_annotations=st.integers(1, 15), seed=st.integers(0, 1000))
def test_delete_keeps_integrity(num_annotations, seed):
    g = _build(num_annotations, seed)
    victim = f"a{seed % num_annotations}"
    g.delete_annotation(victim)
    assert g.check_integrity().ok
    assert victim not in [a.annotation_id for a in g.annotations()]
