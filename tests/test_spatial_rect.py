"""Tests for axis-aligned rectangles/boxes."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpatialError
from repro.spatial.rect import Rect, bounding_rect


def test_rect_rejects_inverted():
    with pytest.raises(SpatialError):
        Rect((5, 5), (1, 1))


def test_rect_requires_matching_dims():
    with pytest.raises(SpatialError):
        Rect((0, 0), (1, 1, 1))


def test_dimension_and_center():
    rect = Rect((0, 0), (10, 20))
    assert rect.dimension == 2
    assert rect.center == (5, 10)


def test_area_2d_and_3d():
    assert Rect((0, 0), (2, 3)).area() == 6
    assert Rect((0, 0, 0), (2, 3, 4)).area() == 24


def test_margin():
    assert Rect((0, 0), (2, 3)).margin() == 5


def test_overlaps_and_contains():
    a = Rect((0, 0), (10, 10))
    b = Rect((5, 5), (15, 15))
    c = Rect((2, 2), (3, 3))
    assert a.overlaps(b)
    assert a.contains(c)
    assert not a.contains(b)


def test_overlaps_space_mismatch():
    a = Rect((0, 0), (1, 1), space="x")
    b = Rect((0, 0), (1, 1), space="y")
    with pytest.raises(SpatialError):
        a.overlaps(b)


def test_intersection():
    a = Rect((0, 0), (10, 10))
    b = Rect((5, 5), (15, 15))
    assert a.intersection(b) == Rect((5, 5), (10, 10))
    assert a.intersection(Rect((20, 20), (30, 30))) is None


def test_union_and_enlargement():
    a = Rect((0, 0), (2, 2))
    b = Rect((4, 4), (6, 6))
    assert a.union(b) == Rect((0, 0), (6, 6))
    assert a.enlargement_to_include(b) == Rect((0, 0), (6, 6)).area() - a.area()


def test_overlap_area():
    a = Rect((0, 0), (10, 10))
    b = Rect((5, 5), (15, 15))
    assert a.overlap_area(b) == 25
    assert a.overlap_area(Rect((20, 20), (30, 30))) == 0


def test_min_distance():
    a = Rect((0, 0), (2, 2))
    b = Rect((5, 0), (7, 2))
    assert a.min_distance(b) == 3
    assert a.min_distance(Rect((1, 1), (3, 3))) == 0


def test_from_points():
    rect = Rect.from_points((1, 5), (3, 2), (0, 4))
    assert rect.lo == (0, 2) and rect.hi == (3, 5)


def test_contains_point():
    rect = Rect((0, 0), (10, 10))
    assert rect.contains_point((5, 5))
    assert not rect.contains_point((11, 5))


def test_bounding_rect():
    rects = [Rect((0, 0), (1, 1)), Rect((5, 5), (6, 6))]
    assert bounding_rect(rects) == Rect((0, 0), (6, 6))


def test_bounding_rect_empty():
    with pytest.raises(SpatialError):
        bounding_rect([])


@given(
    ax=st.integers(-20, 20), ay=st.integers(-20, 20),
    aw=st.integers(0, 20), ah=st.integers(0, 20),
    bx=st.integers(-20, 20), by=st.integers(-20, 20),
    bw=st.integers(0, 20), bh=st.integers(0, 20),
)
def test_overlap_symmetry(ax, ay, aw, ah, bx, by, bw, bh):
    a = Rect((ax, ay), (ax + aw, ay + ah))
    b = Rect((bx, by), (bx + bw, by + bh))
    assert a.overlaps(b) == b.overlaps(a)


@given(
    ax=st.integers(-20, 20), ay=st.integers(-20, 20),
    aw=st.integers(1, 20), ah=st.integers(1, 20),
    bx=st.integers(-20, 20), by=st.integers(-20, 20),
    bw=st.integers(1, 20), bh=st.integers(1, 20),
)
def test_intersection_area_le_both(ax, ay, aw, ah, bx, by, bw, bh):
    a = Rect((ax, ay), (ax + aw, ay + ah))
    b = Rect((bx, by), (bx + bw, by + bh))
    shared = a.intersection(b)
    if shared is not None:
        assert shared.area() <= a.area()
        assert shared.area() <= b.area()
