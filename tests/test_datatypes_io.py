"""Tests for FASTA and feature-table I/O."""

import pytest

from repro import Graphitti
from repro.datatypes.io import (
    Feature,
    load_features,
    parse_fasta,
    parse_features,
    write_fasta,
)
from repro.datatypes.sequence import DnaSequence, ProteinSequence, RnaSequence
from repro.errors import WorkloadError


def test_parse_fasta_single():
    seqs = parse_fasta(">seq1 description\nACGTACGT\nACGT\n")
    assert len(seqs) == 1
    assert seqs[0].object_id == "seq1"
    assert seqs[0].residues == "ACGTACGT" + "ACGT"
    assert isinstance(seqs[0], DnaSequence)


def test_parse_fasta_multi():
    seqs = parse_fasta(">a\nACGT\n>b\nGGCC\n")
    assert [s.object_id for s in seqs] == ["a", "b"]


def test_parse_fasta_infers_rna():
    seqs = parse_fasta(">r\nACGU\n")
    assert isinstance(seqs[0], RnaSequence)


def test_parse_fasta_infers_protein():
    seqs = parse_fasta(">p\nMKLVWY\n")
    assert isinstance(seqs[0], ProteinSequence)


def test_parse_fasta_empty():
    with pytest.raises(WorkloadError):
        parse_fasta("\n\n")


def test_parse_fasta_residue_before_header():
    with pytest.raises(WorkloadError):
        parse_fasta("ACGT\n>a\nACGT\n")


def test_write_fasta_roundtrip():
    seqs = [DnaSequence("a", "ACGT" * 30), DnaSequence("b", "GGGG")]
    text = write_fasta(seqs, width=60)
    reparsed = parse_fasta(text)
    assert [s.object_id for s in reparsed] == ["a", "b"]
    assert reparsed[0].residues == "ACGT" * 30


def test_write_fasta_wraps():
    text = write_fasta([DnaSequence("a", "A" * 150)], width=60)
    residue_lines = [line for line in text.splitlines() if not line.startswith(">")]
    assert all(len(line) <= 60 for line in residue_lines)


def test_parse_features():
    features = parse_features("seq1 10 40 promoter\nseq1 50 80\n# comment\n")
    assert len(features) == 2
    assert features[0] == Feature("seq1", 10, 40, "promoter")
    assert features[1].label == ""


def test_parse_features_too_few_columns():
    with pytest.raises(WorkloadError):
        parse_features("seq1 10\n")


def test_parse_features_bad_bounds():
    with pytest.raises(WorkloadError):
        parse_features("seq1 ten forty\n")


def test_load_features_creates_annotations():
    g = Graphitti()
    g.register(DnaSequence("seq1", "ACGT" * 50, domain="chr1"))
    created = load_features(g, "seq1 10 40 promoter\nseq1 60 90 exon\n")
    assert len(created) == 2
    assert g.annotation_count == 2
    # the promoter annotation has a marked interval
    anno = g.annotation(created[0])
    assert anno.referents[0].ref.interval.start == 10


def test_load_features_unregistered_object():
    g = Graphitti()
    with pytest.raises(WorkloadError):
        load_features(g, "ghost 10 40\n")


def test_load_features_searchable():
    g = Graphitti()
    g.register(DnaSequence("seq1", "ACGT" * 50, domain="chr1"))
    load_features(g, "seq1 10 40 promoter\n")
    assert g.search_by_keyword("promoter")
