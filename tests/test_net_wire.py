"""Framing codec: round-trip fidelity and arbitrary chunk boundaries.

The wire layer is the only code that touches raw bytes, so its contract is
absolute: every JSON-object payload round-trips bit-exactly, no matter how
TCP slices the stream — one byte at a time, many frames per chunk, cuts
inside the length prefix.  A stream that ends mid-frame must surface as a
torn frame (:class:`WireError`), never as a silently dropped or truncated
message.
"""

import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireError
from repro.net import FrameDecoder, decode_frames, encode_frame, read_frame, send_frame
from repro.net.wire import HEADER_SIZE, MAX_FRAME_BYTES

# -- payload strategies: WAL-op-shaped messages -------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)

_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=12), children, max_size=4),
    ),
    max_leaves=12,
)

#: Messages shaped like real WAL records / RPC envelopes: an op name, a
#: sequence number, and an arbitrarily nested JSON args payload (unicode
#: titles, referent lists, interval coordinates...).
wal_ops = st.fixed_dictionaries(
    {
        "op": st.sampled_from(
            ["commit", "bulk_commit", "delete", "update", "register", "checkpoint"]
        ),
        "seq": st.integers(min_value=0, max_value=2**32),
        "args": _json_values,
    }
)


@settings(deadline=None, max_examples=60)
@given(message=wal_ops)
def test_single_frame_round_trips(message):
    frames = list(decode_frames(encode_frame(message)))
    assert frames == [message]


@settings(deadline=None, max_examples=40)
@given(messages=st.lists(wal_ops, min_size=1, max_size=6), data=st.data())
def test_arbitrary_chunk_boundaries(messages, data):
    raw = b"".join(encode_frame(message) for message in messages)
    cuts = sorted(
        data.draw(
            st.sets(st.integers(min_value=1, max_value=len(raw) - 1), max_size=16),
            label="cut_points",
        )
    )
    bounds = [0, *cuts, len(raw)]
    decoder = FrameDecoder()
    decoded = []
    for low, high in zip(bounds, bounds[1:]):
        decoded.extend(decoder.feed(raw[low:high]))
    decoder.close()
    assert decoded == messages
    assert decoder.pending_bytes == 0


@settings(deadline=None, max_examples=30)
@given(message=wal_ops, cut=st.integers(min_value=1, max_value=200))
def test_torn_tail_is_a_wire_error(message, cut):
    raw = encode_frame(message)
    cut = min(cut, len(raw) - 1)
    decoder = FrameDecoder()
    assert decoder.feed(raw[:cut]) == []
    assert decoder.pending_bytes == cut
    with pytest.raises(WireError):
        decoder.close()


def test_byte_at_a_time_delivery():
    message = {"op": "commit", "args": {"title": "τίτλος", "interval": [0, 99]}}
    raw = encode_frame(message)
    decoder = FrameDecoder()
    decoded = []
    for index in range(len(raw)):
        decoded.extend(decoder.feed(raw[index : index + 1]))
    assert decoded == [message]


def test_oversize_frame_rejected_on_encode_and_decode():
    with pytest.raises(WireError):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})
    # A corrupted length prefix must not make the decoder buffer gigabytes.
    bogus = (MAX_FRAME_BYTES + 1).to_bytes(HEADER_SIZE, "big")
    with pytest.raises(WireError):
        FrameDecoder().feed(bogus + b"{}")


def test_non_object_and_unserialisable_payloads_rejected():
    with pytest.raises(WireError):
        encode_frame({"bad": object()})
    length = len(b"[1,2]").to_bytes(HEADER_SIZE, "big")
    with pytest.raises(WireError):
        FrameDecoder().feed(length + b"[1,2]")
    length = len(b"not json").to_bytes(HEADER_SIZE, "big")
    with pytest.raises(WireError):
        FrameDecoder().feed(length + b"not json")


def test_send_and_read_frame_over_a_real_socket():
    server, client = socket.socketpair()
    try:
        message = {"op": "ping", "args": {"deep": [{"k": "v"}] * 3}}
        send_frame(client, message)
        assert read_frame(server) == message
        client.close()
        assert read_frame(server) is None  # clean EOF between frames
    finally:
        server.close()


def test_read_frame_raises_on_mid_frame_close():
    server, client = socket.socketpair()
    try:
        raw = encode_frame({"op": "commit", "args": {"x": 1}})
        client.sendall(raw[: len(raw) // 2])
        client.close()
        with pytest.raises(WireError):
            read_frame(server)
    finally:
        server.close()


def test_read_frame_survives_trickled_chunks():
    server, client = socket.socketpair()
    raw = encode_frame({"op": "status", "seq": 7, "args": None})
    received = {}

    def _reader():
        received["message"] = read_frame(server)

    thread = threading.Thread(target=_reader)
    thread.start()
    try:
        for index in range(len(raw)):
            client.sendall(raw[index : index + 1])
        thread.join(timeout=10)
        assert received["message"] == {"op": "status", "seq": 7, "args": None}
    finally:
        client.close()
        server.close()
