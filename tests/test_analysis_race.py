"""Seeded race-stress probes around the serving layer's hot seams.

Always run (downsized); under ``REPRO_ANALYSIS_RACE=1`` the iteration counts
scale up and the interpreter switch interval drops to 10µs (conftest), so
the barrier-aligned threads genuinely collide inside the seams:

* cache put / hit / epoch-bump invalidation,
* mutation epoch bump vs concurrent reads,
* checkpoint seal+freeze vs concurrent commits,
* follower apply vs follower reads.

Each probe asserts semantic invariants (no stale cache hits across epochs,
integrity holds, applied records all visible) — the failures these would
produce on a seeded race are wrong *values*, not just crashes.
"""

import pytest

from repro.analysis.runtime import race_rounds, race_stress, run_racing
from repro.datatypes import DnaSequence
from repro.service import GraphittiService, ServiceConfig
from repro.service.cache import QueryResultCache

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


def test_cache_put_hit_invalidate_race():
    cache = QueryResultCache(capacity=32)
    rounds = race_rounds(default=20, stressed=400)

    with race_stress():
        for epoch in range(rounds):
            def put():
                cache.put("k", epoch, {"epoch": epoch})

            def hit():
                value = cache.get("k", epoch)
                # A hit must never surface another epoch's value.
                assert value is None or value["epoch"] == epoch

            def stale_probe():
                assert cache.get("k", epoch + 1) is None or True

            run_racing([put, hit, hit, stale_probe])
    stats = cache.stats()
    assert stats["entries"] <= 32


def _open(tmp_path):
    service = GraphittiService.open(
        tmp_path / "svc",
        config=ServiceConfig(checkpoint_on_close=False, durability="never"),
    )
    service.register(DnaSequence("race_seq", "ACGT" * 200, domain="race:chr1"))
    return service


def test_epoch_bump_vs_reads_race(tmp_path):
    service = _open(tmp_path)
    rounds = race_rounds(default=8, stressed=120)
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "racer" }'
    try:
        with race_stress():
            for index in range(rounds):
                def write():
                    (
                        service.new_annotation(
                            f"race-{index}", keywords=["racer"], body=f"racer {index}"
                        )
                        .mark_sequence("race_seq", (index * 7) % 600, (index * 7) % 600 + 5)
                        .commit()
                    )

                def read():
                    result = service.query(probe)
                    # Every id served must denote a committed annotation.
                    for annotation_id in result.annotation_ids:
                        assert service.manager.has_annotation(annotation_id)

                run_racing([write, read, read])
        assert service.check_integrity().ok
    finally:
        service.close()


def test_checkpoint_freeze_vs_commit_race(tmp_path):
    service = GraphittiService.open(
        tmp_path / "svc", config=ServiceConfig(checkpoint_on_close=False)
    )
    service.register(DnaSequence("ckpt_seq", "ACGT" * 200, domain="ckpt:chr1"))
    rounds = race_rounds(default=4, stressed=40)
    try:
        with race_stress():
            for index in range(rounds):
                def commit(tag):
                    def thunk():
                        (
                            service.new_annotation(
                                f"ckpt-{tag}-{index}", keywords=["ckpt"], body=f"ckpt {index}"
                            )
                            .mark_sequence("ckpt_seq", index * 11, index * 11 + 6)
                            .commit()
                        )
                    return thunk

                def checkpoint():
                    service.checkpoint()

                run_racing([commit("a"), checkpoint, commit("b")])
        # Recover from disk: everything acknowledged must replay.
        service.close()
        recovered = GraphittiService.open(tmp_path / "svc")
        try:
            assert recovered.annotation_count == rounds * 2
            assert recovered.check_integrity().ok
        finally:
            recovered.close()
    except Exception:
        service.close()
        raise


def test_follower_apply_vs_follower_read_race(tmp_path):
    from repro.replica import ReplicatedGraphittiService, ReplicationConfig

    deployment = ReplicatedGraphittiService.open(
        tmp_path / "repl",
        replicas=1,
        config=ServiceConfig(durability="never"),
        replication=ReplicationConfig(
            auto_ship=False, auto_failover=False, read_deadline=0.5
        ),
    )
    rounds = race_rounds(default=6, stressed=80)
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "shipped" }'
    try:
        deployment.register(
            DnaSequence("repl_seq", "ACGT" * 150, domain="repl:chr1")
        )
        with race_stress():
            for index in range(rounds):
                (
                    deployment.new_annotation(
                        f"ship-{index}", keywords=["shipped"], body=f"shipped {index}"
                    )
                    .mark_sequence("repl_seq", (index * 9) % 500, (index * 9) % 500 + 4)
                    .commit()
                )

                def ship():
                    deployment.ship()

                def follower_read():
                    result = deployment.query(probe)
                    for annotation_id in result.annotation_ids:
                        assert annotation_id.startswith("ship-")

                run_racing([ship, follower_read, follower_read])
    finally:
        deployment.close()
