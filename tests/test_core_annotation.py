"""Tests for the annotation model (content, referent, linker)."""

import pytest

from repro.core.annotation import Annotation, AnnotationContent, Referent
from repro.core.dublin_core import DublinCore
from repro.datatypes.base import DataType, SubstructureRef
from repro.errors import AnnotationError
from repro.spatial.interval import Interval
from repro.spatial.rect import Rect
from repro.xmlstore.parser import serialize_xml


def make_interval_ref(object_id="seq1"):
    return SubstructureRef(
        object_id=object_id,
        data_type=DataType.DNA,
        descriptor={"start": 10, "end": 40, "residues": "ACGT"},
        interval=Interval(10, 40, domain="chr1"),
    )


def make_region_ref(object_id="img1"):
    return SubstructureRef(
        object_id=object_id,
        data_type=DataType.IMAGE,
        descriptor={"lo": [0, 0], "hi": [5, 5]},
        rect=Rect((0, 0), (5, 5), space="atlas"),
    )


def test_substructure_ref_cannot_be_both():
    with pytest.raises(Exception):
        SubstructureRef(
            object_id="x",
            data_type=DataType.DNA,
            interval=Interval(1, 2),
            rect=Rect((0, 0), (1, 1)),
        )


def test_referent_auto_id():
    referent = Referent(ref=make_interval_ref())
    assert referent.referent_id is not None
    assert "seq1" in referent.referent_id


def test_referent_point_to():
    referent = Referent(ref=make_interval_ref())
    referent.point_to("t1")
    referent.point_to("t1")  # idempotent
    assert referent.ontology_terms == ["t1"]


def test_referent_to_element_interval():
    referent = Referent(ref=make_interval_ref(), ontology_terms=["t1"])
    element = referent.to_element()
    assert element.tag == "referent"
    assert element.find("interval") is not None
    assert any(child.get("term") == "t1" for child in element.find_all("ontology-ref"))


def test_referent_to_element_region():
    referent = Referent(ref=make_region_ref())
    element = referent.to_element()
    assert element.find("region") is not None


def test_annotation_content_keywords():
    content = AnnotationContent(dublin_core=DublinCore())
    content.add_keyword("protease")
    content.add_keyword("protease")
    assert content.keywords() == ["protease"]


def test_annotation_content_text():
    content = AnnotationContent(
        dublin_core=DublinCore(title="T", subject=["protease"], description="desc"),
        body="body text",
    )
    text = content.text()
    assert "body text" in text and "protease" in text and "desc" in text


def test_annotation_requires_id():
    with pytest.raises(AnnotationError):
        Annotation("", AnnotationContent(dublin_core=DublinCore()))


def test_annotation_add_referent():
    annotation = Annotation("a1", AnnotationContent(dublin_core=DublinCore()))
    annotation.add_referent(make_interval_ref(), ontology_terms=["t1"])
    assert annotation.referent_count == 1
    assert annotation.ontology_terms() == {"t1"}


def test_annotation_object_ids():
    annotation = Annotation("a1", AnnotationContent(dublin_core=DublinCore()))
    annotation.add_referent(make_interval_ref("seq1"))
    annotation.add_referent(make_region_ref("img1"))
    assert annotation.object_ids() == {"seq1", "img1"}


def test_annotation_to_document():
    content = AnnotationContent(dublin_core=DublinCore(title="T"), body="comment")
    content.point_to("ont1")
    annotation = Annotation("a1", content)
    annotation.add_referent(make_interval_ref())
    document = annotation.to_document()
    assert document.root.tag == "annotation"
    assert document.root.get("id") == "a1"
    assert document.root.find("body").text == "comment"
    assert document.root.find("referents").find("referent") is not None


def test_annotation_to_xml_roundtrip():
    content = AnnotationContent(dublin_core=DublinCore(title="T", subject=["protease"]))
    annotation = Annotation("a1", content)
    annotation.add_referent(make_interval_ref())
    xml = annotation.to_xml()
    assert "protease" in xml
    # the XML must reparse
    from repro.xmlstore.parser import parse_xml

    reparsed = parse_xml(xml)
    assert reparsed.root.get("id") == "a1"
