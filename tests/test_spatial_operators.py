"""Tests for the SUB-X operators (ifOverlap, next, intersect)."""

import pytest

from repro.errors import SpatialError
from repro.spatial.interval import Interval
from repro.spatial.operators import (
    are_consecutive,
    are_disjoint,
    if_overlap,
    intersect,
    next_substructure,
)
from repro.spatial.rect import Rect


def test_if_overlap_intervals():
    assert if_overlap(Interval(1, 5), Interval(4, 8))
    assert not if_overlap(Interval(1, 5), Interval(6, 8))


def test_if_overlap_rects():
    assert if_overlap(Rect((0, 0), (5, 5)), Rect((4, 4), (9, 9)))
    assert not if_overlap(Rect((0, 0), (2, 2)), Rect((5, 5), (9, 9)))


def test_if_overlap_mixed_kinds_false():
    assert not if_overlap(Interval(1, 5), Rect((0, 0), (5, 5)))


def test_if_overlap_dimension_mismatch():
    assert not if_overlap(Rect((0, 0), (2, 2)), Rect((0, 0, 0), (2, 2, 2)))


def test_if_overlap_space_mismatch():
    assert not if_overlap(
        Rect((0, 0), (5, 5), space="a"), Rect((1, 1), (2, 2), space="b")
    )


def test_intersect_intervals():
    assert intersect(Interval(1, 5), Interval(3, 9)) == Interval(3, 5)
    assert intersect(Interval(1, 2), Interval(5, 9)) is None


def test_intersect_rects():
    assert intersect(Rect((0, 0), (5, 5)), Rect((3, 3), (9, 9))) == Rect((3, 3), (5, 5))


def test_intersect_mixed_raises():
    with pytest.raises(SpatialError):
        intersect(Interval(1, 5), Rect((0, 0), (5, 5)))


def test_next_substructure():
    ordered = [Interval(1, 5), Interval(6, 9), Interval(10, 12)]
    assert next_substructure(Interval(1, 5), ordered) == Interval(6, 9)
    assert next_substructure(Interval(10, 12), ordered) is None


def test_next_substructure_requires_interval():
    with pytest.raises(SpatialError):
        next_substructure(Rect((0, 0), (1, 1)), [])


def test_next_substructure_respects_domain():
    ordered = [Interval(6, 9, domain="a"), Interval(7, 8, domain="b")]
    nxt = next_substructure(Interval(1, 5, domain="a"), ordered)
    assert nxt == Interval(6, 9, domain="a")


def test_are_consecutive_true():
    assert are_consecutive([Interval(1, 3), Interval(4, 6), Interval(7, 9)])


def test_are_consecutive_overlap_false():
    assert not are_consecutive([Interval(1, 5), Interval(4, 8)])


def test_are_consecutive_max_gap():
    assert not are_consecutive([Interval(1, 3), Interval(50, 60)], max_gap=5)
    assert are_consecutive([Interval(1, 3), Interval(5, 7)], max_gap=5)


def test_are_consecutive_single():
    assert are_consecutive([Interval(1, 3)])


def test_are_disjoint():
    assert are_disjoint([Interval(1, 3), Interval(5, 7)])
    assert not are_disjoint([Interval(1, 5), Interval(4, 8)])


def test_are_disjoint_rects():
    assert are_disjoint([Rect((0, 0), (1, 1)), Rect((5, 5), (6, 6))])
    assert not are_disjoint([Rect((0, 0), (5, 5)), Rect((3, 3), (9, 9))])
