"""Wire dispatch: every op reachable over the network."""


def build_dispatch(service):
    return {
        "put": service.put,
        "erase": service.erase,
    }
