"""Routing facade: every op routes to its owning shard."""


class MiniRouter:
    def put(self, row):
        return self._shard_for(row).put(row)

    def erase(self, key):
        return self._shard_for(key).erase(key)

    def _shard_for(self, key):
        raise NotImplementedError
