"""Emit sites: every WAL op is logged before acknowledgement."""


class MiniService:
    def __init__(self, wal):
        self._wal = wal

    def put(self, row):
        self._wal.append("put", row)

    def erase(self, key):
        self._wal.append("erase", {"key": key})
