"""Crash tests: every op has a crash/replay case."""


def check_put_replay(harness):
    harness.crash_after("put")
    harness.recover()


def check_erase_replay(harness):
    harness.crash_after("erase")
    harness.recover()
