"""Replay: one branch per registered op, nothing else."""


def apply_record(state, record):
    op = record["op"]
    if op == "put":
        state[record["key"]] = record["value"]
    elif op == "erase":
        state.pop(record["key"], None)
