"""Mini WAL module: op registry for the clean twin."""

WAL_OPS = (
    "put",
    "erase",
)
