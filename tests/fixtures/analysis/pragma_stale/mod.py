"""Pragmas that suppress nothing, or name unknown rules."""


def quiet():
    value = 1  # repro: allow-lock-io
    other = 2  # repro: allow-made-up-rule
    return value + other
