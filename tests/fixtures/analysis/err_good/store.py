"""Typed raises; narrow handlers; failures surfaced."""

from tests.fixtures.analysis.err_good.errors_mod import StoreError


def load(path):
    try:
        handle = open(path)
    except OSError:
        return None
    return handle.read()


def save(path, data):
    if not path:
        raise StoreError("path required")
