"""Mini taxonomy for the clean twin."""


class GraphittiError(Exception):
    pass


class StoreError(GraphittiError):
    pass
