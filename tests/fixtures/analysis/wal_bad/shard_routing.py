"""Routing facade: only put routes; erase has no shard method."""


class MiniRouter:
    def put(self, row):
        return self._shard_for(row).put(row)

    def _shard_for(self, row):
        raise NotImplementedError
