"""Wire dispatch: erase is unreachable over the network."""


def build_dispatch(service):
    return {
        "put": service.put,
    }
