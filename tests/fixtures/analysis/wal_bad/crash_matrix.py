"""Crash tests: only the put op is ever crash-tested."""


def check_put_replay(harness):
    harness.crash_after("put")
    harness.recover()
