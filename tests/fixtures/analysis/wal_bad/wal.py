"""Mini WAL module: op registry for the seeded-violation tree."""

WAL_OPS = (
    "put",
    "erase",
)
