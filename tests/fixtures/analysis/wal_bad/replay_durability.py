"""Replay: handles "put" and a branch for an op that was never registered."""


def apply_record(state, record):
    op = record["op"]
    if op == "put":
        state[record["key"]] = record["value"]
    elif op == "rename":
        # BUG: "rename" is not in WAL_OPS — dead branch or unregistered op.
        state[record["new"]] = state.pop(record["old"])
