"""Emit sites: only "put" is ever logged — "erase" mutates without a record."""


class MiniService:
    def __init__(self, wal):
        self._wal = wal

    def put(self, row):
        self._wal.append("put", row)

    def erase(self, key):
        # BUG: mutation acknowledged with no WAL record emitted.
        del row_store[key]  # noqa: F821 - illustrative
