"""Raises outside the taxonomy and swallows failures blind."""


def load(path):
    try:
        handle = open(path)
    except:  # VIOLATION: bare except
        return None
    try:
        return handle.read()
    except Exception:
        pass  # VIOLATION: broad handler that swallows the failure


def save(path, data):
    if not path:
        raise ValueError("path required")  # VIOLATION: outside the taxonomy
