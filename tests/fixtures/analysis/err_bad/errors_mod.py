"""Mini taxonomy for the seeded-violation tree."""


class GraphittiError(Exception):
    pass


class StoreError(GraphittiError):
    pass
