"""Seeded lock-discipline violations; every rule here must fire.

The twin in ``../lock_good`` is the same service with the locking done
right — the checker must stay silent there.
"""

import os

from repro.analysis.annotations import mutates_state, requires_write_lock
from repro.service.locks import ReadWriteLock


class BadService:
    def __init__(self, manager):
        self._lock = ReadWriteLock()
        self._manager = manager
        self._snapshot_fd = 0

    @requires_write_lock
    def _apply_locked(self, row):
        self._manager.store(row)

    @mutates_state
    def put(self, row):
        # VIOLATION (lock-discipline): a @mutates_state entry point that
        # never acquires the write lock, calling a @requires_write_lock
        # helper with no dominating `with ...write_locked():`.
        self._apply_locked(row)

    @mutates_state
    def put_durable(self, row):
        with self._lock.write_locked():
            self._apply_locked(row)
            # VIOLATION (lock-io): blocking I/O while the write lock is held.
            os.fsync(self._snapshot_fd)
