"""The clean twin of ``../lock_bad``: same shape, locking done right."""

import os

from repro.analysis.annotations import io_under_lock_ok, mutates_state, requires_write_lock
from repro.service.locks import ReadWriteLock


class GoodService:
    def __init__(self, manager):
        self._lock = ReadWriteLock()
        self._manager = manager
        self._wal_fd = 0

    @requires_write_lock
    def _apply_locked(self, row):
        self._manager.store(row)

    @requires_write_lock
    @io_under_lock_ok
    def _ack_locked(self):
        # Reviewed exception: the WAL-append fsync is the durability point.
        os.fsync(self._wal_fd)

    @mutates_state
    def put(self, row):
        with self._lock.write_locked():
            self._apply_locked(row)

    @mutates_state
    def put_durable(self, row):
        with self._lock.write_locked():
            self._apply_locked(row)
            self._ack_locked()
        self._publish(row)

    def _publish(self, row):
        # Off-lock I/O is fine.
        os.fsync(self._wal_fd)
