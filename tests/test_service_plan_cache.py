"""Service-level guarantees for stats-driven plans and the result cache.

The result cache is keyed by (normalized GQL, plan fingerprint) and tagged
with the mutation epoch; the prepared-plan memo is epoch-validated.  These
tests prove the service can never serve a result that was produced under a
different plan for the same GQL text, even as live statistics shift the
cost-based planner's chosen order.
"""

import pytest

from repro import Graphitti
from repro.datatypes import DnaSequence
from repro.service import GraphittiService, ServiceConfig

QUERY = (
    'SELECT contents WHERE { CONTENT CONTAINS "shared" '
    "INTERVAL OVERLAPS chr1 [0, 50] }"
)


def _manager() -> Graphitti:
    manager = Graphitti("plan-cache")
    manager.register(DnaSequence("seq1", "ACGT" * 500, domain="chr1"))
    return manager


def _commit(service, annotation_id: str, keywords, start: float, end: float) -> None:
    service.commit(
        service.new_annotation(annotation_id, keywords=list(keywords)).mark_sequence(
            "seq1", start, end
        )
    )


@pytest.fixture
def service():
    # Explicit cost mode: the corpus here is far below the small-corpus
    # fallback threshold, and these tests exercise stats-driven re-planning.
    svc = GraphittiService(manager=_manager(), config=ServiceConfig(planner_mode="cost"))
    yield svc
    svc.close()


def test_plan_memo_replans_after_mutation(service):
    # Stage 1: "shared" is rare, the window is broad -> keyword first.
    _commit(service, "a0", ["shared"], 0, 40)
    for index in range(30):
        _commit(service, f"bulk-{index}", ["filler"], 100 + index * 30, 120 + index * 30)
    first = service.query(QUERY)
    first_fingerprint = first.plan_fingerprint
    # Stage 2: flood the corpus with "shared" annotations far from the
    # window, so the interval becomes the selective constraint.
    for index in range(60):
        _commit(service, f"shared-{index}", ["shared"], 600 + index * 10, 620 + index * 10)
    second = service.query(QUERY)
    assert second is not first
    # The stats-driven re-plan chose a different order -> different
    # fingerprint -> different cache key; the old entry cannot be served.
    assert second.plan_fingerprint != first_fingerprint
    assert second.annotation_ids == ["a0"]


def test_cached_result_always_matches_current_plan(service):
    _commit(service, "a0", ["shared"], 0, 40)
    warm = service.query(QUERY)
    hit = service.query(QUERY)
    # Same epoch, same plan -> cache hit (served as an equal, independent copy).
    assert hit.to_dict() == warm.to_dict()
    assert service.statistics()["service"]["query_cache"]["hits"] >= 1
    assert hit.plan_fingerprint == warm.plan_fingerprint
    _commit(service, "a1", ["shared"], 10, 30)
    fresh = service.query(QUERY)
    assert fresh is not warm  # epoch bumped -> the stale entry cannot serve
    assert set(fresh.annotation_ids) == {"a0", "a1"}


def test_query_object_and_text_agree_on_fingerprint(service):
    from repro.query.parser import parse_query

    _commit(service, "a0", ["shared"], 0, 40)
    by_text = service.query(QUERY)
    by_object = service.query(parse_query(QUERY))
    assert by_text.plan_fingerprint == by_object.plan_fingerprint
    assert by_text.annotation_ids == by_object.annotation_ids


def test_results_identical_across_epochs_and_orders(service):
    """Whatever order the planner picks, the answers match a cold engine."""
    _commit(service, "a0", ["shared"], 0, 40)
    for index in range(40):
        _commit(service, f"shared-{index}", ["shared"], 600 + index * 10, 610 + index * 10)
    served = service.query(QUERY)
    cold = service.manager.query(QUERY, mode="off")
    assert served.annotation_ids == cold.annotation_ids


def test_plan_cache_capacity_zero_replans_every_time():
    service = GraphittiService(
        manager=_manager(), config=ServiceConfig(plan_cache_capacity=0)
    )
    try:
        _commit(service, "a0", ["shared"], 0, 40)
        first = service.query(QUERY)
        second = service.query(QUERY)
        assert first.annotation_ids == second.annotation_ids
        assert service.statistics()["service"]["prepared_plans"] == 0
    finally:
        service.close()
