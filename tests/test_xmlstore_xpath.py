"""Tests for the XPath-subset evaluator."""

import pytest

from repro.errors import XPathError
from repro.xmlstore.parser import parse_xml
from repro.xmlstore.xpath import XPath, evaluate_xpath

SAMPLE = """
<annotation id="a1">
  <metadata>
    <dc:title>Protease site</dc:title>
    <dc:subject>protease</dc:subject>
    <dc:subject>cleavage</dc:subject>
    <dc:creator lang="en">alice</dc:creator>
  </metadata>
  <referents>
    <referent type="dna">
      <interval start="10" end="40"/>
    </referent>
    <referent type="image">
      <region lo="0,0" hi="5,5"/>
    </referent>
  </referents>
</annotation>
"""


@pytest.fixture
def doc():
    return parse_xml(SAMPLE)


def test_absolute_path(doc):
    result = evaluate_xpath("/annotation/metadata/dc:title", doc)
    assert len(result) == 1
    assert result[0].text == "Protease site"


def test_descendant_shorthand(doc):
    result = evaluate_xpath("//referent", doc)
    assert len(result) == 2


def test_wildcard(doc):
    result = evaluate_xpath("/annotation/metadata/*", doc)
    assert len(result) == 4


def test_attribute_selector(doc):
    result = evaluate_xpath("//referent/@type", doc)
    assert result == ["dna", "image"]


def test_text_selector(doc):
    result = evaluate_xpath("//dc:subject/text()", doc)
    assert result == ["protease", "cleavage"]


def test_positional_predicate(doc):
    result = evaluate_xpath("/annotation/metadata/dc:subject[2]", doc)
    assert result[0].text == "cleavage"


def test_attribute_equality_predicate(doc):
    result = evaluate_xpath("//referent[@type='image']", doc)
    assert len(result) == 1


def test_child_text_equality_predicate(doc):
    result = evaluate_xpath("/annotation/metadata[dc:title='Protease site']", doc)
    assert len(result) == 1


def test_contains_predicate_on_text(doc):
    result = evaluate_xpath("//dc:title[contains(., 'Protease')]", doc)
    assert len(result) == 1


def test_contains_predicate_on_attribute(doc):
    result = evaluate_xpath("//dc:creator[contains(@lang, 'en')]", doc)
    assert len(result) == 1


def test_attribute_existence_predicate(doc):
    result = evaluate_xpath("//referent[@type]", doc)
    assert len(result) == 2


def test_empty_expression():
    with pytest.raises(XPathError):
        XPath("")


def test_attribute_not_final_step():
    with pytest.raises(XPathError):
        XPath("/a/@attr/b")


def test_nonmatching_path(doc):
    assert evaluate_xpath("/annotation/ghost", doc) == []


def test_descendant_attribute(doc):
    result = evaluate_xpath("//interval/@start", doc)
    assert result == ["10"]
