"""Tests for the hash and sorted secondary indexes."""

import pytest
from hypothesis import given, strategies as st

from repro.relational.index import HashIndex, SortedIndex


def test_hash_index_insert_lookup():
    index = HashIndex("h", ("x",))
    index.insert(1, 100)
    index.insert(1, 101)
    index.insert(2, 200)
    assert index.lookup(1) == {100, 101}
    assert index.lookup(2) == {200}
    assert index.lookup(3) == set()


def test_hash_index_remove():
    index = HashIndex("h", ("x",))
    index.insert(1, 100)
    index.insert(1, 101)
    index.remove(1, 100)
    assert index.lookup(1) == {101}
    index.remove(1, 101)
    assert index.lookup(1) == set()
    assert 1 not in list(index.keys())


def test_hash_index_composite_key():
    index = HashIndex("h", ("a", "b"))
    key = index.key_for({"a": 1, "b": "x"})
    assert key == (1, "x")


def test_hash_index_len():
    index = HashIndex("h", ("x",))
    index.insert("a", 1)
    index.insert("b", 2)
    index.insert("b", 3)
    assert len(index) == 3


def test_sorted_index_range_inclusive():
    index = SortedIndex("s", "x")
    for value in range(10):
        index.insert(value, value)
    assert index.range(2, 5) == {2, 3, 4, 5}


def test_sorted_index_range_exclusive():
    index = SortedIndex("s", "x")
    for value in range(10):
        index.insert(value, value)
    assert index.range(2, 5, include_low=False, include_high=False) == {3, 4}


def test_sorted_index_open_bounds():
    index = SortedIndex("s", "x")
    for value in range(5):
        index.insert(value, value)
    assert index.range(None, 2) == {0, 1, 2}
    assert index.range(2, None) == {2, 3, 4}
    assert index.range(None, None) == {0, 1, 2, 3, 4}


def test_sorted_index_inverted_bounds_empty():
    index = SortedIndex("s", "x")
    index.insert(5, 1)
    assert index.range(10, 1) == set()


def test_sorted_index_min_max():
    index = SortedIndex("s", "x")
    for value in [5, 1, 9, 3]:
        index.insert(value, value)
    assert index.min_key() == 1
    assert index.max_key() == 9


def test_sorted_index_remove_maintains_order():
    index = SortedIndex("s", "x")
    for value in [5, 1, 9, 3]:
        index.insert(value, value)
    index.remove(1, 1)
    assert list(index.ordered_keys()) == [3, 5, 9]


def test_sorted_index_handles_none():
    index = SortedIndex("s", "x")
    index.insert(None, 1)
    index.insert(5, 2)
    assert index.lookup(None) == {1}
    assert index.range(None, None) == {1, 2}


def test_sorted_index_mixed_numeric():
    index = SortedIndex("s", "x")
    index.insert(1, 1)
    index.insert(2.5, 2)
    assert index.range(1, 3) == {1, 2}


@given(
    values=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=80),
    low=st.integers(min_value=-100, max_value=100),
    high=st.integers(min_value=-100, max_value=100),
)
def test_sorted_index_range_matches_bruteforce(values, low, high):
    if low > high:
        low, high = high, low
    index = SortedIndex("s", "x")
    for position, value in enumerate(values):
        index.insert(value, position)
    expected = {position for position, value in enumerate(values) if low <= value <= high}
    assert index.range(low, high) == expected


@given(st.lists(st.integers(), min_size=0, max_size=50))
def test_sorted_index_ordered_keys_sorted(values):
    index = SortedIndex("s", "x")
    for position, value in enumerate(values):
        index.insert(value, position)
    keys = list(index.ordered_keys())
    assert keys == sorted(set(values))
