"""Runtime lock-order monitor: cycles fire, clean orders pass, patching is scoped."""

import threading

import pytest

from repro.analysis.runtime import (
    LockOrderMonitor,
    LockOrderViolation,
    MonitoredLock,
    monitoring,
    name_lock,
    run_racing,
    wrap_lock,
)
from repro.service.locks import ReadWriteLock


def test_consistent_order_has_no_cycles():
    monitor = LockOrderMonitor()
    for _ in range(3):
        monitor.record_acquire("A")
        monitor.record_acquire("B")
        monitor.record_release("B")
        monitor.record_release("A")
    assert monitor.cycles() == []
    monitor.assert_no_cycles()


def test_inverted_order_is_a_cycle_without_a_deadlock():
    # The whole point: the inversion is caught from acquisition order alone,
    # single-threaded, with no actual deadlock ever occurring.
    monitor = LockOrderMonitor()
    monitor.record_acquire("A")
    monitor.record_acquire("B")
    monitor.record_release("B")
    monitor.record_release("A")
    monitor.record_acquire("B")
    monitor.record_acquire("A")
    monitor.record_release("A")
    monitor.record_release("B")
    cycles = monitor.cycles()
    assert cycles, "inverted acquisition order must produce a cycle"
    with pytest.raises(LockOrderViolation, match="lock-order cycle"):
        monitor.assert_no_cycles()


def test_inverted_order_fixture_with_real_locks():
    # Two real ReadWriteLocks acquired in opposite orders on two threads.
    lock_a = name_lock(ReadWriteLock(), "svc")
    lock_b = name_lock(ReadWriteLock(), "cache")
    with monitoring() as monitor:
        def forward():
            with lock_a.write_locked():
                with lock_b.write_locked():
                    pass

        def backward():
            with lock_b.write_locked():
                with lock_a.write_locked():
                    pass

        forward()
        backward()
        cycles = monitor.cycles()
    assert any({"svc", "cache"} == set(c[:-1]) for c in cycles)


def test_monitoring_restores_the_class():
    before = (
        ReadWriteLock.acquire_read,
        ReadWriteLock.acquire_write,
        ReadWriteLock.release_read,
        ReadWriteLock.release_write,
    )
    with monitoring():
        assert ReadWriteLock.acquire_write is not before[1]
    after = (
        ReadWriteLock.acquire_read,
        ReadWriteLock.acquire_write,
        ReadWriteLock.release_read,
        ReadWriteLock.release_write,
    )
    assert before == after


def test_read_acquisitions_are_recorded_too():
    lock = name_lock(ReadWriteLock(), "svc")
    with monitoring() as monitor:
        with lock.read_locked():
            pass
    assert monitor.acquisitions == 1


def test_wrapped_plain_mutex_joins_the_graph():
    monitor = LockOrderMonitor()
    rw = name_lock(ReadWriteLock(), "svc")
    plain = wrap_lock("cache-mutex", threading.Lock(), monitor)
    assert isinstance(plain, MonitoredLock)
    with monitoring(monitor):
        with rw.write_locked():
            with plain:
                pass
    assert monitor.edges.get("svc") == {"cache-mutex"}
    assert not plain.locked()


def test_out_of_order_release_keeps_the_stack_sane():
    # Hand-over-hand: acquire A, acquire B, release A, release B.
    monitor = LockOrderMonitor()
    monitor.record_acquire("A")
    monitor.record_acquire("B")
    monitor.record_release("A")
    monitor.record_acquire("C")
    monitor.record_release("C")
    monitor.record_release("B")
    assert monitor.edges == {"A": {"B"}, "B": {"C"}}
    assert monitor.held_by_current_thread() == ()


def test_edges_accumulate_across_threads():
    monitor = LockOrderMonitor()

    def use(first, second):
        def thunk():
            monitor.record_acquire(first)
            monitor.record_acquire(second)
            monitor.record_release(second)
            monitor.record_release(first)
        return thunk

    run_racing([use("A", "B"), use("A", "B"), use("A", "B")], repeat=2)
    assert monitor.edges == {"A": {"B"}}
    assert monitor.acquisitions == 12
    monitor.assert_no_cycles()


def test_run_racing_propagates_the_first_error():
    def boom():
        raise RuntimeError("seeded failure")

    with pytest.raises(RuntimeError, match="seeded failure"):
        run_racing([boom, lambda: None])
