"""Property-based tests for spatial index invariants and round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.linear_scan import linear_interval_overlap, linear_region_overlap
from repro.spatial.interval import Interval
from repro.spatial.interval_tree import IntervalTree
from repro.spatial.rect import Rect
from repro.spatial.rtree import RTree


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 30), st.integers(0, 1)),
        min_size=1,
        max_size=60,
    )
)
def test_interval_tree_insert_remove_roundtrip(ops):
    tree = IntervalTree()
    inserted = []
    for position, (start, length, should_remove) in enumerate(ops):
        interval = Interval(start, start + length, payload=position)
        tree.insert(interval)
        inserted.append(interval)
    # remove half of them and check size bookkeeping
    for interval in inserted[::2]:
        assert tree.remove(interval)
    assert len(tree) == len(inserted) - len(inserted[::2])


@settings(max_examples=40, deadline=None)
@given(
    intervals=st.lists(st.tuples(st.integers(0, 200), st.integers(0, 40)), min_size=0, max_size=70),
    qstart=st.integers(0, 200),
    qlen=st.integers(0, 40),
)
def test_interval_tree_overlap_is_complete_and_sound(intervals, qstart, qlen):
    items = [Interval(s, s + length, payload=i) for i, (s, length) in enumerate(intervals)]
    tree = IntervalTree.from_intervals(items)
    query = Interval(qstart, qstart + qlen)
    got = {iv.payload for iv in tree.search_overlap(query)}
    expected = {iv.payload for iv in linear_interval_overlap(items, query)}
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(
    rects=st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 200), st.integers(1, 30), st.integers(1, 30)),
        min_size=1,
        max_size=60,
    ),
)
def test_rtree_insert_remove_size(rects):
    items = [Rect((x, y), (x + w, y + h), payload=i) for i, (x, y, w, h) in enumerate(rects)]
    tree = RTree.from_rects(items, max_entries=6)
    assert len(tree) == len(items)
    for rect in items[::3]:
        assert tree.remove(rect)
    assert len(tree) == len(items) - len(items[::3])


@settings(max_examples=30, deadline=None)
@given(
    rects=st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 200), st.integers(1, 30), st.integers(1, 30)),
        min_size=1,
        max_size=60,
    ),
    query=st.tuples(st.integers(0, 200), st.integers(0, 200), st.integers(1, 60), st.integers(1, 60)),
)
def test_rtree_bulk_load_matches_scan(rects, query):
    items = [Rect((x, y), (x + w, y + h), payload=i) for i, (x, y, w, h) in enumerate(rects)]
    tree = RTree.bulk_load(items, max_entries=8)
    q = Rect((query[0], query[1]), (query[0] + query[2], query[1] + query[3]))
    got = {rect.payload for rect in tree.search_overlap(q)}
    expected = {rect.payload for rect in linear_region_overlap(items, q)}
    assert got == expected
