"""Process-per-shard workers: spawn, crash, restart, recover.

The robustness headline lives here: a worker SIGKILLed mid-service is
detected by the heartbeat monitor within its miss threshold, restarted by
the supervisor, and comes back having replayed its WAL — no acknowledged
write lost.  The ``REPRO_NET_KILL_AFTER_APPLY`` window proves the nastiest
case: the worker dies *after* the WAL append but *before* the ack, and the
client's idempotent retry against the recovered worker converges to exactly
one apply.
"""

import pytest

from repro.errors import ShardUnavailableError
from repro.net import NetworkShardedGraphittiService, RetryPolicy

from test_shard_service import PROBES, populate

FAST_RETRY = RetryPolicy(attempts=4, base_backoff_s=0.01, max_backoff_s=0.05)


def open_process(root, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("start_monitor", False)
    kwargs.setdefault("heartbeat_interval_s", 0.2)
    kwargs.setdefault("miss_threshold", 2)
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("op_timeout_s", 15.0)
    return NetworkShardedGraphittiService.open(root, worker_mode="process", **kwargs)


def test_durable_round_trip_and_reopen(tmp_path):
    root = tmp_path / "net"
    service = open_process(root)
    try:
        populate(service, count=12)
        before = service.query(PROBES[0]).annotation_ids
        assert service.annotation_count == 12
    finally:
        service.close()
    reopened = open_process(root, shards=None)
    try:
        assert reopened.annotation_count == 12
        assert reopened.query(PROBES[0]).annotation_ids == before
        assert reopened.recovery_info is not None
    finally:
        reopened.close()


def test_sigkill_detect_restart_ledger_intact(tmp_path):
    service = open_process(tmp_path / "net", auto_restart=True)
    try:
        populate(service, count=12)
        before = service.query(PROBES[0]).annotation_ids
        victim = service._handles[1]
        old_pid = victim.pid
        service.kill_shard(1)
        # Drive the detector deterministically: miss_threshold consecutive
        # failed probes declare the shard dead and trigger the restart.
        for _ in range(service.miss_threshold + 1):
            service.monitor.probe_all()
        status = service.network_status()
        assert all(row["alive"] for row in status["workers"])
        assert victim.pid != old_pid
        assert service.query(PROBES[0]).annotation_ids == before
        counters = service.obs.registry
        assert counters.counter("net.workers_declared_dead").value == 1
        assert counters.counter("net.worker_restarts").value == 1
        assert counters.counter("net.heartbeat_misses").value >= service.miss_threshold
    finally:
        service.close()


def test_dead_shard_fails_fast_when_not_auto_restarted(tmp_path):
    service = open_process(tmp_path / "net", auto_restart=False)
    try:
        populate(service, count=8)
        service.kill_shard(0)
        for _ in range(service.miss_threshold):
            service.monitor.probe_all()
        assert service._shards[0].dead
        with pytest.raises(ShardUnavailableError):
            service.query(PROBES[0])
        # Manual restart revives it, with the ledger intact.
        service.restart_shard(0)
        assert service.annotation_count == 8
    finally:
        service.close()


def test_kill_after_apply_loses_no_acked_write(tmp_path):
    # The nastiest crash window: the worker dies AFTER the WAL append but
    # BEFORE acknowledging the client.  One object pins every commit to one
    # shard; that worker is armed to die on its 5th WAL append (1 register +
    # 4 commits), so the kill fires mid-commit, deterministically.  The
    # heartbeat monitor restarts the worker, recovery replays the WAL, and
    # every *acknowledged* write must survive; the killed (unacked) write is
    # classically indeterminate and may legitimately survive too.
    import time

    from repro.datatypes.sequence import DnaSequence
    from repro.errors import ShardTimeoutError
    from repro.shard import shard_for_key

    armed_shard = shard_for_key("durable-obj", 2)
    root = tmp_path / "net"
    service = open_process(
        root,
        auto_restart=True,
        start_monitor=True,
        worker_env={armed_shard: {"REPRO_NET_KILL_AFTER_APPLY": "5"}},
    )
    acked = []
    attempts_total = 0
    try:
        service.register(DnaSequence("durable-obj", "ACGT" * 50, domain="dur:chr1"))
        for index in range(6):
            for _attempt in range(12):
                attempts_total += 1
                try:
                    annotation = (
                        service.new_annotation(
                            f"durable-{index}-{_attempt}",
                            title=f"durable {index}",
                            keywords=["common"],
                        )
                        .mark_sequence("durable-obj", index * 10, index * 10 + 5)
                        .commit()
                    )
                except (ShardUnavailableError, ShardTimeoutError):
                    time.sleep(0.5)  # wait out detection + respawn
                    continue
                acked.append(annotation.annotation_id)
                break
            else:
                pytest.fail(f"write {index} never succeeded across restarts")
        assert len(acked) == 6
        # Zero acked-write loss: every acknowledged id is durably present.
        for annotation_id in acked:
            assert service.annotation(annotation_id).annotation_id == annotation_id
        assert len(acked) <= service.annotation_count <= attempts_total
        assert service.obs.registry.counter("net.worker_restarts").value >= 1
    finally:
        service.close()
    reopened = open_process(root, shards=None)
    try:
        for annotation_id in acked:
            assert reopened.annotation(annotation_id).annotation_id == annotation_id
    finally:
        reopened.close()
