"""Tests for the data object base classes and SubstructureRef."""

import pytest

from repro.datatypes.base import DataObject, DataType, SubstructureRef
from repro.errors import MarkError
from repro.spatial.interval import Interval
from repro.spatial.rect import Rect


def test_datatype_is_sequence():
    assert DataType.DNA.is_sequence
    assert DataType.RNA.is_sequence
    assert DataType.PROTEIN.is_sequence
    assert not DataType.IMAGE.is_sequence


def test_datatype_is_spatial_2d():
    assert DataType.IMAGE.is_spatial_2d
    assert not DataType.DNA.is_spatial_2d


def test_substructure_ref_interval_key():
    ref = SubstructureRef("seq", DataType.DNA, interval=Interval(10, 40, domain="chr1"))
    assert ref.is_spatial
    assert ref.domain == "chr1"
    assert "10" in ref.key() and "40" in ref.key()


def test_substructure_ref_rect_key():
    ref = SubstructureRef("img", DataType.IMAGE, rect=Rect((0, 0), (5, 5), space="atlas"))
    assert ref.is_spatial
    assert ref.domain == "atlas"
    assert "box" in ref.key()


def test_substructure_ref_nonspatial_key():
    ref = SubstructureRef("tree", DataType.TREE, descriptor={"clade": "x", "leaves": 3})
    assert not ref.is_spatial
    assert ref.domain is None
    assert "sub" in ref.key()


def test_substructure_ref_cannot_be_both():
    with pytest.raises(MarkError):
        SubstructureRef("x", DataType.DNA, interval=Interval(1, 2), rect=Rect((0, 0), (1, 1)))


def test_substructure_ref_roundtrip_interval():
    ref = SubstructureRef("seq", DataType.DNA, descriptor={"start": 10}, interval=Interval(10, 40, domain="chr1"))
    restored = SubstructureRef.from_dict(ref.to_dict())
    assert restored.object_id == "seq"
    assert restored.interval.start == 10
    assert restored.interval.domain == "chr1"


def test_substructure_ref_roundtrip_rect():
    ref = SubstructureRef("img", DataType.IMAGE, rect=Rect((0, 0), (5, 5), space="atlas"))
    restored = SubstructureRef.from_dict(ref.to_dict())
    assert restored.rect.lo == (0, 0)
    assert restored.rect.space == "atlas"


def test_data_object_requires_id():
    with pytest.raises(MarkError):
        DataObject("")


def test_data_object_default_domain_is_id():
    obj = DataObject("x")
    assert obj.coordinate_domain == "x"
