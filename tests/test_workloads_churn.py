"""The churn workload drives every serving surface without errors."""

import pytest

from repro.core.manager import Graphitti
from repro.service import GraphittiService
from repro.workloads import run_churn_workload, seed_churn_corpus


def _assert_clean(summary):
    assert not summary["errors"], summary["errors"][:5]
    verification = summary["verification"]
    assert verification["integrity_ok"]
    assert verification["annotation_count"] == verification["ledger_count"]
    assert summary["updates"] > 0
    assert summary["moves"] > 0
    assert summary["deletes"] > 0


def test_churn_on_bare_manager():
    manager = Graphitti("churn-mgr")
    corpus = seed_churn_corpus(manager, objects=6, annotations=60)
    assert len(corpus["annotation_ids"]) == 60
    summary = run_churn_workload(manager, corpus, operations=120)
    _assert_clean(summary)
    assert summary["object_deletes"] > 0


def test_churn_on_service(tmp_path):
    service = GraphittiService.open(tmp_path / "svc")
    corpus = seed_churn_corpus(service, objects=6, annotations=60)
    summary = run_churn_workload(service, corpus, operations=120)
    _assert_clean(summary)
    service.close()
    # the churned state survives a close/recover cycle
    recovered = GraphittiService.recover(tmp_path / "svc")
    assert recovered.annotation_count == len(summary["live_ids"])
    assert recovered.check_integrity().ok
    recovered.close()


def test_churn_on_sharded_service():
    from repro.shard import ShardedGraphittiService

    service = ShardedGraphittiService(shards=3)
    corpus = seed_churn_corpus(service, objects=9, annotations=45)
    summary = run_churn_workload(service, corpus, operations=90)
    _assert_clean(summary)
    service.close()
