"""Deterministic fault injection: the crash/failover matrix.

Each test arms a :class:`FaultSchedule` against a live replicated
deployment and drives writes until the fault fires, then verifies the two
invariants the tentpole promises: **zero acknowledged-write loss** (every
commit that returned survives failover, on the new primary and on every
surviving follower) and **no double-apply** (sequence numbers never rewind;
re-ships and replays are idempotent).  The seeded sweep at the end replays
a pseudo-random schedule matrix — same seed, same faults, every run.
"""

import pytest

from repro.datatypes import DnaSequence
from repro.errors import ServiceError
from repro.replica import (
    FaultRule,
    FaultSchedule,
    InjectedFsyncError,
    PrimaryCrashed,
    ReplicatedGraphittiService,
    ReplicationConfig,
)
from repro.service import ServiceConfig

MANUAL = ReplicationConfig(auto_ship=False, auto_failover=False, read_deadline=0.05)

PROBE = 'SELECT contents WHERE { CONTENT CONTAINS "fault" }'


def open_deployment(root, durability="always", replicas=2):
    return ReplicatedGraphittiService.open(
        root,
        replicas=replicas,
        config=ServiceConfig(durability=durability),
        replication=MANUAL,
    )


def register_pool(service, object_id="fault_seq"):
    service.register(DnaSequence(object_id, "ACGT" * 200, domain="fault:chr1"))
    return object_id


def commit_one(service, object_id, serial):
    annotation = (
        service.new_annotation(
            f"fault-{serial}",
            keywords=["fault"],
            body=f"fault matrix annotation {serial}",
        )
        .mark_sequence(object_id, serial * 10, serial * 10 + 8)
        .commit()
    )
    return annotation.annotation_id


def assert_zero_acked_loss(service, acked_ids):
    """Every acknowledged id must be queryable on the serving read path and
    present on every surviving follower — and nothing may exist twice."""
    result = service.query(PROBE, consistency="fresh")
    assert set(acked_ids) <= set(result.annotation_ids)
    assert len(result.annotation_ids) == len(set(result.annotation_ids))
    service.ship()
    for follower in service.followers:
        for annotation_id in acked_ids:
            follower.service.annotation(annotation_id)  # raises if lost


def test_fsync_failure_poisons_primary_then_failover(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        schedule = FaultSchedule([FaultRule("wal.fsync", at=4)])
        schedule.install(service)
        object_id = register_pool(service)
        acked = []
        # The injected fsync failure surfaces raw (it is an OSError, exactly
        # what a real device hands back) and poisons the WAL behind it.
        with pytest.raises(InjectedFsyncError):
            for serial in range(10):
                acked.append(commit_one(service, object_id, serial))
        assert schedule.fired and schedule.fired[0]["point"] == "wal.fsync"
        # The poisoned WAL refuses further writes: the primary is dead.
        assert not service.primary_alive()
        with pytest.raises(ServiceError):
            commit_one(service, object_id, 11)
        report = service.failover()
        assert report["term"] == 2
        assert_zero_acked_loss(service, acked)


def test_torn_shipment_is_reshipped_whole(tmp_path):
    with open_deployment(tmp_path / "rep", durability="never") as service:
        schedule = FaultSchedule([FaultRule("ship.tear", at=1)])
        schedule.install(service)
        object_id = register_pool(service)
        acked = [commit_one(service, object_id, serial) for serial in range(3)]
        service.ship()  # the first follower's datagram is torn mid-record
        assert any(f["point"] == "ship.tear" for f in schedule.fired)
        frontiers = sorted(f.applied_seq for f in service.followers)
        assert frontiers[0] < service.last_acked_seq  # the torn one lags
        service.ship()  # re-ships the torn record whole
        assert all(f.applied_seq == service.last_acked_seq for f in service.followers)
        assert_zero_acked_loss(service, acked)


def test_stalled_follower_routes_around_then_catches_up(tmp_path):
    with open_deployment(tmp_path / "rep", durability="never") as service:
        stalled = service.followers[0].name
        schedule = FaultSchedule([FaultRule("follower.stall", at=1, target=stalled, count=2)])
        schedule.install(service)
        object_id = register_pool(service)
        acked = [commit_one(service, object_id, serial) for serial in range(3)]
        service.ship()
        by_name = {f.name: f for f in service.followers}
        assert by_name[stalled].applied_seq == 0  # frozen
        healthy = next(f for f in service.followers if f.name != stalled)
        assert healthy.applied_seq == service.last_acked_seq
        # A fresh read routes around the stalled follower, never degrading.
        result = service.query(PROBE, consistency="fresh")
        assert set(acked) <= set(result.annotation_ids)
        assert service.replication_stats()["reads"]["degraded"] == 0
        # Once the stall clears, the pending buffer drains without loss.
        service.ship()
        service.ship()
        assert by_name[stalled].applied_seq == service.last_acked_seq
        assert_zero_acked_loss(service, acked)


def test_kill_after_append_write_is_indeterminate(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        schedule = FaultSchedule([FaultRule("primary.kill_after_append", at=3)])
        schedule.install(service)
        object_id = register_pool(service)
        acked = []
        indeterminate = None
        for serial in range(5):
            try:
                acked.append(commit_one(service, object_id, serial))
            except PrimaryCrashed:
                indeterminate = f"fault-{serial}"
                break
        assert indeterminate is not None
        assert not service.primary_alive()
        report = service.failover()
        assert report["term"] == 2
        assert_zero_acked_loss(service, acked)
        # The unacknowledged write is allowed to survive (it was durable) but
        # must be all-or-nothing: present and fully wired, or absent.
        result = service.query(PROBE, consistency="fresh")
        survivors = set(result.annotation_ids)
        assert survivors - set(acked) <= {indeterminate}
        assert service.check_integrity().ok


def test_heartbeat_monitor_detects_the_dead_primary(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        # Occurrence 1 is the pool registration; the first commit acks at 2
        # and the second dies in its ack window at 3.
        schedule = FaultSchedule([FaultRule("primary.kill_after_append", at=3)])
        schedule.install(service)
        object_id = register_pool(service)
        acked = [commit_one(service, object_id, 0)]
        with pytest.raises(PrimaryCrashed):
            commit_one(service, object_id, 1)
        # Drive the lease clock by hand (the monitor thread is off in
        # manual mode): enough missed ticks must trigger the failover.
        ticks = 0
        while not service.tick():
            ticks += 1
            assert ticks <= MANUAL.lease_ticks + 1
        assert service.term == 2
        assert_zero_acked_loss(service, acked)


def test_seeded_schedule_matrix_never_loses_acked_writes(tmp_path):
    """Sweep pseudo-random fault schedules; the invariants hold for all."""
    for seed in range(6):
        root = tmp_path / f"matrix-{seed}"
        service = open_deployment(root)
        schedule = FaultSchedule.random(
            seed=seed,
            targets=(None, "replica-00", "replica-01"),
            rules=3,
            horizon=8,
        )
        schedule.install(service)
        try:
            object_id = None
            acked = []
            serial = 0
            while serial < 12:
                try:
                    if object_id is None:
                        object_id = register_pool(service, f"fault_seq_t{service.term}")
                    acked.append(commit_one(service, object_id, serial))
                except (PrimaryCrashed, ServiceError, OSError):
                    # Crash in the ack window, a failed fsync (raw OSError,
                    # which also poisons the WAL), or the poisoned WAL
                    # refusing the next write: promote and resume on a
                    # freshly registered object (replayed state is
                    # catalogue-only, so post-failover marks need one).
                    service.failover()
                    object_id = None
                serial += 1
            for _ in range(3):  # drain through any scheduled tears/stalls
                service.ship()
            assert_zero_acked_loss(service, acked)
            assert service.check_integrity().ok
        finally:
            service.close()
