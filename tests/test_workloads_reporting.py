"""Tests for the study-report generator and the CLI report command."""

import pytest

from repro.workloads import study_report
from repro.workloads.scenarios import build_influenza_instance


def test_report_contains_sections():
    report = study_report(build_influenza_instance())
    for heading in (
        "# influenza-study",
        "## Data inventory",
        "## Annotations",
        "## Index economy",
        "## Ontologies",
        "## Integrity",
    ):
        assert heading in report


def test_report_custom_title():
    report = study_report(build_influenza_instance(), title="My Study")
    assert report.startswith("# My Study")


def test_report_counts_match():
    g = build_influenza_instance()
    report = study_report(g)
    assert f"annotations committed: {g.annotation_count}" in report


def test_cli_report(tmp_path, capsys):
    from repro.cli import main

    path = str(tmp_path / "flu.json")
    main(["build", "influenza", path])
    capsys.readouterr()
    assert main(["report", path]) == 0
    out = capsys.readouterr().out
    assert "study report" in out
    assert "Integrity" in out
