"""Tests for the data type registry."""

import pytest

from repro.datatypes.base import DataType
from repro.datatypes.registry import DataTypeRegistry
from repro.datatypes.sequence import DnaSequence, ProteinSequence
from repro.datatypes.image import Image
from repro.errors import UnknownObjectError


def test_register_and_get():
    registry = DataTypeRegistry()
    seq = DnaSequence("s", "ACGT")
    registry.register(seq)
    assert registry.get("s") is seq
    assert "s" in registry


def test_register_duplicate():
    registry = DataTypeRegistry()
    registry.register(DnaSequence("s", "ACGT"))
    with pytest.raises(UnknownObjectError):
        registry.register(DnaSequence("s", "ACGT"))


def test_get_unknown():
    registry = DataTypeRegistry()
    with pytest.raises(UnknownObjectError):
        registry.get("missing")


def test_of_type():
    registry = DataTypeRegistry()
    registry.register(DnaSequence("a", "ACGT"))
    registry.register(DnaSequence("b", "ACGT"))
    registry.register(Image("img", dimension=2))
    assert len(registry.of_type(DataType.DNA)) == 2
    assert len(registry.of_type(DataType.IMAGE)) == 1


def test_types_present():
    registry = DataTypeRegistry()
    registry.register(DnaSequence("a", "ACGT"))
    registry.register(ProteinSequence("p", "ACDE"))
    present = registry.types_present()
    assert DataType.DNA in present
    assert DataType.PROTEIN in present
    assert DataType.IMAGE not in present


def test_count_by_type():
    registry = DataTypeRegistry()
    registry.register(DnaSequence("a", "ACGT"))
    registry.register(DnaSequence("b", "ACGT"))
    counts = registry.count_by_type()
    assert counts[DataType.DNA] == 2


def test_object_ids():
    registry = DataTypeRegistry()
    registry.register(DnaSequence("a", "ACGT"))
    registry.register(Image("img", dimension=2))
    assert set(registry.object_ids()) == {"a", "img"}


def test_len():
    registry = DataTypeRegistry()
    registry.register(DnaSequence("a", "ACGT"))
    assert len(registry) == 1
