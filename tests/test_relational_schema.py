"""Tests for relational schemas and column validation."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Column, ColumnType, TableSchema, schema


def test_column_type_validate_integer():
    assert ColumnType.INTEGER.validate(5)
    assert not ColumnType.INTEGER.validate(5.0)
    assert not ColumnType.INTEGER.validate(True)
    assert ColumnType.INTEGER.validate(None)


def test_column_type_validate_float_accepts_int():
    assert ColumnType.FLOAT.validate(5)
    assert ColumnType.FLOAT.validate(5.5)
    assert not ColumnType.FLOAT.validate("x")


def test_column_type_coerce_float():
    assert ColumnType.FLOAT.coerce(3) == 3.0
    assert isinstance(ColumnType.FLOAT.coerce(3), float)


def test_column_type_coerce_blob_bytearray():
    result = ColumnType.BLOB.coerce(bytearray(b"abc"))
    assert result == b"abc"
    assert isinstance(result, bytes)


def test_column_type_boolean_not_integer():
    assert ColumnType.BOOLEAN.validate(True)
    assert not ColumnType.BOOLEAN.validate(1)


def test_column_type_json_nested():
    assert ColumnType.JSON.validate({"a": [1, 2, {"b": "c"}]})
    assert not ColumnType.JSON.validate({1: "non-str-key"})
    assert not ColumnType.JSON.validate({"f": object()})


def test_column_rejects_empty_name():
    with pytest.raises(SchemaError):
        Column("", ColumnType.TEXT)


def test_column_rejects_space_in_name():
    with pytest.raises(SchemaError):
        Column("bad name", ColumnType.TEXT)


def test_column_rejects_bad_default():
    with pytest.raises(SchemaError):
        Column("x", ColumnType.INTEGER, default="not-int")


def test_column_validate_value_not_nullable():
    column = Column("x", ColumnType.INTEGER, nullable=False)
    with pytest.raises(SchemaError):
        column.validate_value(None)


def test_column_validate_value_type_mismatch():
    column = Column("x", ColumnType.INTEGER)
    with pytest.raises(SchemaError):
        column.validate_value("text")


def test_table_schema_requires_columns():
    with pytest.raises(SchemaError):
        TableSchema("t", [])


def test_table_schema_duplicate_columns():
    with pytest.raises(SchemaError):
        TableSchema("t", [Column("x", ColumnType.INTEGER), Column("x", ColumnType.TEXT)])


def test_table_schema_bad_primary_key():
    with pytest.raises(SchemaError):
        TableSchema("t", [Column("x", ColumnType.INTEGER)], primary_key="missing")


def test_table_schema_bad_unique_column():
    with pytest.raises(SchemaError):
        TableSchema("t", [Column("x", ColumnType.INTEGER)], unique=[("missing",)])


def test_table_schema_column_names():
    s = schema("t", [("id", ColumnType.INTEGER), ("name", ColumnType.TEXT)], "id")
    assert s.column_names == ("id", "name")


def test_table_schema_column_lookup():
    s = schema("t", [("id", ColumnType.INTEGER)], "id")
    assert s.column("id").type is ColumnType.INTEGER
    with pytest.raises(SchemaError):
        s.column("missing")


def test_validate_row_fills_defaults():
    s = TableSchema(
        "t",
        [Column("id", ColumnType.INTEGER), Column("flag", ColumnType.BOOLEAN, default=False)],
        primary_key="id",
    )
    row = s.validate_row({"id": 1})
    assert row == {"id": 1, "flag": False}


def test_validate_row_unknown_column():
    s = schema("t", [("id", ColumnType.INTEGER)], "id")
    with pytest.raises(SchemaError):
        s.validate_row({"id": 1, "ghost": 2})


def test_validate_row_primary_key_null():
    s = schema("t", [("id", ColumnType.INTEGER), ("n", ColumnType.TEXT)], "id")
    with pytest.raises(SchemaError):
        s.validate_row({"n": "x"})


def test_unique_keys_includes_primary():
    s = TableSchema(
        "t",
        [Column("id", ColumnType.INTEGER), Column("email", ColumnType.TEXT)],
        primary_key="id",
        unique=[("email",)],
    )
    assert ("id",) in s.unique_keys()
    assert ("email",) in s.unique_keys()


def test_schema_roundtrip_to_from_dict():
    s = TableSchema(
        "t",
        [Column("id", ColumnType.INTEGER, nullable=False), Column("name", ColumnType.TEXT)],
        primary_key="id",
        unique=[("name",)],
    )
    restored = TableSchema.from_dict(s.to_dict())
    assert restored.name == "t"
    assert restored.column_names == ("id", "name")
    assert restored.primary_key == "id"
    assert restored.unique == (("name",),)
