"""Additional tests for a-graph path algorithms and edge cases."""

import pytest

from repro.agraph.agraph import AGraph
from repro.errors import AGraphError, UnknownNodeError


def linear_agraph(length):
    """A content-referent chain c0 - r0 - c1 - r1 - ... of the given length."""
    g = AGraph()
    prev_content = None
    for index in range(length):
        content = f"c{index}"
        g.add_content(content)
        if prev_content is not None:
            referent = f"r{index}"
            g.add_referent(referent)
            g.link_annotation(prev_content, referent)
            g.link_annotation(content, referent)
        prev_content = content
    return g


def test_path_length_in_chain():
    g = linear_agraph(4)
    path = g.path("c0", "c3")
    assert path[0] == "c0" and path[-1] == "c3"
    # c0 - r1 - c1 - r2 - c2 - r3 - c3
    assert len(path) == 7


def test_weighted_path_prefers_low_cost():
    g = AGraph()
    g.add_content("c1")
    g.add_referent("r_direct")
    g.add_referent("r_a")
    g.add_referent("r_b")
    g.add_content("c2")
    # direct heavy edge vs two light edges
    g.link_annotation("c1", "r_direct", weight=10)
    g.link_annotation("c2", "r_direct", weight=10)
    g.link_annotation("c1", "r_a", weight=1)
    g.link_referents("r_a", "r_b", weight=1)
    g.link_annotation("c2", "r_b", weight=1)
    result = g.weighted_path("c1", "c2")
    assert result is not None
    _, cost = result
    assert cost == 3  # the light three-edge route


def test_all_paths_respects_max_length():
    g = linear_agraph(5)
    paths = g.all_paths("c0", "c4", max_length=4)
    assert paths == []  # the only path is longer than 4 edges
    paths_long = g.all_paths("c0", "c4", max_length=20)
    assert any(p[0] == "c0" and p[-1] == "c4" for p in paths_long)


def test_path_label_filter_blocks_ontology_hops():
    g = AGraph()
    g.add_content("c1")
    g.add_referent("r1")
    g.add_ontology_node("t1")
    g.add_content("c2")
    g.link_annotation("c1", "r1")
    g.link_ontology("r1", "t1")
    g.link_ontology("c2", "t1")
    # c1 reaches c2 only through the ontology term
    assert g.path("c1", "c2") is not None
    assert g.path("c1", "c2", labels=["annotates"]) is None


def test_weighted_path_unknown_node():
    g = linear_agraph(2)
    with pytest.raises(UnknownNodeError):
        g.weighted_path("c0", "ghost")


def test_connect_hub_not_present():
    g = linear_agraph(3)
    # a hub that exists but is disconnected from a terminal still returns a result
    subgraph = g.connect("c0", "c2")
    assert subgraph.is_connected


def test_remove_node_then_path_none():
    g = linear_agraph(3)
    # remove the middle content; the chain should break
    g.graph.remove_node("c1")
    assert g.path("c0", "c2") is None
