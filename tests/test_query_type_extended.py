"""Tests for type-extended connection subgraphs."""

import pytest

from repro import Graphitti
from repro.datatypes import DnaSequence, Image
from repro.ontology.builtin import build_protein_ontology
from repro.query.builder import QueryBuilder


def test_type_extension_records_referents(neuroscience):
    result = neuroscience.query(QueryBuilder.graph().refers("Deep Cerebellar nuclei").build())
    assert result.subgraphs
    subgraph = result.subgraphs[0]
    assert "image" in subgraph.types_present()
    assert subgraph.type_extensions["image"]["referents"]


def test_type_extension_multiple_types(neuroscience):
    result = neuroscience.query(QueryBuilder.graph().refers("alpha-synuclein").build())
    subgraph = result.subgraphs[0]
    types = set(subgraph.types_present())
    assert {"dna_sequence", "image", "phylogenetic_tree"} <= types


def test_intersection_computed_for_overlapping_referents():
    g = Graphitti()
    g.register_ontology(build_protein_ontology())
    g.register(DnaSequence("seq", "ACGT" * 100, domain="chr1"))
    # two annotations mark overlapping (but distinct) intervals on the same seq
    g.new_annotation("a1", keywords=["x"]).mark_sequence("seq", 10, 50).commit()
    g.new_annotation("a2", keywords=["x"]).mark_sequence("seq", 30, 70).commit()
    result = g.query(QueryBuilder.graph().contains("x").build())
    # a1 and a2 are connected only if they share a node; here they don't share a
    # referent, so force membership by querying all and checking each subgraph
    found_intersection = False
    for subgraph in result.subgraphs:
        ext = subgraph.type_extensions.get("dna_sequence")
        if ext and ext["intersections"]:
            found_intersection = True
    # a1 and a2 are in separate components (no shared node), so no intersection
    # is recorded across them; the feature is exercised within a component below.
    assert found_intersection is False


def test_intersection_within_one_annotation():
    g = Graphitti()
    g.register(DnaSequence("seq", "ACGT" * 100, domain="chr1"))
    # one annotation with two overlapping marks on the same sequence
    (
        g.new_annotation("a1", keywords=["x"])
        .mark_sequence("seq", 10, 50)
        .mark_sequence("seq", 30, 70)
        .commit()
    )
    result = g.query(QueryBuilder.graph().contains("x").build())
    subgraph = result.subgraphs[0]
    ext = subgraph.type_extensions["dna_sequence"]
    assert len(ext["intersections"]) == 1
    assert ext["intersections"][0]["object"] == "seq"


def test_no_intersection_for_disjoint():
    g = Graphitti()
    g.register(DnaSequence("seq", "ACGT" * 100, domain="chr1"))
    (
        g.new_annotation("a1", keywords=["x"])
        .mark_sequence("seq", 10, 20)
        .mark_sequence("seq", 50, 70)
        .commit()
    )
    result = g.query(QueryBuilder.graph().contains("x").build())
    ext = result.subgraphs[0].type_extensions["dna_sequence"]
    assert ext["intersections"] == []
