"""Tests for the dense annotation-id interner and bitset candidate sets."""

from repro.query.idspace import AnnotationIdSpace


def test_intern_assigns_dense_slots():
    space = AnnotationIdSpace()
    assert space.intern("a") == 0
    assert space.intern("b") == 1
    assert space.intern("a") == 0  # idempotent
    assert len(space) == 2
    assert "a" in space and "c" not in space
    assert space.slot("b") == 1
    assert space.id_at(1) == "b"
    assert space.id_at(99) is None


def test_release_recycles_slots():
    space = AnnotationIdSpace()
    for name in "abc":
        space.intern(name)
    assert space.release("b") is True
    assert space.release("b") is False
    assert space.slot("b") is None
    assert space.id_at(1) is None
    # The freed slot is reused before new slots are appended.
    assert space.intern("d") == 1
    assert space.intern("e") == 3


def test_live_mask_tracks_membership():
    space = AnnotationIdSpace()
    for name in "abcd":
        space.intern(name)
    assert space.live_mask == 0b1111
    space.release("c")
    assert space.live_mask == 0b1011
    assert space.ids(space.live_mask) == ["a", "b", "d"]


def test_to_bits_and_back():
    space = AnnotationIdSpace()
    for name in ("x", "y", "z"):
        space.intern(name)
    bits = space.to_bits(["z", "x", "unknown"])
    assert AnnotationIdSpace.count(bits) == 2
    assert space.ids(bits) == ["x", "z"]  # slot order
    assert space.to_bits([]) == 0
    assert space.ids(0) == []


def test_bitset_algebra_matches_set_algebra():
    space = AnnotationIdSpace()
    universe = [f"anno-{i}" for i in range(200)]
    for name in universe:
        space.intern(name)
    evens = {name for i, name in enumerate(universe) if i % 2 == 0}
    thirds = {name for i, name in enumerate(universe) if i % 3 == 0}
    even_bits = space.to_bits(evens)
    third_bits = space.to_bits(thirds)
    assert set(space.ids(even_bits & third_bits)) == evens & thirds
    assert set(space.ids(even_bits | third_bits)) == evens | thirds
    assert set(space.ids(space.live_mask & ~even_bits)) == set(universe) - evens
    assert (even_bits & third_bits).bit_count() == len(evens & thirds)


def test_released_slot_bits_are_skipped():
    space = AnnotationIdSpace()
    for name in "abc":
        space.intern(name)
    bits = space.to_bits(["a", "b", "c"])
    space.release("b")
    # A stale bitset mentioning the freed slot yields only live ids.
    assert space.ids(bits) == ["a", "c"]
