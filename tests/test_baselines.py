"""Tests for the baseline implementations (used by benchmarks)."""

import random

import pytest

from repro.baselines.linear_scan import (
    LinearIntervalIndex,
    LinearRegionIndex,
    linear_interval_overlap,
    linear_region_overlap,
)
from repro.baselines.naive_graph import NaiveGraph, networkx_shortest_path
from repro.baselines.relational_annotation import RelationalAnnotationStore
from repro.spatial.interval import Interval
from repro.spatial.interval_tree import IntervalTree
from repro.spatial.rect import Rect
from repro.spatial.rtree import RTree


def test_linear_interval_overlap_matches_tree():
    rng = random.Random(0)
    intervals = [Interval(x := rng.randint(0, 100), x + rng.randint(1, 20)) for _ in range(200)]
    tree = IntervalTree.from_intervals(intervals)
    query = Interval(30, 60)
    expected = sorted((i.start, i.end) for i in linear_interval_overlap(intervals, query))
    actual = sorted((i.start, i.end) for i in tree.search_overlap(query))
    assert expected == actual


def test_linear_interval_index_api():
    index = LinearIntervalIndex()
    index.insert_many([Interval(1, 5), Interval(10, 12)])
    assert len(index.search_overlap(Interval(2, 3))) == 1
    assert index.count_overlap(Interval(0, 100)) == 2
    assert len(index.stab(11)) == 1


def test_linear_region_overlap_matches_rtree():
    rng = random.Random(1)
    rects = [Rect((x := rng.randint(0, 100), y := rng.randint(0, 100)), (x + 5, y + 5)) for _ in range(150)]
    tree = RTree.from_rects(rects)
    query = Rect((20, 20), (60, 60))
    expected = len(linear_region_overlap(rects, query))
    actual = len(tree.search_overlap(query))
    assert expected == actual


def test_linear_region_index_api():
    index = LinearRegionIndex()
    index.insert_many([Rect((0, 0), (2, 2)), Rect((10, 10), (12, 12))])
    assert index.count_overlap(Rect((0, 0), (100, 100))) == 2


def test_naive_graph_path():
    g = NaiveGraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    assert g.path("a", "c") == ["a", "b", "c"]
    assert g.connected("a", "c")


def test_naive_graph_no_path():
    g = NaiveGraph()
    g.add_node("a")
    g.add_node("b")
    assert g.path("a", "b") is None


def test_naive_graph_matches_networkx():
    edges = [("a", "b"), ("b", "c"), ("c", "d")]
    g = NaiveGraph()
    for source, target in edges:
        g.add_edge(source, target)
    naive = g.path("a", "d")
    nx_path = networkx_shortest_path(edges, "a", "d")
    assert len(naive) == len(nx_path)


def test_relational_annotation_store_keyword():
    store = RelationalAnnotationStore()
    store.add_referent_row("a1", "protease cleavage", "seq1", "dna", "chr1", 10, 40, "protein:protease")
    store.add_referent_row("a2", "kinase", "seq2", "dna", "chr1", 50, 70, None)
    assert store.search_keyword("protease") == ["a1"]
    assert store.search_keyword("kinase") == ["a2"]


def test_relational_annotation_store_overlap():
    store = RelationalAnnotationStore()
    store.add_referent_row("a1", "x", "seq1", "dna", "chr1", 10, 40)
    store.add_referent_row("a2", "y", "seq2", "dna", "chr1", 100, 140)
    assert store.search_overlap("chr1", 20, 30) == ["a1"]
    assert store.search_overlap("chr1", 110, 120) == ["a2"]


def test_relational_annotation_store_ontology():
    store = RelationalAnnotationStore()
    store.add_referent_row("a1", "x", "seq1", "dna", "chr1", 10, 40, "protein:protease")
    assert store.search_ontology("protein:protease") == ["a1"]


def test_relational_annotation_store_mixed():
    store = RelationalAnnotationStore(indexed=True)
    store.add_referent_row("a1", "protease", "seq1", "dna", "chr1", 10, 40, "protein:protease")
    store.add_referent_row("a1", "protease", "seq1", "dna", "chr1", 200, 240, None)
    store.add_referent_row("a2", "protease", "seq2", "dna", "chr1", 10, 40, None)
    result = store.mixed_query("protease", "chr1", 20, 30, term="protein:protease")
    assert result == ["a1"]


def test_relational_store_row_count():
    store = RelationalAnnotationStore()
    store.add_referent_row("a1", "x", "s", "dna", "c", 1, 2)
    store.add_referent_row("a1", "x", "s", "dna", "c", 3, 4)
    assert store.row_count == 2
