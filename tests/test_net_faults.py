"""Deterministic network fault matrix: zero acked-write loss, oracle reads.

Every transport fault the RPC layer claims to survive is scheduled here via
:class:`FaultSchedule` (occurrence-counted, no wall clock, no randomness at
evaluation time) and asserted against the two contracts that matter:

* an acknowledged write is never lost, and a retried mutation never
  double-applies — even when the fault fires *after* the worker executed
  the op (``net.slow``, the lost-ack case);
* reads remain oracle-equivalent once the fault clears, and a fault burst
  longer than the retry budget surfaces as a *typed* error, not a hang or
  a silent wrong answer.
"""

import pytest

from repro.core.manager import Graphitti
from repro.errors import ServiceError, ShardTimeoutError, ShardUnavailableError
from repro.net import NetworkShardedGraphittiService, RetryPolicy
from repro.replica.faults import NET_FAULT_POINTS, FaultRule, FaultSchedule
from repro.service import GraphittiService

from test_shard_service import PROBES, assert_bit_identical, populate

FAST_RETRY = RetryPolicy(attempts=4, base_backoff_s=0.001, max_backoff_s=0.01)


def open_net(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("worker_mode", "thread")
    kwargs.setdefault("start_monitor", False)
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("op_timeout_s", 10.0)
    return NetworkShardedGraphittiService.open(None, **kwargs)


def install(service, *rules):
    schedule = FaultSchedule(rules=list(rules))
    schedule.install_network(service)
    return schedule


def test_net_points_are_schedulable():
    for point in NET_FAULT_POINTS:
        FaultRule(point=point, at=1)
    with pytest.raises(ServiceError):
        FaultRule(point="net.nonsense", at=1)


def test_torn_frame_never_executes_and_retry_applies_once():
    service = open_net()
    populate(service, count=8)
    before = service.annotation_count
    schedule = install(service, FaultRule(point="net.tear", at=1, target="shard-0"))
    result = service.query(PROBES[0])  # first shard-0 exchange is torn
    assert schedule.fired and schedule.fired[0]["point"] == "net.tear"
    assert result.count == service.query(PROBES[0]).count
    assert service.annotation_count == before
    # The worker counted the torn frame and dropped the connection.
    torn = sum(
        worker.obs.registry.counter("net.torn_frames").value
        for worker in service._worker_services
    )
    assert torn == 1
    service.close()


def test_refused_connection_retries_through():
    service = open_net()
    populate(service, count=8)
    service._shards[0].close_pool()  # force the next exchange to dial
    schedule = install(service, FaultRule(point="net.refused", at=1, target="shard-0"))
    assert service.query(PROBES[0]).count > 0
    assert schedule.fired[0]["point"] == "net.refused"
    assert service.obs.registry.counter("rpc.retries").value >= 1
    service.close()


def test_blackholed_request_times_out_then_recovers():
    service = open_net()
    populate(service, count=8)
    schedule = install(service, FaultRule(point="net.blackhole", at=1, target="shard-1"))
    assert service.query(PROBES[0]).count > 0
    assert schedule.fired[0]["point"] == "net.blackhole"
    assert service.obs.registry.counter("rpc.timeouts").value >= 1
    service.close()


def test_slow_loris_lost_ack_dedups_via_idempotency_key():
    # net.slow = the worker EXECUTED the mutation but the ack missed the
    # deadline.  The retried exchange carries the same idempotency key; the
    # worker must replay the recorded ack, not apply twice.
    service = open_net()
    populate(service, count=8)
    before = service.annotation_count
    install(service, FaultRule(point="net.slow", at=1, target="shard-0"))
    annotation = (
        service.new_annotation(title="lost-ack", keywords=["common"])
        .mark_sequence("obj0", 1, 20)
        .commit()
    )
    assert service.annotation_count == before + 1  # exactly one apply
    assert service.annotation(annotation.annotation_id).annotation_id == annotation.annotation_id
    replays = sum(
        worker.obs.registry.counter("rpc.idempotent_replays").value
        for worker in service._worker_services
    )
    assert replays == 1
    service.close()


def test_fault_burst_beyond_retry_budget_is_a_typed_error():
    service = open_net()
    populate(service, count=8)
    # Burst as long as the whole retry budget: the call must fail typed.
    install(
        service,
        FaultRule(point="net.tear", at=1, target="shard-0", count=FAST_RETRY.attempts),
    )
    with pytest.raises(ShardUnavailableError) as excinfo:
        service.query(PROBES[0])
    assert 0 in excinfo.value.shards
    # The burst is spent; the next query sails through unchanged.
    assert service.query(PROBES[0]).count > 0
    service.close()


def test_timeout_burst_maps_to_shard_timeout():
    service = open_net()
    populate(service, count=8)
    install(
        service,
        FaultRule(point="net.blackhole", at=1, target="shard-1", count=FAST_RETRY.attempts),
    )
    with pytest.raises(ShardTimeoutError):
        service.query(PROBES[0])
    service.close()


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_seeded_fault_matrix_zero_acked_loss_and_oracle_reads(seed):
    # A seed-derived schedule sweeps tears, black holes, refused dials and
    # slow-loris acks across both shards.  Burst lengths (<= 3) stay inside
    # the retry budget (4), so every op must ultimately ack — and every
    # acked write must survive with reads bit-identical to an unfaulted
    # oracle.
    service = open_net()
    oracle = GraphittiService(manager=Graphitti(f"fault-oracle-{seed}"))
    schedule = FaultSchedule.random(
        seed,
        points=NET_FAULT_POINTS,
        targets=(None, "shard-0", "shard-1"),
        rules=4,
        horizon=30,
    )
    schedule.install_network(service)
    populate(service)
    populate(oracle)
    for index in (3, 10):
        service.delete_annotation(f"x-{index:03d}")
        oracle.delete_annotation(f"x-{index:03d}")
    assert_bit_identical(service, oracle)
    assert service.annotation_count == oracle.annotation_count
    assert not service.check_integrity().errors
    service.close()
    oracle.close()
