"""The WAL-lifecycle checker: seeded holes fire, the clean twin passes."""

from pathlib import Path

import pytest

from repro.analysis.walcheck import (
    WalCheckConfig,
    check_wal_lifecycle,
    classify_directory,
    discover_wal_ops,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def test_bad_fixture_reports_every_missing_stage():
    findings = check_wal_lifecycle(classify_directory(FIXTURES / "wal_bad"))
    assert all(f.rule == "wal-lifecycle" for f in findings)
    erase = [f for f in findings if "'erase'" in f.message]
    stages = {"emit", "replay", "routing", "dispatch", "crash"}
    hit = {s for s in stages for f in erase if s in f.message}
    assert hit == stages, f"missing stages only partially reported: {hit}"
    # The registered-but-complete op stays silent.
    assert not any("'put'" in f.message for f in findings)
    # The unknown replay branch is flagged in the reverse direction.
    assert any("'rename'" in f.message and "not in WAL_OPS" in f.message for f in findings)


def test_good_fixture_is_clean():
    assert check_wal_lifecycle(classify_directory(FIXTURES / "wal_good")) == []


def test_discover_wal_ops_reads_the_tuple():
    ops, line = discover_wal_ops(FIXTURES / "wal_good" / "wal.py")
    assert ops == ["put", "erase"]
    assert line > 0


def test_unconfigured_stage_is_not_applicable():
    # A config with no net files must not report net holes (fixture trees
    # may model a subset of the lifecycle).
    config = WalCheckConfig(
        wal_path=FIXTURES / "wal_bad" / "wal.py",
        emit_paths=[FIXTURES / "wal_bad" / "emit_service.py"],
    )
    findings = check_wal_lifecycle(config)
    assert all("emit" in f.message for f in findings)


def test_classify_requires_a_wal_module(tmp_path):
    (tmp_path / "service.py").write_text("X = 1\n")
    with pytest.raises(FileNotFoundError):
        classify_directory(tmp_path)
