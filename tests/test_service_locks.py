"""Tests for the serving layer's readers-writer lock."""

import threading
import time

from repro.service.locks import ReadWriteLock


def test_readers_share():
    lock = ReadWriteLock()
    entered = []
    barrier = threading.Barrier(3, timeout=5)

    def reader():
        with lock.read_locked():
            entered.append(threading.current_thread().name)
            barrier.wait()  # all three readers inside simultaneously

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=5)
    assert len(entered) == 3


def test_writer_excludes_readers():
    lock = ReadWriteLock()
    events = []

    def writer():
        with lock.write_locked():
            events.append("w-in")
            time.sleep(0.05)
            events.append("w-out")

    lock.acquire_write()
    reader_done = threading.Event()

    def reader():
        with lock.read_locked():
            events.append("r")
        reader_done.set()

    thread = threading.Thread(target=reader)
    thread.start()
    time.sleep(0.02)
    assert not reader_done.is_set()  # blocked behind the held write lock
    events.append("release")
    lock.release_write()
    assert reader_done.wait(timeout=5)
    thread.join(timeout=5)
    assert events == ["release", "r"]
    # writer() exercised separately for completeness
    writer()
    assert events[-2:] == ["w-in", "w-out"]


def test_writers_serialize():
    lock = ReadWriteLock()
    active = []
    overlaps = []

    def writer(name):
        with lock.write_locked():
            active.append(name)
            if len(active) > 1:
                overlaps.append(tuple(active))
            time.sleep(0.01)
            active.remove(name)

    threads = [threading.Thread(target=writer, args=(index,)) for index in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=5)
    assert overlaps == []


def test_writer_preference_blocks_new_readers():
    lock = ReadWriteLock()
    order = []
    lock.acquire_read()

    wrote = threading.Event()

    def writer():
        lock.acquire_write()
        order.append("writer")
        wrote.set()
        lock.release_write()

    def late_reader():
        wrote.wait(timeout=5)  # give the writer priority deterministically
        with lock.read_locked():
            order.append("late-reader")

    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    time.sleep(0.02)  # writer now waiting on the held read lock
    assert lock.snapshot()["writers_waiting"] == 1
    reader_thread = threading.Thread(target=late_reader)
    reader_thread.start()
    lock.release_read()
    writer_thread.join(timeout=5)
    reader_thread.join(timeout=5)
    assert order == ["writer", "late-reader"]


def test_snapshot_counts():
    lock = ReadWriteLock()
    assert lock.snapshot() == {
        "active_readers": 0,
        "writer_active": False,
        "writers_waiting": 0,
    }
    lock.acquire_read()
    assert lock.snapshot()["active_readers"] == 1
    lock.release_read()
    lock.acquire_write()
    assert lock.snapshot()["writer_active"] is True
    lock.release_write()
