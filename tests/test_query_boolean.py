"""Tests for the NOT / ANY (OR) query extensions."""

import pytest

from repro.query.ast import KeywordConstraint, NotConstraint, OntologyConstraint, OrConstraint
from repro.query.builder import QueryBuilder
from repro.query.parser import parse_query


def test_builder_exclude(small_graphitti):
    # all annotations NOT containing 'kinase' -> only a1
    query = QueryBuilder.contents().exclude(KeywordConstraint("kinase")).build()
    result = small_graphitti.query(query)
    assert result.annotation_ids == ["a1"]


def test_builder_any_of(small_graphitti):
    query = (
        QueryBuilder.contents()
        .any_of(KeywordConstraint("protease"), KeywordConstraint("kinase"))
        .build()
    )
    result = small_graphitti.query(query)
    assert set(result.annotation_ids) == {"a1", "a2"}


def test_any_of_requires_two():
    with pytest.raises(ValueError):
        QueryBuilder.contents().any_of(KeywordConstraint("x"))


def test_parse_not():
    q = parse_query('SELECT contents WHERE { NOT { CONTENT CONTAINS "kinase" } }')
    assert isinstance(q.constraints[0], NotConstraint)
    assert isinstance(q.constraints[0].inner, KeywordConstraint)


def test_parse_any():
    q = parse_query(
        'SELECT contents WHERE { ANY { CONTENT CONTAINS "protease" CONTENT CONTAINS "kinase" } }'
    )
    assert isinstance(q.constraints[0], OrConstraint)
    assert len(q.constraints[0].parts) == 2


def test_parse_any_too_few():
    from repro.errors import QuerySyntaxError

    with pytest.raises(QuerySyntaxError):
        parse_query('SELECT contents WHERE { ANY { CONTENT CONTAINS "x" } }')


def test_not_execution(small_graphitti):
    q = parse_query('SELECT contents WHERE { NOT { CONTENT CONTAINS "kinase" } }')
    result = small_graphitti.query(q)
    assert "a2" not in result.annotation_ids
    assert "a1" in result.annotation_ids


def test_any_execution(small_graphitti):
    q = parse_query(
        'SELECT contents WHERE { ANY { REFERENT REFERS "protein:protease" CONTENT CONTAINS "kinase" } }'
    )
    result = small_graphitti.query(q)
    assert set(result.annotation_ids) == {"a1", "a2"}


def test_combined_and_not(small_graphitti):
    # protease AND NOT kinase -> a1 only
    q = parse_query(
        'SELECT contents WHERE { CONTENT CONTAINS "protease" NOT { CONTENT CONTAINS "kinase" } }'
    )
    result = small_graphitti.query(q)
    assert result.annotation_ids == ["a1"]


def test_not_ordering_last(small_graphitti):
    from repro.query.planner import QueryPlanner

    query = QueryBuilder.contents().exclude(KeywordConstraint("kinase")).contains("protease").build()
    plan = QueryPlanner().plan(query)
    # the NOT constraint should be scheduled after the keyword constraint
    kinds = [type(c).__name__ for c in plan.ordered_constraints]
    assert kinds.index("NotConstraint") > kinds.index("KeywordConstraint")
