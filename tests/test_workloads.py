"""Tests for the synthetic workload generators and scenario builders."""

import random

import pytest

from repro import Graphitti
from repro.errors import WorkloadError
from repro.workloads.generators import (
    WorkloadConfig,
    generate_alignment,
    generate_annotation_workload,
    generate_interaction_graph,
    generate_ontology_dag,
    generate_phylogenetic_tree,
    generate_sequence,
    random_dna,
)
from repro.workloads.scenarios import build_influenza_instance, build_neuroscience_instance


def test_random_dna_deterministic():
    assert random_dna(20, random.Random(5)) == random_dna(20, random.Random(5))


def test_random_dna_length():
    assert len(random_dna(50, random.Random(0))) == 50


def test_generate_sequence_dna_and_protein():
    dna = generate_sequence("s", 100, random.Random(0))
    protein = generate_sequence("p", 50, random.Random(0), protein=True)
    assert len(dna) == 100
    assert protein.sequence_type.value == "protein"


def test_generate_alignment_equal_width():
    msa = generate_alignment("a", rows=5, width=60, rng=random.Random(0))
    assert msa.depth == 5
    assert msa.width == 60
    assert len(msa.conserved_columns()) >= 0


def test_generate_phylogenetic_tree():
    tree = generate_phylogenetic_tree("t", ["A", "B", "C", "D"], random.Random(0))
    assert tree.leaf_names == frozenset({"A", "B", "C", "D"})


def test_generate_tree_requires_taxa():
    with pytest.raises(WorkloadError):
        generate_phylogenetic_tree("t", [], random.Random(0))


def test_generate_interaction_graph():
    graph = generate_interaction_graph("g", node_count=10, edge_probability=0.3, rng=random.Random(0))
    assert graph.node_count == 10
    assert graph.edge_count >= 0


def test_generate_ontology_dag():
    dag = generate_ontology_dag("T", depth=3, branching=2, instances_per_leaf=2, rng=random.Random(0))
    assert dag.term_count > 0
    assert len(dag.instances()) > 0
    # every instance is under the root
    from repro.ontology.operations import OntologyOperations

    ops = OntologyOperations(dag)
    assert len(ops.ci("T:0")) == len(dag.instances())


def test_generate_ontology_dag_invalid():
    with pytest.raises(WorkloadError):
        generate_ontology_dag("T", depth=0, branching=1, instances_per_leaf=1, rng=random.Random(0))


def test_generate_annotation_workload_deterministic():
    g1 = Graphitti("w1")
    g2 = Graphitti("w2")
    config = WorkloadConfig(seed=99, sequence_count=4, annotation_count=20, image_count=2)
    s1 = generate_annotation_workload(g1, config)
    s2 = generate_annotation_workload(g2, config)
    assert s1["annotation_ids"] == s2["annotation_ids"]
    assert g1.statistics()["referents"] == g2.statistics()["referents"]


def test_workload_shared_domain_single_tree():
    g = Graphitti("w")
    config = WorkloadConfig(seed=1, sequence_count=10, annotation_count=10, image_count=0, shared_domain=True)
    generate_annotation_workload(g, config)
    # all sequences share one coordinate domain -> one interval tree
    assert g.statistics()["interval_trees"] == 1


def test_workload_per_sequence_trees():
    g = Graphitti("w")
    config = WorkloadConfig(seed=1, sequence_count=10, annotation_count=30, image_count=0, shared_domain=False)
    generate_annotation_workload(g, config)
    # per-sequence domains -> up to 10 trees
    assert g.statistics()["interval_trees"] > 1


def test_build_influenza_instance():
    g = build_influenza_instance()
    stats = g.statistics()
    assert stats["annotations"] == 4
    assert stats["data_objects"] == 8
    # the whole study forms one connected component
    assert len(g.agraph.connected_components()) == 1


def test_influenza_indirect_relatedness():
    g = build_influenza_instance()
    # flu-a1 and flu-a2 share the HA_chicken[300,360] referent
    assert "flu-a2" in g.related_annotations("flu-a1")


def test_build_neuroscience_instance():
    g = build_neuroscience_instance()
    stats = g.statistics()
    assert stats["annotations"] == 3
    assert stats["rtrees"] == 1  # shared atlas space


def test_neuroscience_path_through_ontology():
    g = build_neuroscience_instance()
    path = g.path_between_annotations("neuro-a1", "neuro-a2")
    assert path is not None
    assert any("dcn" in str(node) for node in path)


def test_scenarios_are_reproducible():
    a = build_influenza_instance()
    b = build_influenza_instance()
    assert a.statistics() == b.statistics()
