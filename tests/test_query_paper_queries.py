"""End-to-end tests for the specific queries the paper names (Q1, Q2, Fig-3)."""

import pytest

from repro.query.builder import QueryBuilder
from repro.query.parser import parse_query
from repro.spatial.operators import are_consecutive, are_disjoint
from repro.spatial.interval import Interval


def test_fig3_alpha_synuclein_graph(neuroscience):
    """Fig. 3: annotation graph related to alpha-synuclein."""
    result = neuroscience.query(QueryBuilder.graph().refers("alpha-synuclein").build())
    assert result.count >= 1
    # the primary annotation touches a sequence, images, and a tree
    witness = neuroscience.witness_structure("neuro-a1")
    types = {referent["type"] for referent in witness["referents"]}
    assert {"dna_sequence", "image", "phylogenetic_tree"} <= types


def test_q1_mixed_keyword_ontology_region(neuroscience):
    """Intro query Q1 shape: term 'Deep Cerebellar nuclei' + >=2 regions."""
    gql = (
        'SELECT contents WHERE { '
        'REFERENT REFERS "Deep Cerebellar nuclei" '
        'REGION OVERLAPS mouse-atlas:25um [0,0] .. [512,512] MINCOUNT 2 }'
    )
    result = neuroscience.query(parse_query(gql))
    assert "neuro-a1" in result.annotation_ids


def test_q2_protease_consecutive_intervals(empty_graphitti):
    """Section III query Q2: 4 consecutive non-overlapping intervals each
    annotated with 'protease'."""
    from repro.datatypes import DnaSequence

    g = empty_graphitti
    g.register(DnaSequence("mainseq", "ACGT" * 100, domain="chrQ"))
    # Four consecutive, disjoint subsequence annotations, each with 'protease'.
    ranges = [(0, 20), (25, 45), (50, 70), (75, 95)]
    for index, (start, end) in enumerate(ranges):
        (
            g.new_annotation(f"q2-{index}", keywords=["protease"], body="protease cleavage")
            .mark_sequence("mainseq", start, end, ontology_terms=["protein:protease"])
            .commit()
        )
    # All four must be found by the keyword + ontology query.
    result = g.query(
        QueryBuilder.contents().contains("protease").refers("protein:protease").build()
    )
    assert len(result.annotation_ids) == 4
    # And the marked intervals are indeed consecutive & disjoint.
    marks = [Interval(start, end, domain="chrQ") for start, end in ranges]
    assert are_consecutive(marks)
    assert are_disjoint(marks)


def test_q2_rejects_overlapping(empty_graphitti):
    """The disjointness graph constraint must reject overlapping intervals."""
    overlapping = [Interval(0, 30, domain="c"), Interval(20, 50, domain="c")]
    assert not are_disjoint(overlapping)
    assert not are_consecutive(overlapping)


def test_intro_query_protein_tp53_keyword(empty_graphitti):
    """Intro query fragment: annotations containing 'protein.TP53'."""
    from repro.datatypes import DnaSequence

    g = empty_graphitti
    g.register(DnaSequence("tp53gene", "ACGT" * 40, domain="chr17"))
    (
        g.new_annotation("tp53-anno", keywords=["protein.TP53"], body="mutation in protein.TP53 domain")
        .mark_sequence("tp53gene", 10, 30)
        .refer_ontology("TP53")
        .commit()
    )
    assert "tp53-anno" in g.search_by_keyword("TP53")
    assert "tp53-anno" in g.search_by_keyword("protein.TP53")


def test_connection_subgraph_is_result_page(influenza):
    """Fig. 3/III: each connected subgraph forms a result page."""
    result = influenza.query(QueryBuilder.graph().contains("cleavage").build())
    # cleavage matches flu-a1 and flu-a2, which are connected -> one page
    assert len(result.subgraphs) >= 1
    assert all(subgraph.node_count >= 1 for subgraph in result.subgraphs)
