"""Tests for repro.obs.metrics: counters, gauges, histograms, merging, export."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    merge_histogram_snapshots,
    merge_metrics,
    merge_stats,
    render_prometheus,
)


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("ops")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = registry.gauge("depth")
    gauge.inc()
    gauge.inc()
    gauge.dec()
    assert gauge.value == 1
    gauge.set(7)
    assert gauge.value == 7


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.histogram("h") is registry.histogram("h")
    assert registry.gauge("g") is registry.gauge("g")


def test_histogram_snapshot_quantiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for _ in range(50):
        histogram.observe(0.001)
    for _ in range(45):
        histogram.observe(0.01)
    for _ in range(5):
        histogram.observe(0.1)
    snap = histogram.snapshot()
    assert snap["count"] == 100
    assert snap["sum"] == pytest.approx(0.001 * 50 + 0.01 * 45 + 0.1 * 5)
    assert snap["min"] == pytest.approx(0.001)
    assert snap["max"] == pytest.approx(0.1)
    # p50 lands in the 1ms bucket region, p99 in the 100ms region.
    assert snap["p50"] <= 0.002
    assert 0.01 <= snap["p99"] <= 0.1
    assert snap["p50"] <= snap["p95"] <= snap["p99"]


def test_histogram_quantiles_clamped_to_observed_range():
    registry = MetricsRegistry()
    histogram = registry.histogram("one")
    histogram.observe(0.007)
    snap = histogram.snapshot()
    for key in ("p50", "p95", "p99"):
        assert snap["min"] <= snap[key] <= snap["max"]


def test_counter_thread_safety():
    registry = MetricsRegistry()
    counter = registry.counter("contended")

    def hammer():
        for _ in range(2000):
            counter.inc()

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 16000


def test_merge_histogram_snapshots_doubles():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat")
    for value in (0.001, 0.02, 0.5):
        histogram.observe(value)
    snap = histogram.snapshot()
    merged = merge_histogram_snapshots([snap, snap])
    assert merged["count"] == 2 * snap["count"]
    assert merged["sum"] == pytest.approx(2 * snap["sum"])
    assert merged["min"] == snap["min"]
    assert merged["max"] == snap["max"]
    assert merged["buckets"] == [2 * count for count in snap["buckets"]]


def test_merge_histogram_snapshots_rejects_boundary_mismatch():
    registry = MetricsRegistry()
    snap = registry.histogram("lat")
    snap.observe(0.001)
    other = dict(snap.snapshot())
    other["boundaries"] = list(other["boundaries"])[:-1]
    with pytest.raises(ValueError):
        merge_histogram_snapshots([snap.snapshot(), other])


def test_merge_metrics_sums_counters_and_gauges():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.counter("queries").inc(3)
    right.counter("queries").inc(4)
    right.counter("only_right").inc()
    left.gauge("depth").set(2)
    right.gauge("depth").set(5)
    left.histogram("lat").observe(0.01)
    right.histogram("lat").observe(0.02)
    merged = merge_metrics([left.snapshot(), right.snapshot()])
    assert merged["counters"]["queries"] == 7
    assert merged["counters"]["only_right"] == 1
    assert merged["gauges"]["depth"] == 7
    assert merged["histograms"]["lat"]["count"] == 2


def test_merge_stats_recursive_numeric_sum():
    values = [
        {"a": 1, "nested": {"b": 2.5, "ok": True}, "label": "x"},
        {"a": 4, "nested": {"b": 0.5, "ok": True}, "label": "y"},
    ]
    merged = merge_stats(values)
    assert merged["a"] == 5
    assert merged["nested"]["b"] == pytest.approx(3.0)
    assert merged["nested"]["ok"] is True
    assert merged["label"] == "x"  # non-numeric: first wins


def test_render_prometheus_exposition():
    registry = MetricsRegistry()
    registry.counter("query.cache_hits").inc(3)
    registry.gauge("lock.writers_queued").set(1)
    histogram = registry.histogram("span.query")
    histogram.observe(0.003)
    histogram.observe(0.03)
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_query_cache_hits_total counter" in text
    assert "repro_query_cache_hits_total 3" in text
    assert "# TYPE repro_lock_writers_queued gauge" in text
    assert "# TYPE repro_span_query histogram" in text
    assert 'le="+Inf"' in text
    assert "repro_span_query_count 2" in text
    # Buckets are cumulative: the +Inf bucket equals the count.
    inf_line = [line for line in text.splitlines() if 'le="+Inf"' in line][0]
    assert inf_line.endswith(" 2")


def _histogram_from(samples):
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    for sample in samples:
        histogram.observe(sample)
    return histogram.snapshot()


_SAMPLES = st.lists(
    st.floats(min_value=1e-7, max_value=50.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
)


def _assert_equivalent(left, right):
    assert left["count"] == right["count"]
    assert left["buckets"] == right["buckets"]
    assert left["min"] == pytest.approx(right["min"])
    assert left["max"] == pytest.approx(right["max"])
    assert left["sum"] == pytest.approx(right["sum"])


@settings(max_examples=50, deadline=None)
@given(a=_SAMPLES, b=_SAMPLES)
def test_histogram_merge_is_commutative(a, b):
    ha, hb = _histogram_from(a), _histogram_from(b)
    _assert_equivalent(
        merge_histogram_snapshots([ha, hb]), merge_histogram_snapshots([hb, ha])
    )


@settings(max_examples=50, deadline=None)
@given(a=_SAMPLES, b=_SAMPLES, c=_SAMPLES)
def test_histogram_merge_is_associative(a, b, c):
    ha, hb, hc = _histogram_from(a), _histogram_from(b), _histogram_from(c)
    left = merge_histogram_snapshots([merge_histogram_snapshots([ha, hb]), hc])
    right = merge_histogram_snapshots([ha, merge_histogram_snapshots([hb, hc])])
    _assert_equivalent(left, right)
    # And both equal the one-shot three-way merge.
    _assert_equivalent(left, merge_histogram_snapshots([ha, hb, hc]))


@settings(max_examples=50, deadline=None)
@given(samples=_SAMPLES)
def test_histogram_merge_with_empty_is_identity(samples):
    snap = _histogram_from(samples)
    _assert_equivalent(merge_histogram_snapshots([snap]), snap)
    assert len(snap["buckets"]) == len(DEFAULT_BUCKETS) + 1
