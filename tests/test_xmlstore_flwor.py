"""Tests for the FLWOR-lite query engine."""

import pytest

from repro.errors import XmlStoreError
from repro.xmlstore.document import XmlDocument, XmlElement
from repro.xmlstore.flwor import Binding, FlworQuery
from repro.xmlstore.parser import parse_xml


def make_docs():
    docs = []
    for index, (subject, keyword) in enumerate(
        [("protease", "cleavage"), ("kinase", "phospho"), ("protease", "active")]
    ):
        doc = parse_xml(
            f"<annotation><dc:subject>{subject}</dc:subject><body>{keyword} site</body></annotation>",
            doc_id=f"d{index}",
        )
        docs.append(doc)
    return docs


def test_for_each_binds_nodes():
    docs = make_docs()
    results = FlworQuery(docs).for_each("//dc:subject").execute()
    assert len(results) == 3


def test_where_contains():
    docs = make_docs()
    results = (
        FlworQuery(docs)
        .for_each("//annotation")
        .where_contains("protease")
        .select(lambda b: b.document.doc_id)
        .execute()
    )
    assert set(results) == {"d0", "d2"}


def test_where_path_equals():
    docs = make_docs()
    results = (
        FlworQuery(docs)
        .for_each("//annotation")
        .where_path_equals("dc:subject", "kinase")
        .select(lambda b: b.document.doc_id)
        .execute()
    )
    assert results == ["d1"]


def test_let_binding():
    docs = make_docs()
    query = (
        FlworQuery(docs)
        .for_each("//annotation")
        .let("subj", lambda b: b.item.child_text("dc:subject"))
        .where(lambda b: b.let("subj") == "protease")
        .select(lambda b: b.let("subj"))
    )
    assert query.execute() == ["protease", "protease"]


def test_let_missing_raises():
    docs = make_docs()
    query = FlworQuery(docs).for_each("//annotation").select(lambda b: b.let("absent"))
    with pytest.raises(XmlStoreError):
        query.execute()


def test_order_by():
    docs = make_docs()
    results = (
        FlworQuery(docs)
        .for_each("//annotation")
        .order_by(lambda b: b.item.child_text("dc:subject"))
        .select(lambda b: b.item.child_text("dc:subject"))
        .execute()
    )
    assert results == ["kinase", "protease", "protease"]


def test_order_by_descending():
    docs = make_docs()
    results = (
        FlworQuery(docs)
        .for_each("//annotation")
        .order_by(lambda b: b.document.doc_id, descending=True)
        .select(lambda b: b.document.doc_id)
        .execute()
    )
    assert results == ["d2", "d1", "d0"]


def test_select_path():
    docs = make_docs()
    results = FlworQuery(docs).for_each("//annotation").select_path("dc:subject").execute()
    assert all(isinstance(hit, list) for hit in results)


def test_first_and_count():
    docs = make_docs()
    query = FlworQuery(docs).for_each("//annotation").where_contains("protease")
    assert query.count() == 2
    assert query.first() is not None


def test_bindings_returns_raw():
    docs = make_docs()
    bindings = FlworQuery(docs).for_each("//annotation").bindings()
    assert all(isinstance(b, Binding) for b in bindings)


def test_no_for_each_binds_document_root():
    docs = make_docs()
    results = FlworQuery(docs).select(lambda b: b.item.tag).execute()
    assert results == ["annotation", "annotation", "annotation"]


def test_immutability():
    docs = make_docs()
    base = FlworQuery(docs).for_each("//annotation")
    filtered = base.where_contains("kinase")
    # base query is unchanged
    assert base.count() == 3
    assert filtered.count() == 1
