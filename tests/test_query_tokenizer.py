"""Tests for the GQL tokenizer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.tokenizer import TokenType, tokenize


def test_keywords_uppercased():
    tokens = tokenize("select contents where")
    assert [t.value for t in tokens[:3]] == ["SELECT", "CONTENTS", "WHERE"]
    assert all(t.type is TokenType.KEYWORD for t in tokens[:3])


def test_string_tokens():
    tokens = tokenize("'protease'")
    assert tokens[0].type is TokenType.STRING
    assert tokens[0].value == "protease"


def test_double_quoted_string():
    tokens = tokenize('"deep nuclei"')
    assert tokens[0].value == "deep nuclei"


def test_numbers():
    tokens = tokenize("10 -5 3.14")
    values = [t.value for t in tokens if t.type is TokenType.NUMBER]
    assert values == ["10", "-5", "3.14"]


def test_punctuation():
    tokens = tokenize("{ } [ ] , ..")
    puncts = [t.value for t in tokens if t.type is TokenType.PUNCT]
    assert puncts == ["{", "}", "[", "]", ",", ".."]


def test_identifiers_with_colon_and_dash():
    tokens = tokenize("mouse-atlas:25um")
    assert tokens[0].type is TokenType.IDENT
    assert tokens[0].value == "mouse-atlas:25um"


def test_comments_skipped():
    tokens = tokenize("SELECT # comment\n CONTENTS")
    keywords = [t.value for t in tokens if t.type is TokenType.KEYWORD]
    assert keywords == ["SELECT", "CONTENTS"]


def test_eof_token():
    tokens = tokenize("SELECT")
    assert tokens[-1].type is TokenType.EOF


def test_unterminated_string():
    with pytest.raises(QuerySyntaxError):
        tokenize("'unterminated")


def test_unexpected_character():
    with pytest.raises(QuerySyntaxError):
        tokenize("SELECT $")


def test_escaped_quote_in_string():
    tokens = tokenize(r"'it\'s'")
    assert tokens[0].value == "it's"
