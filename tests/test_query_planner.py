"""Tests for the query planner (per-type separation and ordering)."""

from repro.query.ast import Target
from repro.query.builder import QueryBuilder
from repro.query.parser import parse_query
from repro.query.planner import QueryPlanner


def test_plan_orders_by_selectivity():
    query = (
        QueryBuilder.contents()
        .of_type("dna")           # least selective
        .contains("protease")      # most selective
        .refers("protein:protease")
        .build()
    )
    plan = QueryPlanner().plan(query)
    # keyword (10) should come before ontology (20) before type (60)
    order = [type(c).__name__ for c in plan.ordered_constraints]
    assert order.index("KeywordConstraint") < order.index("OntologyConstraint")
    assert order.index("OntologyConstraint") < order.index("TypeConstraint")


def test_plan_grouping_by_target():
    query = (
        QueryBuilder.contents()
        .contains("x")
        .overlaps_interval("chr1", 1, 2)
        .refers("t")
        .build()
    )
    plan = QueryPlanner().plan(query)
    assert Target.CONTENT in plan.groups
    assert Target.INTERVAL in plan.groups
    assert Target.ONTOLOGY in plan.groups
    assert plan.subquery_count() == 3


def test_plan_ordering_disabled_preserves_declaration_order():
    query = (
        QueryBuilder.contents()
        .of_type("dna")
        .contains("protease")
        .build()
    )
    plan = QueryPlanner(enable_ordering=False).plan(query)
    assert [type(c).__name__ for c in plan.ordered_constraints] == [
        "TypeConstraint",
        "KeywordConstraint",
    ]


def test_plan_explain():
    query = QueryBuilder.contents().contains("protease").build()
    plan = QueryPlanner().plan(query)
    assert "content CONTAINS" in plan.explain()


def test_estimated_cost():
    query = QueryBuilder.contents().contains("x").of_type("dna").build()
    cost = QueryPlanner.estimated_cost(query)
    assert cost == 10 + 60


def test_plan_preserves_all_constraints():
    query = parse_query(
        'SELECT contents WHERE { CONTENT CONTAINS "a" CONTENT CONTAINS "b" TYPE dna }'
    )
    plan = QueryPlanner().plan(query)
    assert len(plan.ordered_constraints) == 3
