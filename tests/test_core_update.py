"""Manager-level ``update_annotation``: delta maintenance semantics."""

import pytest

from repro.core.annotation import Referent
from repro.core.manager import Graphitti
from repro.datatypes import DnaSequence, Image
from repro.errors import AnnotationError, UnknownObjectError
from repro.ontology.builtin import build_protein_ontology
from repro.query.stats import StatisticsCatalogue


@pytest.fixture
def instance():
    g = Graphitti("update-test")
    g.register_ontology(build_protein_ontology())
    g.register(DnaSequence("seq1", "ACGT" * 250, domain="upd:chr1"))
    g.register(DnaSequence("seq2", "TGCA" * 250, domain="upd:chr1", offset=1000))
    g.register(Image("img", dimension=2, space="upd:atlas", size=(200, 200)))
    (
        g.new_annotation(
            "a1",
            title="original title",
            creator="alice",
            keywords=["alpha", "binding"],
            body="protease cleavage site",
        )
        .mark_sequence("seq1", 10, 40)
        .commit()
    )
    return g


def test_content_edit_updates_keyword_search(instance):
    assert instance.search_by_keyword("alpha") == ["a1"]
    instance.update_annotation("a1", {"keywords": ["gamma"], "body": "kinase motif"})
    assert instance.search_by_keyword("alpha") == []
    assert instance.search_by_keyword("gamma") == ["a1"]
    assert instance.search_by_keyword("kinase") == ["a1"]
    assert instance.search_by_keyword("protease") == []


def test_content_fields_replace_in_place(instance):
    instance.update_annotation(
        "a1",
        {
            "title": "revised title",
            "creator": "bob",
            "description": "a refined mark",
            "user_tags": {"confidence": "high"},
        },
    )
    annotation = instance.annotation("a1")
    assert annotation.content.dublin_core.title == "revised title"
    assert annotation.content.dublin_core.creator == "bob"
    assert annotation.content.user_tags == {"confidence": "high"}
    # the stored document reflects the edit (lazily regenerated on read)
    document = instance.contents.get("a1")
    assert "revised title" in document.text_content()
    # tag *values* are searchable text (keys are element names, which are not)
    assert instance.search_by_keyword("high") == ["a1"]


def test_update_keeps_annotation_id_and_slot(instance):
    slot_before = instance.idspace.slot("a1")
    instance.update_annotation("a1", {"title": "revised"})
    assert instance.idspace.slot("a1") == slot_before
    assert instance.idspace.live_mask.bit_count() == 1


def test_extent_move_updates_overlap_search(instance):
    assert instance.search_by_overlap_interval("upd:chr1", 0, 50) == ["a1"]
    referent_id = instance.annotation("a1").referents[0].referent_id
    instance.update_annotation(
        "a1", {"move_referents": {referent_id: {"start": 500, "end": 540}}}
    )
    assert instance.search_by_overlap_interval("upd:chr1", 0, 50) == []
    assert instance.search_by_overlap_interval("upd:chr1", 490, 560) == ["a1"]
    # the referent id stays stable; descriptor follows the move
    referent = instance.annotation("a1").referents[0]
    assert referent.referent_id == referent_id
    assert referent.ref.descriptor["start"] == 500
    assert referent.ref.descriptor["end"] == 540


def test_extent_move_adjusts_summaries(instance):
    before = instance.substructures.interval_summary("upd:chr1").total_measure
    referent_id = instance.annotation("a1").referents[0].referent_id
    instance.update_annotation(
        "a1", {"move_referents": {referent_id: {"start": 100, "end": 160}}}
    )
    after = instance.substructures.interval_summary("upd:chr1").total_measure
    assert after == pytest.approx(before + 30)  # 60-long extent replaced a 30-long one
    assert instance.substructures.interval_bounds("upd:chr1") == (100, 160)


def test_region_move(instance):
    (
        instance.new_annotation("a2", keywords=["spot"], body="a region mark")
        .mark_region("img", (10, 10), (20, 20))
        .commit()
    )
    referent_id = instance.annotation("a2").referents[0].referent_id
    instance.update_annotation(
        "a2", {"move_referents": {referent_id: {"lo": (50, 50), "hi": (70, 70)}}}
    )
    assert instance.search_by_overlap_region("upd:atlas", (0, 0), (30, 30)) == []
    assert instance.search_by_overlap_region("upd:atlas", (45, 45), (80, 80)) == ["a2"]


def test_remove_referent_shared_survival(instance):
    # a2 shares a1's referent; removing it from a2 must keep the substructure
    (
        instance.new_annotation("a2", keywords=["shared"], body="shares the referent")
        .mark_sequence("seq1", 10, 40)
        .mark_sequence("seq2", 5, 25)
        .commit()
    )
    shared = instance.annotation("a1").referents[0].referent_id
    assert shared in {r.referent_id for r in instance.annotation("a2").referents}
    instance.update_annotation("a2", {"remove_referents": [shared]})
    assert shared not in {r.referent_id for r in instance.annotation("a2").referents}
    assert shared in instance.substructures  # a1 still needs it
    assert instance.search_by_overlap_interval("upd:chr1", 0, 50) == ["a1"]
    report = instance.check_integrity()
    assert report.ok, report.errors


def test_remove_referent_unshared_drops_node_and_extent(instance):
    (
        instance.new_annotation("a2", keywords=["solo"], body="private referent")
        .mark_sequence("seq2", 100, 140)
        .mark_sequence("seq2", 300, 340)
        .commit()
    )
    doomed = instance.annotation("a2").referents[1].referent_id
    instance.update_annotation("a2", {"remove_referents": [doomed]})
    assert doomed not in instance.substructures
    assert doomed not in instance.agraph
    report = instance.check_integrity()
    assert report.ok, report.errors


def test_add_referent_wires_like_commit(instance):
    addition = Referent(ref=instance.data_object("seq2").mark(50, 90))
    instance.update_annotation("a1", {"add_referents": [addition]})
    annotation = instance.annotation("a1")
    assert annotation.referent_count == 2
    assert addition.referent_id in instance.substructures
    assert addition.referent_id in instance.agraph
    assert instance.agraph.contents_annotating(addition.referent_id) == ["a1"]
    # keyword search sees the new referent's attribute text lazily
    assert instance.search_by_overlap_interval("upd:chr1", 1040, 1100) == ["a1"]
    report = instance.check_integrity()
    assert report.ok, report.errors


def test_add_referent_accepts_codec_dict(instance):
    from repro.core.persistence import encode_referent

    addition = Referent(ref=instance.data_object("seq2").mark(200, 240))
    instance.update_annotation("a1", {"add_referents": [encode_referent(addition)]})
    assert instance.annotation("a1").referent_count == 2


def test_ontology_terms_rewire_diffed(instance):
    instance.update_annotation("a1", {"ontology_terms": ["protein:protease"]})
    assert "a1" in instance.search_by_ontology("protein:protease")
    assert "protein:protease" in instance.agraph.ontology_terms_of("a1")
    instance.update_annotation("a1", {"ontology_terms": ["protein:kinase"]})
    assert "a1" not in instance.search_by_ontology("protein:protease", include_descendants=False)
    assert "a1" in instance.search_by_ontology("protein:kinase")
    assert instance.agraph.ontology_terms_of("a1") == ["protein:kinase"]


def test_catalogue_matches_rebuild_after_updates(instance):
    instance.update_annotation("a1", {"ontology_terms": ["protein:protease"]})
    addition = Referent(ref=instance.data_object("img").mark_region((5, 5), (9, 9)))
    instance.update_annotation("a1", {"add_referents": [addition]})
    instance.update_annotation("a1", {"remove_referents": [addition.referent_id]})
    fresh = StatisticsCatalogue()
    fresh.rebuild(instance)
    assert instance.stats_catalogue.counts() == fresh.counts()


def test_update_bumps_epoch(instance):
    epoch = instance.mutation_epoch
    instance.update_annotation("a1", {"title": "bumped"})
    assert instance.mutation_epoch == epoch + 1


def test_update_unknown_annotation_raises(instance):
    with pytest.raises(AnnotationError):
        instance.update_annotation("missing", {"title": "x"})


def test_update_unknown_key_raises(instance):
    with pytest.raises(AnnotationError):
        instance.update_annotation("a1", {"colour": "red"})


def test_update_unknown_referent_raises_and_applies_nothing(instance):
    epoch = instance.mutation_epoch
    with pytest.raises(AnnotationError):
        instance.update_annotation(
            "a1", {"title": "should not land", "remove_referents": ["nope"]}
        )
    assert instance.annotation("a1").content.dublin_core.title == "original title"
    assert instance.mutation_epoch == epoch


def test_update_move_of_removed_referent_raises(instance):
    referent_id = instance.annotation("a1").referents[0].referent_id
    with pytest.raises(AnnotationError):
        instance.update_annotation(
            "a1",
            {
                "remove_referents": [referent_id],
                "move_referents": {referent_id: {"start": 1, "end": 2}},
            },
        )


def test_update_bad_move_spec_applies_nothing(instance):
    """A move with the wrong dimensionality (or on an extent-less referent)
    must fail validation — never half-apply the change set."""
    referent_id = instance.annotation("a1").referents[0].referent_id
    epoch = instance.mutation_epoch
    with pytest.raises(AnnotationError):
        instance.update_annotation(
            "a1",
            {
                "title": "must not land",
                "move_referents": {referent_id: {"lo": (0,), "hi": (1,)}},  # 1D referent
            },
        )
    with pytest.raises(AnnotationError):
        instance.update_annotation(
            "a1", {"move_referents": {referent_id: {}}}  # empty spec
        )
    assert instance.annotation("a1").content.dublin_core.title == "original title"
    assert instance.mutation_epoch == epoch
    assert instance.search_by_keyword("land") == []
    # wrong corner arity on a region referent
    (
        instance.new_annotation("r1", keywords=["rect"], body="region")
        .mark_region("img", (10, 10), (20, 20))
        .commit()
    )
    rect_id = instance.annotation("r1").referents[0].referent_id
    with pytest.raises(AnnotationError):
        instance.update_annotation(
            "r1", {"move_referents": {rect_id: {"lo": (1, 2, 3), "hi": (4, 5, 6)}}}
        )


def test_shared_referent_move_syncs_every_sharer(instance):
    """Moving a shared substructure moves it for every annotation marking it:
    each sharer's own referent copy, document and index postings follow."""
    from repro.xmlstore.text_index import InvertedIndex

    (
        instance.new_annotation("a2", keywords=["sharer"], body="shares the mark")
        .mark_sequence("seq1", 10, 40)
        .commit()
    )
    shared = instance.annotation("a1").referents[0].referent_id
    assert instance.annotation("a2").referents[0].referent_id == shared
    instance.update_annotation(
        "a2", {"move_referents": {shared: {"start": 700, "end": 750}}}
    )
    # both annotations report the moved extent (shared substructure refined)
    for annotation_id in ("a1", "a2"):
        referent = instance.annotation(annotation_id).referents[0]
        assert referent.ref.interval.start == 700
        assert referent.ref.interval.end == 750
        assert "700" in instance.contents.get(annotation_id).to_dict().__str__()
    assert sorted(instance.search_by_overlap_interval("upd:chr1", 690, 760)) == ["a1", "a2"]
    assert instance.search_by_overlap_interval("upd:chr1", 0, 50) == []
    # every document's postings equal a from-scratch rebuild
    live = instance.contents._index
    fresh = InvertedIndex()
    for doc_id in instance.contents.document_ids():
        fresh.add_document(
            doc_id, instance.contents._searchable_text(instance.contents.get(doc_id))
        )
    assert live._postings == fresh._postings
    report = instance.check_integrity()
    assert report.ok, report.errors


def test_update_unregistered_object_raises(instance):
    from repro.datatypes.base import DataType, SubstructureRef

    stray = Referent(ref=SubstructureRef("ghost", DataType.DNA))
    with pytest.raises(UnknownObjectError):
        instance.update_annotation("a1", {"add_referents": [stray]})


def test_update_cannot_strip_last_referent_without_terms(instance):
    referent_id = instance.annotation("a1").referents[0].referent_id
    with pytest.raises(AnnotationError):
        instance.update_annotation("a1", {"remove_referents": [referent_id]})
    # ...but swapping the last referent for an ontology pointer is fine
    instance.update_annotation(
        "a1",
        {"remove_referents": [referent_id], "ontology_terms": ["protein:protease"]},
    )
    assert instance.annotation("a1").referent_count == 0
    report = instance.check_integrity()
    assert report.ok, report.errors


def test_update_on_reloaded_snapshot(tmp_path, instance):
    from repro.core.persistence import load_instance, save_instance

    path = tmp_path / "inst.json"
    save_instance(instance, path)
    reloaded = load_instance(path)
    reloaded.update_annotation("a1", {"keywords": ["reloaded-edit"]})
    assert reloaded.search_by_keyword("reloaded-edit") == ["a1"]
    report = reloaded.check_integrity()
    assert report.ok, report.errors
