"""Tests for the database container and JSON persistence."""

import pytest

from repro.errors import RelationalError, UnknownTableError
from repro.relational import Database, load_database, save_database
from repro.relational.schema import Column, ColumnType, TableSchema


def test_create_and_fetch_table():
    db = Database("d")
    db.create_table_from_columns("t", {"id": ColumnType.INTEGER, "n": ColumnType.TEXT}, primary_key="id")
    assert db.has_table("t")
    assert "t" in db
    assert db.table("t").name == "t"


def test_create_duplicate_table():
    db = Database()
    db.create_table_from_columns("t", {"id": ColumnType.INTEGER}, primary_key="id")
    with pytest.raises(RelationalError):
        db.create_table_from_columns("t", {"id": ColumnType.INTEGER}, primary_key="id")


def test_unknown_table():
    db = Database()
    with pytest.raises(UnknownTableError):
        db.table("nope")


def test_drop_table():
    db = Database()
    db.create_table_from_columns("t", {"id": ColumnType.INTEGER}, primary_key="id")
    db.drop_table("t")
    assert not db.has_table("t")
    with pytest.raises(UnknownTableError):
        db.drop_table("t")


def test_total_rows():
    db = Database()
    t = db.create_table_from_columns("t", {"id": ColumnType.INTEGER}, primary_key="id")
    t.insert({"id": 1})
    t.insert({"id": 2})
    assert db.total_rows() == 2


def test_table_names_in_order():
    db = Database()
    db.create_table_from_columns("a", {"id": ColumnType.INTEGER}, primary_key="id")
    db.create_table_from_columns("b", {"id": ColumnType.INTEGER}, primary_key="id")
    assert db.table_names == ("a", "b")


def test_database_roundtrip(tmp_path):
    db = Database("persist")
    t = db.create_table_from_columns("t", {"id": ColumnType.INTEGER, "n": ColumnType.TEXT}, primary_key="id")
    t.insert({"id": 1, "n": "x"})
    t.insert({"id": 2, "n": "y"})
    path = save_database(db, tmp_path / "db.json")
    loaded = load_database(path)
    assert loaded.name == "persist"
    assert loaded.table("t").get(1)["n"] == "x"
    assert len(loaded.table("t")) == 2


def test_load_missing_file(tmp_path):
    with pytest.raises(RelationalError):
        load_database(tmp_path / "ghost.json")


def test_load_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json{{")
    with pytest.raises(RelationalError):
        load_database(path)


def test_database_dict_roundtrip_preserves_indexes_data():
    db = Database()
    t = db.create_table_from_columns("t", {"id": ColumnType.INTEGER, "v": ColumnType.INTEGER}, primary_key="id")
    for i in range(5):
        t.insert({"id": i, "v": i * 10})
    restored = Database.from_dict(db.to_dict())
    assert restored.table("t").get(3)["v"] == 30
