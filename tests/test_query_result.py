"""Tests for the QueryResult model."""

import pytest

from repro.agraph.connection import ConnectionSubgraph
from repro.query.ast import ReturnKind
from repro.query.result import QueryResult


def test_count_contents():
    result = QueryResult(return_kind=ReturnKind.CONTENTS, annotation_ids=["a", "b"])
    assert result.count == 2
    assert not result.is_empty()


def test_count_referents():
    result = QueryResult(return_kind=ReturnKind.REFERENTS, referents=[1, 2, 3])
    assert result.count == 3


def test_count_graph():
    subgraph = ConnectionSubgraph(terminals=("a",), nodes={"a"})
    result = QueryResult(return_kind=ReturnKind.GRAPH, subgraphs=[subgraph])
    assert result.count == 1


def test_is_empty():
    result = QueryResult(return_kind=ReturnKind.CONTENTS)
    assert result.is_empty()


def test_record_and_explain_steps():
    result = QueryResult(return_kind=ReturnKind.CONTENTS)
    result.record_step("keyword", 10)
    result.record_step("overlap", 3)
    explanation = result.explain_steps()
    assert "keyword" in explanation and "10" in explanation
    assert "overlap" in explanation and "3" in explanation


def test_to_dict():
    result = QueryResult(return_kind=ReturnKind.CONTENTS, annotation_ids=["a"])
    result.record_step("keyword", 1)
    payload = result.to_dict()
    assert payload["return_kind"] == "contents"
    assert payload["count"] == 1
    assert payload["steps"] == [["keyword", 1]] or payload["steps"] == [("keyword", 1)]


def test_to_dict_with_subgraphs():
    subgraph = ConnectionSubgraph(terminals=("a", "b"), nodes={"a", "b"})
    result = QueryResult(return_kind=ReturnKind.GRAPH, subgraphs=[subgraph])
    payload = result.to_dict()
    assert len(payload["subgraphs"]) == 1
