"""Tests for OBO serialization and parsing."""

import pytest

from repro.errors import OntologyError
from repro.ontology.builtin import build_brain_region_ontology, build_protein_ontology
from repro.ontology.obo import parse_obo, serialize_obo
from repro.ontology.model import IS_A

SAMPLE_OBO = """
format-version: 1.2
ontology: sample

[Term]
id: X:1
name: Root

[Term]
id: X:2
name: Child
synonym: "kid" EXACT []
is_a: X:1

[Term]
id: X:3
name: Instance
is_instance: true
is_instance_of: X:2
"""


def test_parse_obo_basic():
    o = parse_obo(SAMPLE_OBO)
    assert o.name == "sample"
    assert o.term("X:2").name == "Child"
    assert o.has_relation("X:2", IS_A, "X:1")


def test_parse_obo_synonym():
    o = parse_obo(SAMPLE_OBO)
    assert "kid" in o.term("X:2").synonyms


def test_parse_obo_instance():
    o = parse_obo(SAMPLE_OBO)
    assert o.term("X:3").is_instance
    assert o.has_relation("X:3", "instance_of", "X:2")


def test_parse_obo_empty_raises():
    with pytest.raises(OntologyError):
        parse_obo("   ")


def test_parse_obo_missing_id():
    bad = "[Term]\nname: NoId\n"
    with pytest.raises(OntologyError):
        parse_obo(bad)


def test_parse_obo_relationship():
    text = """
ontology: rel
[Term]
id: A
name: A
[Term]
id: B
name: B
relationship: regulates A
"""
    o = parse_obo(text)
    assert o.has_relation("B", "regulates", "A")


def test_roundtrip_protein_ontology():
    original = build_protein_ontology()
    text = serialize_obo(original)
    restored = parse_obo(text, name="proteins")
    assert restored.term_count == original.term_count
    assert restored.descendants("protein:enzyme") == original.descendants("protein:enzyme")


def test_roundtrip_brain_ontology():
    original = build_brain_region_ontology()
    restored = parse_obo(serialize_obo(original), name="brain-regions")
    assert restored.edge_count == original.edge_count
