"""Tests for the GO-style ontology and reasoning over a multi-root DAG."""

import pytest

from repro.ontology.builtin import build_gene_ontology_subset
from repro.ontology.operations import OntologyOperations
from repro.ontology.reasoning import OntologyReasoner


def test_three_roots():
    ontology = build_gene_ontology_subset()
    roots = set(ontology.roots())
    assert {"GO:0003674", "GO:0008150", "GO:0005575"} <= roots


def test_peptidase_is_hydrolase():
    ontology = build_gene_ontology_subset()
    assert "GO:0016787" in ontology.ancestors("GO:0008233")


def test_ci_peptidase_instances():
    ops = OntologyOperations(build_gene_ontology_subset())
    assert "GO:product:trypsin" in ops.ci("GO:0008233")


def test_ci_catalytic_activity_includes_subclasses():
    ops = OntologyOperations(build_gene_ontology_subset())
    instances = ops.ci("GO:0003824")
    assert {"GO:product:trypsin", "GO:product:cdk1"} <= instances


def test_reasoner_similarity_within_branch():
    r = OntologyReasoner(build_gene_ontology_subset())
    close = r.wu_palmer_similarity("GO:0008233", "GO:0016301")  # both catalytic
    far = r.wu_palmer_similarity("GO:0008233", "GO:0003677")    # catalytic vs binding
    assert close >= far


def test_part_of_crosses_namespace():
    ontology = build_gene_ontology_subset()
    # regulation of transcription part_of nucleus
    assert ontology.has_relation("GO:0006355", "part_of", "GO:0005634")


def test_obo_roundtrip_go():
    from repro.ontology.obo import parse_obo, serialize_obo

    ontology = build_gene_ontology_subset()
    restored = parse_obo(serialize_obo(ontology), name="gene-ontology")
    assert restored.term_count == ontology.term_count
