"""Routing, shard-id codec, and manifest tests for :mod:`repro.shard.router`."""

import json

import pytest

from repro.core.annotation import Annotation, AnnotationContent
from repro.core.dublin_core import DublinCore
from repro.datatypes.base import DataType, SubstructureRef
from repro.errors import ServiceError
from repro.shard.router import (
    MANIFEST_FILE,
    ROUTING_SCHEME,
    read_manifest,
    shard_for_annotation,
    shard_for_key,
    shard_from_annotation_id,
    shard_namespace,
    write_manifest,
)


def _annotation(annotation_id: str, object_ids: list[str]) -> Annotation:
    content = AnnotationContent(dublin_core=DublinCore(identifier=annotation_id))
    annotation = Annotation(annotation_id, content)
    for object_id in object_ids:
        annotation.add_referent(
            SubstructureRef(object_id=object_id, data_type=DataType.DNA, descriptor={})
        )
    return annotation


def test_key_routing_is_deterministic_and_in_range():
    for count in (1, 2, 4, 7):
        for key in ("chr1", "obj-42", "x", "a-very-long-object-identifier"):
            index = shard_for_key(key, count)
            assert 0 <= index < count
            assert index == shard_for_key(key, count)  # stable across calls


def test_key_routing_spreads_over_shards():
    indexes = {shard_for_key(f"obj{i}", 4) for i in range(64)}
    assert indexes == {0, 1, 2, 3}


def test_annotation_routes_by_first_referent_object():
    annotation = _annotation("a1", ["objA", "objB"])
    assert shard_for_annotation(annotation, 4) == shard_for_key("objA", 4)


def test_same_object_annotations_colocate():
    first = _annotation("a1", ["shared-object"])
    second = _annotation("a2", ["shared-object"])
    assert shard_for_annotation(first, 4) == shard_for_annotation(second, 4)


def test_referent_free_annotation_routes_by_id():
    annotation = _annotation("bare-1", [])
    assert shard_for_annotation(annotation, 4) == shard_for_key("bare-1", 4)


def test_shard_id_codec_round_trips():
    for index in (0, 3, 11):
        generated = f"anno-{shard_namespace(index)}-000042"
        assert shard_from_annotation_id(generated) == index


def test_foreign_ids_do_not_decode():
    for foreign in ("anno-000042", "my-annotation", "anno-sx-1", "crash-17"):
        assert shard_from_annotation_id(foreign) is None


def test_manifest_round_trip(tmp_path):
    payload = {"version": 1, "shards": 4, "routing": ROUTING_SCHEME, "checkpoints": 2}
    path = write_manifest(tmp_path, payload)
    assert path.name == MANIFEST_FILE
    assert read_manifest(tmp_path) == payload
    # write-temp + rename: no temp file left behind
    assert list(tmp_path.glob("*.tmp")) == []


def test_manifest_absent_reads_none(tmp_path):
    assert read_manifest(tmp_path) is None


def test_manifest_with_foreign_routing_scheme_is_rejected(tmp_path):
    (tmp_path / MANIFEST_FILE).write_text(
        json.dumps({"version": 1, "shards": 2, "routing": "consistent-hash:v9"})
    )
    with pytest.raises(ServiceError):
        read_manifest(tmp_path)
