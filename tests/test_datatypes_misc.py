"""Tests for alignment, tree, graph, image, and record data objects."""

import pytest

from repro.datatypes.alignment import MultipleSequenceAlignment
from repro.datatypes.graph import InteractionGraph
from repro.datatypes.image import Image, ImageRegion
from repro.datatypes.record import RecordBlock, RelationalRecord
from repro.datatypes.tree import TreeClade, parse_newick
from repro.errors import MarkError


# -- alignment --------------------------------------------------------------


def test_alignment_requires_equal_width():
    with pytest.raises(MarkError):
        MultipleSequenceAlignment("a", {"r1": "ACGT", "r2": "ACG"})


def test_alignment_properties():
    msa = MultipleSequenceAlignment("a", {"r1": "ACGT", "r2": "A-GT"})
    assert msa.width == 4
    assert msa.depth == 2
    assert msa.column(1) == {"r1": "C", "r2": "-"}


def test_alignment_conservation():
    msa = MultipleSequenceAlignment("a", {"r1": "AAAA", "r2": "AAAA", "r3": "AACA"})
    assert msa.column_conservation(0) == 1.0
    assert msa.column_conservation(2) < 1.0


def test_alignment_conserved_columns():
    msa = MultipleSequenceAlignment("a", {"r1": "AAAA", "r2": "AATA"})
    conserved = msa.conserved_columns(threshold=1.0)
    assert 0 in conserved and 2 not in conserved


def test_alignment_mark_columns():
    msa = MultipleSequenceAlignment("a", {"r1": "ACGTACGT", "r2": "ACGTACGT"})
    ref = msa.mark_columns(2, 4)
    assert ref.interval.start == 2 and ref.interval.end == 4
    assert ref.descriptor["block"]["r1"] == "GTA"


def test_alignment_mark_out_of_bounds():
    msa = MultipleSequenceAlignment("a", {"r1": "ACGT"})
    with pytest.raises(MarkError):
        msa.mark_columns(0, 10)


# -- tree -------------------------------------------------------------------


def test_parse_newick_simple():
    tree = parse_newick("(A,B,C);")
    assert tree.leaf_names == frozenset({"A", "B", "C"})


def test_parse_newick_branch_lengths():
    tree = parse_newick("(A:0.1,B:0.2):0.0;")
    leaves = {leaf.name: leaf.branch_length for leaf in tree.root.leaves()}
    assert leaves["A"] == 0.1


def test_parse_newick_requires_semicolon():
    with pytest.raises(MarkError):
        parse_newick("(A,B)")


def test_tree_clade_operations():
    tree = parse_newick("((A,B),(C,D));")
    assert tree.clade_count() == 7
    ancestor = tree.common_ancestor(["A", "B"])
    assert ancestor.leaf_names() == frozenset({"A", "B"})


def test_tree_mark_clade_by_leaves():
    tree = parse_newick("((A:0.1,B:0.1)clade1:0.2,C:0.3);")
    ref = tree.mark_clade_by_leaves(["A", "B"])
    assert set(ref.descriptor["leaves"]) == {"A", "B"}


def test_tree_mark_clade_missing():
    tree = parse_newick("(A,B);")
    with pytest.raises(MarkError):
        tree.mark_clade("ghost")


def test_tree_depth():
    clade = TreeClade("root")
    child = clade.add_child(TreeClade("a"))
    child.add_child(TreeClade("b"))
    assert clade.depth() == 2


# -- interaction graph ------------------------------------------------------


def test_graph_add_edge_and_neighbors():
    graph = InteractionGraph("g")
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    assert graph.neighbors("b") == {"a", "c"}
    assert graph.degree("b") == 2


def test_graph_no_self_loops():
    graph = InteractionGraph("g")
    with pytest.raises(MarkError):
        graph.add_edge("a", "a")


def test_graph_neighborhood():
    graph = InteractionGraph("g")
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("c", "d")
    assert graph.neighborhood("a", radius=2) == {"a", "b", "c"}


def test_graph_connected_component():
    graph = InteractionGraph("g")
    graph.add_edge("a", "b")
    graph.add_node("x")
    assert graph.connected_component("a") == {"a", "b"}


def test_graph_mark_subgraph():
    graph = InteractionGraph("g")
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    ref = graph.mark_subgraph(["a", "b"])
    assert ref.descriptor["nodes"] == ["a", "b"]
    assert ("a", "b") in [tuple(e) for e in ref.descriptor["edges"]]


def test_graph_mark_unknown_node():
    graph = InteractionGraph("g")
    graph.add_node("a")
    with pytest.raises(MarkError):
        graph.mark_subgraph(["a", "ghost"])


def test_graph_counts():
    graph = InteractionGraph("g")
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    assert graph.node_count == 3
    assert graph.edge_count == 2


# -- image ------------------------------------------------------------------


def test_image_mark_region():
    image = Image("img", dimension=2, space="atlas")
    ref = image.mark_region((10, 10), (20, 20))
    assert ref.rect.lo == (10, 10)
    assert ref.rect.space == "atlas"


def test_image_dimension_mismatch():
    image = Image("img", dimension=2)
    with pytest.raises(MarkError):
        image.mark_region((1, 1, 1), (2, 2, 2))


def test_image_invalid_dimension():
    with pytest.raises(MarkError):
        Image("img", dimension=4)


def test_image_shared_space():
    a = Image("a", dimension=2, space="atlas")
    b = Image("b", dimension=2, space="atlas")
    assert a.coordinate_space == b.coordinate_space


def test_image_mark_regions():
    image = Image("img", dimension=2, space="atlas")
    refs = image.mark_regions([ImageRegion((0, 0), (5, 5), "r1"), ImageRegion((5, 5), (9, 9), "r2")])
    assert len(refs) == 2
    assert refs[0].label == "r1"


def test_3d_image():
    image = Image("vol", dimension=3, space="volume")
    ref = image.mark_region((0, 0, 0), (5, 5, 5))
    assert ref.rect.dimension == 3


# -- records ----------------------------------------------------------------


def test_record_add_and_select():
    record = RelationalRecord("r", fields=("host", "year"))
    record.add_row("k1", {"host": "chicken", "year": 1997})
    record.add_row("k2", {"host": "duck", "year": 1996})
    assert record.row_count == 2
    assert record.select("host", "chicken") == ["k1"]


def test_record_unknown_field():
    record = RelationalRecord("r", fields=("host",))
    with pytest.raises(MarkError):
        record.add_row("k1", {"ghost": 1})


def test_record_duplicate_key():
    record = RelationalRecord("r", fields=("host",))
    record.add_row("k1", {"host": "x"})
    with pytest.raises(MarkError):
        record.add_row("k1", {"host": "y"})


def test_record_mark_block():
    record = RelationalRecord("r", fields=("host",))
    record.add_row("k1", {"host": "x"})
    record.add_row("k2", {"host": "y"})
    ref = record.mark_block(["k1", "k2"])
    assert ref.descriptor["size"] == 2


def test_record_mark_unknown_rows():
    record = RelationalRecord("r", fields=("host",))
    record.add_row("k1", {"host": "x"})
    with pytest.raises(MarkError):
        record.mark_block(["k1", "ghost"])


def test_record_block_overlaps():
    a = RecordBlock("r", ["k1", "k2"])
    b = RecordBlock("r", ["k2", "k3"])
    c = RecordBlock("r", ["k4"])
    assert a.overlaps(b)
    assert not a.overlaps(c)
