"""Tests for derivation coordinate transforms."""

import pytest

from repro.errors import GraphittiError
from repro.provenance.derivation import Derivation, DerivationKind
from repro.spatial.interval import Interval
from repro.spatial.rect import Rect


def test_subsequence_requires_window():
    with pytest.raises(GraphittiError):
        Derivation("a", "b", DerivationKind.SUBSEQUENCE, "da", "db")


def test_map_interval_inside_window():
    d = Derivation("a", "b", DerivationKind.SUBSEQUENCE, "da", "db", window=(40, 120))
    mapped = d.map_interval(Interval(50, 90, domain="da"))
    assert mapped.start == 10 and mapped.end == 50
    assert mapped.domain == "db"


def test_map_interval_outside_window():
    d = Derivation("a", "b", DerivationKind.SUBSEQUENCE, "da", "db", window=(40, 120))
    assert d.map_interval(Interval(200, 240, domain="da")) is None


def test_map_interval_clipped_to_window():
    d = Derivation("a", "b", DerivationKind.SUBSEQUENCE, "da", "db", window=(40, 120))
    mapped = d.map_interval(Interval(30, 60, domain="da"))
    # clipped to [40,60] -> [0,20]
    assert mapped.start == 0 and mapped.end == 20


def test_covers_interval():
    d = Derivation("a", "b", DerivationKind.SUBSEQUENCE, "da", "db", window=(40, 120))
    assert d.covers_interval(Interval(50, 90, domain="da"))
    assert not d.covers_interval(Interval(200, 240, domain="da"))


def test_map_rect_inside():
    d = Derivation("a", "b", DerivationKind.IMAGE_CROP, "sa", "sb", window=((10, 10), (100, 100)))
    mapped = d.map_rect(Rect((20, 20), (40, 40), space="sa"))
    assert mapped.lo == (10, 10) and mapped.hi == (30, 30)
    assert mapped.space == "sb"


def test_map_rect_outside():
    d = Derivation("a", "b", DerivationKind.IMAGE_CROP, "sa", "sb", window=((10, 10), (100, 100)))
    assert d.map_rect(Rect((200, 200), (210, 210), space="sa")) is None


def test_identity_derivation():
    d = Derivation("a", "b", DerivationKind.IDENTITY, "da", "db")
    mapped = d.map_interval(Interval(5, 9, domain="da"))
    assert mapped.start == 5 and mapped.domain == "db"


def test_map_interval_wrong_kind():
    d = Derivation("a", "b", DerivationKind.IMAGE_CROP, "sa", "sb", window=((0, 0), (1, 1)))
    with pytest.raises(GraphittiError):
        d.map_interval(Interval(0, 1, domain="sa"))


def test_map_rect_wrong_kind():
    d = Derivation("a", "b", DerivationKind.SUBSEQUENCE, "da", "db", window=(0, 10))
    with pytest.raises(GraphittiError):
        d.map_rect(Rect((0, 0), (1, 1), space="da"))
