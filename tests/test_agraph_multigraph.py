"""Tests for the directed labeled multigraph."""

import pytest

from repro.agraph.multigraph import Edge, LabeledMultigraph, Node
from repro.errors import UnknownNodeError


def make_graph():
    g = LabeledMultigraph()
    g.add_node("a", kind="content")
    g.add_node("b", kind="referent")
    g.add_node("c", kind="referent")
    g.add_edge("a", "b", label="annotates")
    g.add_edge("a", "c", label="annotates")
    g.add_edge("b", "c", label="relates", weight=2)
    return g


def test_node_count_edge_count():
    g = make_graph()
    assert g.node_count == 3
    assert g.edge_count == 3


def test_add_node_updates_attributes():
    g = LabeledMultigraph()
    g.add_node("a", kind="content", title="x")
    g.add_node("a", kind="content", extra="y")
    assert g.node("a").attributes["title"] == "x"
    assert g.node("a").attributes["extra"] == "y"


def test_unknown_node():
    g = make_graph()
    with pytest.raises(UnknownNodeError):
        g.node("ghost")


def test_edge_requires_existing_nodes():
    g = LabeledMultigraph()
    g.add_node("a")
    with pytest.raises(UnknownNodeError):
        g.add_edge("a", "missing")


def test_multigraph_allows_parallel_edges():
    g = LabeledMultigraph()
    g.add_node("a")
    g.add_node("b")
    g.add_edge("a", "b", label="x")
    g.add_edge("a", "b", label="y")
    assert g.edge_count == 2


def test_successors_predecessors():
    g = make_graph()
    assert set(g.successors("a")) == {"b", "c"}
    assert set(g.predecessors("c")) == {"a", "b"}


def test_successors_by_label():
    g = make_graph()
    assert set(g.successors("a", label="annotates")) == {"b", "c"}
    assert g.successors("b", label="annotates") == []


def test_neighbors_undirected():
    g = make_graph()
    assert g.neighbors_undirected("c") == {"a", "b"}


def test_degree():
    g = make_graph()
    assert g.degree("a") == 2
    assert g.degree("c") == 2


def test_edge_attribute():
    g = make_graph()
    relate = [e for e in g.edges() if e.label == "relates"][0]
    assert relate.attribute("weight") == 2
    assert relate.attribute("missing", 0) == 0


def test_edge_reversed():
    edge = Edge("a", "b", "x", (("w", 1),))
    assert edge.reversed() == Edge("b", "a", "x", (("w", 1),))


def test_remove_node_removes_edges():
    g = make_graph()
    g.remove_node("a")
    assert "a" not in g
    assert g.edge_count == 1  # only b->c remains
    assert g.in_edges("c") == [e for e in g.in_edges("c")]


def test_nodes_of_kind():
    g = make_graph()
    assert {n.node_id for n in g.nodes_of_kind("referent")} == {"b", "c"}


def test_labels():
    g = make_graph()
    assert g.labels() == {"annotates", "relates"}


def test_to_dict():
    g = make_graph()
    payload = g.to_dict()
    assert len(payload["nodes"]) == 3
    assert len(payload["edges"]) == 3


def test_rebuild_components_clears_stale_flag():
    g = make_graph()
    assert g.components_stale is False
    g.remove_node("a")
    assert g.components_stale is True  # remove defers the rebuild
    assert g.rebuild_components() is True
    assert g.components_stale is False
    # The rebuilt index is correct: b and c stay connected, a is gone.
    assert g.same_component("b", "c")
    # A second call is a no-op.
    assert g.rebuild_components() is False


def test_rebuild_components_matches_lazy_rebuild():
    g = make_graph()
    g.remove_node("a")
    g.rebuild_components()
    eager = sorted(sorted(component) for component in g.components())

    h = make_graph()
    h.remove_node("a")
    lazy = sorted(sorted(component) for component in h.components())  # lazy path
    assert eager == lazy
