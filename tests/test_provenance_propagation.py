"""Tests for annotation propagation and deletion propagation."""

import pytest

from repro import Graphitti
from repro.datatypes import DnaSequence, Image
from repro.errors import GraphittiError
from repro.provenance.derivation import Derivation, DerivationKind
from repro.provenance.propagation import AnnotationPropagator


def build_sequence_instance():
    g = Graphitti()
    g.register(DnaSequence("gene", "ACGT" * 100, domain="gene:dom"))
    g.register(DnaSequence("gene_frag", "ACGT" * 20, domain="frag:dom"))
    g.new_annotation("src1", keywords=["promoter"]).mark_sequence("gene", 50, 90).commit()
    g.new_annotation("src2", keywords=["exon"]).mark_sequence("gene", 200, 240).commit()
    prop = AnnotationPropagator(g)
    prop.register_derivation(
        Derivation("gene", "gene_frag", DerivationKind.SUBSEQUENCE, "gene:dom", "frag:dom", window=(40, 120))
    )
    return g, prop


def test_propagation_maps_coordinates():
    g, prop = build_sequence_instance()
    created = prop.propagate("gene", "gene_frag")
    assert len(created) == 1  # only src1 is inside the window
    ref = g.annotation(created[0]).referents[0].ref
    assert ref.interval.start == 10 and ref.interval.end == 50
    assert ref.object_id == "gene_frag"


def test_propagation_copies_content():
    g, prop = build_sequence_instance()
    created = prop.propagate("gene", "gene_frag")
    assert "promoter" in g.annotation(created[0]).content.keywords()


def test_propagation_records_lineage():
    g, prop = build_sequence_instance()
    created = prop.propagate("gene", "gene_frag")
    assert prop.ledger.parents(created[0]) == ("src1",)
    assert created[0] in prop.ledger.descendants("src1")


def test_propagation_unknown_derivation():
    g, prop = build_sequence_instance()
    with pytest.raises(GraphittiError):
        prop.propagate("gene", "unknown")


def test_deletion_propagation_plan():
    g, prop = build_sequence_instance()
    created = prop.propagate("gene", "gene_frag")
    plan = prop.propagate_deletion("src1", apply=False)
    assert "src1" in plan
    assert created[0] in plan
    # nothing actually deleted
    assert "src1" in {a.annotation_id for a in g.annotations()}


def test_deletion_propagation_apply():
    g, prop = build_sequence_instance()
    created = prop.propagate("gene", "gene_frag")
    prop.propagate_deletion("src1", apply=True)
    remaining = {a.annotation_id for a in g.annotations()}
    assert "src1" not in remaining
    assert created[0] not in remaining
    assert "src2" in remaining  # untouched
    assert g.check_integrity().ok


def test_image_propagation():
    g = Graphitti()
    g.register(Image("big", dimension=2, space="big:space", size=(200, 200)))
    g.register(Image("crop", dimension=2, space="crop:space", size=(100, 100)))
    g.new_annotation("img-src").mark_region("big", (60, 60), (90, 90)).commit()
    prop = AnnotationPropagator(g)
    prop.register_derivation(
        Derivation("big", "crop", DerivationKind.IMAGE_CROP, "big:space", "crop:space", window=((50, 50), (150, 150)))
    )
    created = prop.propagate("big", "crop")
    assert len(created) == 1
    rect = g.annotation(created[0]).referents[0].ref.rect
    assert rect.lo == (10, 10) and rect.hi == (40, 40)


def test_propagation_idempotent_ids():
    g, prop = build_sequence_instance()
    first = prop.propagate("gene", "gene_frag")
    second = prop.propagate("gene", "gene_frag")
    # second propagation gets fresh ids (suffix) so no collision
    assert set(first).isdisjoint(set(second))


def test_existing_annotations_recorded_as_roots():
    g, prop = build_sequence_instance()
    assert "src1" in prop.ledger
    assert prop.ledger.parents("src1") == ()
