"""Focused tests for the inverted keyword index and tokenizer."""

import pytest
from hypothesis import given, strategies as st

from repro.xmlstore.text_index import STOP_WORDS, InvertedIndex, tokenize


def test_tokenize_lowercases():
    assert tokenize("Protease KINASE") == ["protease", "kinase"]


def test_tokenize_keeps_identifiers():
    assert "protein.tp53" in tokenize("the protein.TP53 gene")


def test_tokenize_drops_stopwords():
    tokens = tokenize("the quick and the dead")
    assert not (set(tokens) & STOP_WORDS)


def test_tokenize_keep_stopwords():
    tokens = tokenize("the protease", drop_stop_words=False)
    assert "the" in tokens


def test_index_expands_dotted_terms():
    index = InvertedIndex()
    index.add_document("d1", "protein.TP53 mutation")
    # findable by the whole token and by its parts
    assert index.search("protein.tp53") == {"d1"}
    assert index.search("tp53") == {"d1"}
    assert index.search("protein") == {"d1"}


def test_index_and_or_modes():
    index = InvertedIndex()
    index.add_document("d1", "alpha beta")
    index.add_document("d2", "beta gamma")
    assert index.search("alpha beta", mode="and") == {"d1"}
    assert index.search("alpha gamma", mode="or") == {"d1", "d2"}


def test_index_unknown_mode():
    index = InvertedIndex()
    index.add_document("d1", "x")
    with pytest.raises(ValueError):
        index.search("x", mode="xor")


def test_index_empty_query():
    index = InvertedIndex()
    index.add_document("d1", "x")
    assert index.search("") == set()


def test_term_and_document_frequency():
    index = InvertedIndex()
    index.add_document("d1", "gene gene gene")
    index.add_document("d2", "gene")
    assert index.term_frequency("gene", "d1") == 3
    assert index.document_frequency("gene") == 2


def test_remove_document():
    index = InvertedIndex()
    index.add_document("d1", "alpha")
    index.add_document("d2", "alpha")
    index.remove_document("d1")
    assert index.search("alpha") == {"d2"}
    assert "d1" not in index


def test_remove_unknown_is_noop():
    index = InvertedIndex()
    index.remove_document("ghost")  # should not raise
    assert len(index) == 0


@given(st.lists(st.text(alphabet="abcdef ", min_size=1, max_size=10), min_size=1, max_size=20))
def test_indexed_documents_are_searchable(words_list):
    index = InvertedIndex()
    for position, text in enumerate(words_list):
        index.add_document(f"d{position}", text)
    # any token present in a document must retrieve that document
    for position, text in enumerate(words_list):
        for token in tokenize(text):
            assert f"d{position}" in index.search(token, mode="or")


def test_remove_document_touches_only_own_postings():
    """Removal walks the doc's reverse-mapped terms, not the vocabulary."""
    index = InvertedIndex()
    index.add_document("d1", "alpha beta")
    index.add_document("d2", "gamma delta epsilon")
    touched = []

    class SpyingPostings(dict):
        def get(self, term, default=None):
            touched.append(term)
            return super().get(term, default)

    index._postings = SpyingPostings(index._postings)
    index.remove_document("d1")
    assert sorted(touched) == ["alpha", "beta"]
    assert index.search("beta") == set()
    assert index.search("gamma") == {"d2"}
    assert index.vocabulary_size == 3


def test_remove_document_after_reindex_uses_fresh_terms():
    index = InvertedIndex()
    index.add_document("d1", "alpha beta")
    index.add_document("d1", "gamma")  # re-index replaces the old terms
    assert index.search("alpha") == set()
    index.remove_document("d1")
    assert index.vocabulary_size == 0
    assert len(index) == 0


def test_document_contains_probe_matches_search():
    index = InvertedIndex()
    index.add_document("d1", "alpha beta gamma")
    index.add_document("d2", "beta delta")
    for query in ("alpha", "beta", "alpha beta", "delta epsilon", ""):
        for mode in ("and", "or"):
            expected = index.search(query, mode=mode)
            for doc_id in ("d1", "d2", "ghost"):
                assert index.document_contains(doc_id, query, mode=mode) == (
                    doc_id in expected
                ), (query, mode, doc_id)
