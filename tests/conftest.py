"""Shared pytest fixtures for the Graphitti test suite."""

import random
import sys

import pytest

from repro.analysis.runtime import RACE_SWITCH_INTERVAL, race_enabled


def pytest_configure(config):
    # Seeded race-stress mode (REPRO_ANALYSIS_RACE=1): shrink the interpreter
    # switch interval for the whole run so thread interleavings are maximally
    # hostile; the race tests additionally barrier-align their thread starts
    # and scale up their iteration counts (see repro.analysis.runtime).
    if race_enabled():
        sys.setswitchinterval(RACE_SWITCH_INTERVAL)

from repro import Graphitti
from repro.datatypes import DnaSequence, Image, ProteinSequence
from repro.ontology import build_brain_region_ontology, build_protein_ontology
from repro.workloads import build_influenza_instance, build_neuroscience_instance
from repro.workloads.generators import WorkloadConfig, generate_annotation_workload


@pytest.fixture
def rng():
    """A deterministic RNG."""
    return random.Random(20240617)


@pytest.fixture
def empty_graphitti():
    """A Graphitti instance with the two built-in ontologies registered."""
    graphitti = Graphitti("test")
    graphitti.register_ontology(build_protein_ontology())
    graphitti.register_ontology(build_brain_region_ontology())
    return graphitti


@pytest.fixture
def small_graphitti(empty_graphitti):
    """A Graphitti instance with a sequence, an image and two annotations."""
    graphitti = empty_graphitti
    graphitti.register(DnaSequence("seq1", "ACGT" * 50, domain="chr1"))
    graphitti.register(ProteinSequence("prot1", "ACDEFGHIKLMNPQRSTVWY" * 5, domain="prot1:dom"))
    graphitti.register(Image("img1", dimension=2, space="atlas:25um", size=(100, 100)))
    (
        graphitti.new_annotation("a1", keywords=["protease"], body="a protease site")
        .mark_sequence("seq1", 10, 40, ontology_terms=["protein:protease"])
        .mark_region("img1", (10, 10), (40, 40), ontology_terms=["Deep Cerebellar nuclei"])
        .commit()
    )
    (
        graphitti.new_annotation("a2", keywords=["kinase"], body="a kinase site")
        .mark_sequence("seq1", 10, 40)
        .commit()
    )
    return graphitti


@pytest.fixture
def influenza():
    """The Fig. 1 influenza study instance."""
    return build_influenza_instance()


@pytest.fixture
def neuroscience():
    """The Fig. 3 neuroscience study instance."""
    return build_neuroscience_instance()


@pytest.fixture
def workload_graphitti():
    """A Graphitti instance populated with a small synthetic workload."""
    graphitti = Graphitti("workload")
    config = WorkloadConfig(seed=42, sequence_count=8, annotation_count=60, image_count=3)
    summary = generate_annotation_workload(graphitti, config)
    return graphitti, summary
