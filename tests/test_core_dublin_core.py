"""Tests for Dublin Core metadata."""

from repro.core.dublin_core import DC_ELEMENTS, DublinCore


def test_keywords():
    dc = DublinCore(subject=["protease", "cleavage"])
    assert dc.keywords() == ["protease", "cleavage"]


def test_to_elements_skips_empty():
    dc = DublinCore(title="T", creator="")
    tags = {element.tag for element in dc.to_elements()}
    assert "dc:title" in tags
    assert "dc:creator" not in tags


def test_to_elements_multi_subject():
    dc = DublinCore(subject=["a", "b"])
    subjects = [e for e in dc.to_elements() if e.tag == "dc:subject"]
    assert len(subjects) == 2


def test_from_elements_roundtrip():
    dc = DublinCore(title="T", creator="alice", subject=["x", "y"], description="d")
    restored = DublinCore.from_elements(dc.to_elements())
    assert restored.title == "T"
    assert restored.creator == "alice"
    assert restored.subject == ["x", "y"]


def test_to_dict_covers_all_elements():
    dc = DublinCore(title="T")
    payload = dc.to_dict()
    for element in DC_ELEMENTS:
        assert element in payload


def test_from_elements_ignores_non_dc():
    from repro.xmlstore.document import XmlElement

    dc = DublinCore.from_elements([XmlElement("notdc", text="x"), XmlElement("dc:title", text="T")])
    assert dc.title == "T"


def test_from_dict_tolerates_null_and_scalar_fields():
    """Codec robustness: older/hand-edited payloads may hold null or scalar
    values where lists are expected; decoding must not crash or char-split."""
    from repro.core.dublin_core import DublinCore

    core = DublinCore.from_dict({"subject": None, "title": None})
    assert core.subject == [] and core.title == ""
    core = DublinCore.from_dict({"subject": "influenza", "contributor": ["a", "b"]})
    assert core.subject == ["influenza"]
    assert core.contributor == ["a", "b"]
