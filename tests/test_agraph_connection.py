"""Tests for the connection subgraph value object."""

from repro.agraph.connection import ConnectionSubgraph
from repro.agraph.multigraph import Edge


def test_empty_connection():
    subgraph = ConnectionSubgraph(terminals=("a", "b"))
    assert not subgraph.is_connected
    assert subgraph.node_count == 0


def test_add_path():
    subgraph = ConnectionSubgraph(terminals=("a", "c"), nodes={"a"})
    edge1 = Edge("a", "b", "x")
    edge2 = Edge("b", "c", "x")
    subgraph.add_path(["a", "b", "c"], [edge1, edge2])
    assert subgraph.is_connected
    assert subgraph.node_count == 3
    assert subgraph.edge_count == 2
    assert subgraph.intervening_nodes == {"b"}


def test_add_path_deduplicates_edges():
    subgraph = ConnectionSubgraph(terminals=("a", "b"), nodes={"a"})
    edge = Edge("a", "b", "x")
    subgraph.add_path(["a", "b"], [edge])
    subgraph.add_path(["a", "b"], [edge])
    assert subgraph.edge_count == 1


def test_merge():
    first = ConnectionSubgraph(terminals=("a", "b"), nodes={"a", "b"}, edges=[Edge("a", "b", "x")])
    second = ConnectionSubgraph(terminals=("b", "c"), nodes={"b", "c"}, edges=[Edge("b", "c", "y")])
    first.merge(second)
    assert first.node_count == 3
    assert first.edge_count == 2


def test_to_dict():
    subgraph = ConnectionSubgraph(terminals=("a", "b"), nodes={"a", "b"}, edges=[Edge("a", "b", "x")])
    payload = subgraph.to_dict()
    assert payload["connected"] is True
    assert payload["terminals"] == ["a", "b"]
    assert len(payload["edges"]) == 1
