"""Tests for coordinate systems and the registry."""

import pytest

from repro.errors import CoordinateSystemError
from repro.spatial.coordinate import (
    CoordinateKind,
    CoordinateSystem,
    CoordinateSystemRegistry,
)


def test_kind_dimensions():
    assert CoordinateKind.LINEAR.dimension == 1
    assert CoordinateKind.PLANAR.dimension == 2
    assert CoordinateKind.VOLUMETRIC.dimension == 3


def test_linear_extent_validation():
    system = CoordinateSystem("chr1", CoordinateKind.LINEAR, extent=(0, 100))
    system.validate_interval(10, 20)
    with pytest.raises(CoordinateSystemError):
        system.validate_interval(10, 200)


def test_linear_rejects_inverted_extent():
    with pytest.raises(CoordinateSystemError):
        CoordinateSystem("c", CoordinateKind.LINEAR, extent=(50, 0))


def test_validate_interval_on_non_linear():
    system = CoordinateSystem("atlas", CoordinateKind.PLANAR)
    with pytest.raises(CoordinateSystemError):
        system.validate_interval(1, 2)


def test_planar_box_validation():
    system = CoordinateSystem("atlas", CoordinateKind.PLANAR, extent=((0, 100), (0, 100)))
    system.validate_box((10, 10), (20, 20))
    with pytest.raises(CoordinateSystemError):
        system.validate_box((10, 10), (200, 20))


def test_box_dimension_mismatch():
    system = CoordinateSystem("atlas", CoordinateKind.PLANAR)
    with pytest.raises(CoordinateSystemError):
        system.validate_box((1, 1, 1), (2, 2, 2))


def test_volumetric_extent_axes():
    with pytest.raises(CoordinateSystemError):
        CoordinateSystem("vol", CoordinateKind.VOLUMETRIC, extent=((0, 1), (0, 1)))


def test_registry_register_and_get():
    registry = CoordinateSystemRegistry()
    registry.linear("chr1", extent=(0, 1000))
    assert "chr1" in registry
    assert registry.get("chr1").kind is CoordinateKind.LINEAR


def test_registry_idempotent():
    registry = CoordinateSystemRegistry()
    first = registry.linear("chr1", extent=(0, 1000))
    second = registry.linear("chr1", extent=(0, 1000))
    assert first is second


def test_registry_conflict():
    registry = CoordinateSystemRegistry()
    registry.linear("chr1", extent=(0, 1000))
    with pytest.raises(CoordinateSystemError):
        registry.linear("chr1", extent=(0, 2000))


def test_registry_unknown():
    registry = CoordinateSystemRegistry()
    with pytest.raises(CoordinateSystemError):
        registry.get("missing")


def test_registry_planar_volumetric():
    registry = CoordinateSystemRegistry()
    registry.planar("atlas", resolution="25um")
    registry.volumetric("volume")
    assert registry.get("atlas").kind is CoordinateKind.PLANAR
    assert registry.get("volume").kind is CoordinateKind.VOLUMETRIC
    assert set(registry.names()) == {"atlas", "volume"}


def test_coordinate_system_roundtrip():
    system = CoordinateSystem("atlas", CoordinateKind.PLANAR, extent=((0, 10), (0, 20)), resolution="25um")
    restored = CoordinateSystem.from_dict(system.to_dict())
    assert restored == system
