"""Tests for relational grouping and aggregation."""

import pytest

from repro.errors import RelationalError
from repro.relational.aggregate import (
    Aggregate,
    aggregate_all,
    avg,
    collect,
    count,
    group_by,
    max_,
    min_,
    sum_,
)


ROWS = [
    {"org": "chicken", "len": 100, "subtype": "H5N1"},
    {"org": "chicken", "len": 200, "subtype": "H5N1"},
    {"org": "duck", "len": 300, "subtype": "H5N1"},
    {"org": "duck", "len": None, "subtype": "H1N1"},
]


def test_count_rows():
    result = group_by(ROWS, ["org"], [count()])
    counts = {row["org"]: row["count"] for row in result}
    assert counts == {"chicken": 2, "duck": 2}


def test_count_non_null_column():
    result = group_by(ROWS, ["org"], [count("len")])
    counts = {row["org"]: row["count_len"] for row in result}
    assert counts == {"chicken": 2, "duck": 1}


def test_sum_and_avg():
    result = group_by(ROWS, ["org"], [sum_("len"), avg("len")])
    by_org = {row["org"]: row for row in result}
    assert by_org["chicken"]["sum_len"] == 300
    assert by_org["chicken"]["avg_len"] == 150


def test_min_max():
    result = group_by(ROWS, ["org"], [min_("len"), max_("len")])
    by_org = {row["org"]: row for row in result}
    assert by_org["chicken"]["min_len"] == 100
    assert by_org["chicken"]["max_len"] == 200


def test_collect():
    result = group_by(ROWS, ["org"], [collect("len")])
    by_org = {row["org"]: row["collect_len"] for row in result}
    assert sorted(by_org["chicken"]) == [100, 200]


def test_alias():
    result = group_by(ROWS, ["org"], [count().as_("n")])
    assert "n" in result[0]


def test_having():
    result = group_by(ROWS, ["org"], [count()], having=lambda row: row["count"] > 2)
    assert result == []
    result2 = group_by(ROWS, ["subtype"], [count()], having=lambda row: row["count"] >= 3)
    assert len(result2) == 1 and result2[0]["subtype"] == "H5N1"


def test_multi_key_group():
    result = group_by(ROWS, ["org", "subtype"], [count()])
    assert len(result) == 3  # chicken/H5N1, duck/H5N1, duck/H1N1


def test_groups_sorted():
    result = group_by(ROWS, ["org"], [count()])
    assert [row["org"] for row in result] == ["chicken", "duck"]


def test_aggregate_all():
    result = aggregate_all(ROWS, [count(), sum_("len")])
    assert result["count"] == 4
    assert result["sum_len"] == 600


def test_empty_group_avg_none():
    rows = [{"g": "x", "v": None}]
    result = group_by(rows, ["g"], [avg("v")])
    assert result[0]["avg_v"] is None


def test_unknown_aggregate():
    with pytest.raises(RelationalError):
        Aggregate("median", "len").compute(ROWS)


def test_integration_with_table():
    from repro.relational.schema import Column, ColumnType, TableSchema
    from repro.relational.table import Table

    table = Table(
        TableSchema(
            "iso",
            [Column("id", ColumnType.INTEGER, nullable=False), Column("org", ColumnType.TEXT), Column("len", ColumnType.INTEGER)],
            primary_key="id",
        )
    )
    table.insert_many([
        {"id": 1, "org": "chicken", "len": 100},
        {"id": 2, "org": "chicken", "len": 200},
        {"id": 3, "org": "duck", "len": 300},
    ])
    result = group_by(table.select(), ["org"], [count(), avg("len")])
    by_org = {row["org"]: row for row in result}
    assert by_org["chicken"]["count"] == 2
    assert by_org["duck"]["avg_len"] == 300
