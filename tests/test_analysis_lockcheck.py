"""The lock-discipline checker catches its seeded fixture and passes the twin."""

from pathlib import Path

from repro.analysis.lockcheck import check_lock_discipline

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def _fixture_files(name: str) -> list[Path]:
    return sorted((FIXTURES / name).glob("*.py"))


def test_bad_fixture_triggers_every_lock_rule():
    findings = check_lock_discipline(_fixture_files("lock_bad"))
    rules = sorted(f.rule for f in findings)
    assert rules == ["lock-discipline", "lock-discipline", "lock-io"]

    by_line = {f.line: f for f in findings}
    # @mutates_state with no acquisition anywhere in its body.
    assert any("never acquires the write lock" in f.message for f in findings)
    # @requires_write_lock call site with no dominating with-block.
    assert any("not dominated" in f.message for f in findings)
    # Blocking fsync inside the write-locked region.
    io = [f for f in findings if f.rule == "lock-io"]
    assert len(io) == 1 and "fsync" in io[0].message
    assert all(f.path.endswith("service_mod.py") for f in by_line.values())


def test_good_fixture_is_clean():
    assert check_lock_discipline(_fixture_files("lock_good")) == []


def test_io_under_lock_ok_is_load_bearing(tmp_path):
    # Strip the decorator from the good twin's reviewed exception: the same
    # fsync that was whitelisted must now be a lock-io finding.
    source = (FIXTURES / "lock_good" / "service_mod.py").read_text()
    stripped = source.replace("    @io_under_lock_ok\n", "")
    assert stripped != source
    target = tmp_path / "service_mod.py"
    target.write_text(stripped)
    findings = check_lock_discipline([target])
    # Two sightings of the same root cause: the fsync inside the (now
    # unreviewed) @requires_write_lock body, and the transitive trace from
    # the locked caller that routes through it.
    assert {f.rule for f in findings} == {"lock-io"}
    assert len(findings) == 2
    assert all("fsync" in f.message for f in findings)


def test_requires_decorator_is_load_bearing(tmp_path):
    # Without @requires_write_lock on the helper, the unlocked call site in
    # the bad twin is no longer provably wrong — only the mutator-level and
    # io rules remain.  This pins that findings come from the annotations,
    # not from name heuristics.
    source = (FIXTURES / "lock_bad" / "service_mod.py").read_text()
    stripped = source.replace("    @requires_write_lock\n", "")
    assert stripped != source
    target = tmp_path / "service_mod.py"
    target.write_text(stripped)
    rules = sorted(f.rule for f in check_lock_discipline([target]))
    assert rules == ["lock-discipline", "lock-io"]


def test_transitive_blocking_call_is_traced(tmp_path):
    target = tmp_path / "service_mod.py"
    target.write_text(
        '''
import os

from repro.analysis.annotations import mutates_state
from repro.service.locks import ReadWriteLock


class Svc:
    def __init__(self):
        self._lock = ReadWriteLock()

    @mutates_state
    def snapshot(self):
        with self._lock.write_locked():
            self._serialize_all()

    def _serialize_all(self):
        self._land()

    def _land(self):
        os.fsync(3)
'''
    )
    findings = check_lock_discipline([target])
    io = [f for f in findings if f.rule == "lock-io"]
    assert len(io) == 1
    assert "_serialize_all -> _land -> fsync" in io[0].message
