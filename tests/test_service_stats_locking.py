"""Regression pins for the stats/metrics read-path locking audit.

Three bugs were found by the lock audit and fixed; each test here fails on
the pre-fix code:

* ``statistics()`` merged ``_service_stats()`` into the report *outside* the
  read view — the merge could interleave with a concurrent writer and mix
  two mutation epochs in one report.
* ``metrics()`` refreshed storage/WAL gauges with no lock at all — a scrape
  could race a compaction swapping the column arrays out.
* ``_service_stats()`` read ``len(self._plans)`` without ``_plans_mutex`` —
  racing a concurrent ``_prepare`` eviction.
"""

from collections import OrderedDict

from repro.obs import ObservabilityConfig
from repro.service import GraphittiService, ServiceConfig


def _open(tmp_path, **config):
    return GraphittiService.open(tmp_path / "svc", config=ServiceConfig(**config))


def test_statistics_merges_service_stats_under_the_read_view(tmp_path):
    service = _open(tmp_path)
    try:
        seen = []
        original = service._service_stats

        def probing_service_stats():
            seen.append(service._lock.snapshot())
            return original()

        service._service_stats = probing_service_stats
        report = service.statistics()
        assert "service" in report
        assert seen, "statistics() never called _service_stats"
        # The direct call from statistics() must run as a reader.  (The
        # stats-provider path through manager.statistics() is also in
        # `seen`; every recorded snapshot must hold the read lock.)
        assert all(snap["active_readers"] >= 1 for snap in seen), seen
    finally:
        service.close()


def test_metrics_refreshes_gauges_under_the_read_lock(tmp_path):
    service = _open(tmp_path, observability=ObservabilityConfig(enabled=True))
    try:
        seen = []
        original = service._refresh_storage_gauges

        def probing_refresh():
            seen.append(service._lock.snapshot())
            return original()

        service._refresh_storage_gauges = probing_refresh
        snapshot = service.metrics()
        assert snapshot["enabled"] is True
        assert seen, "metrics() never refreshed the storage gauges"
        assert all(snap["active_readers"] >= 1 for snap in seen), seen
    finally:
        service.close()


class _MutexAssertingPlans(OrderedDict):
    """A plan memo whose __len__ insists the memo mutex is held."""

    def __init__(self, mutex):
        super().__init__()
        self._probe_mutex = mutex
        self.probed = 0

    def __len__(self):
        assert self._probe_mutex.locked(), "len(self._plans) read without _plans_mutex"
        self.probed += 1
        return super().__len__()


def test_service_stats_reads_plan_memo_under_its_mutex(tmp_path):
    service = _open(tmp_path)
    try:
        plans = _MutexAssertingPlans(service._plans_mutex)
        service._plans = plans
        stats = service._service_stats()
        assert stats["service"]["prepared_plans"] == 0
        assert plans.probed >= 1
    finally:
        service.close()


def test_statistics_still_reports_service_counters_end_to_end(tmp_path):
    # The lock fixes must not change the report shape.
    service = _open(tmp_path)
    try:
        report = service.statistics()
        section = report["service"]
        assert {"query_cache", "prepared_plans", "ops_since_checkpoint", "durable"} <= set(section)
        assert section["durable"] is True
    finally:
        service.close()
