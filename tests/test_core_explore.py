"""Tests for the manager's graph-analytics-backed explore methods."""

import pytest

from repro import Graphitti
from repro.datatypes import DnaSequence


def build():
    g = Graphitti("explore")
    g.register(DnaSequence("seq", "ACGT" * 100, domain="chr1"))
    # a1 and a2 share the same region; a3 is on a different region
    g.new_annotation("a1").mark_sequence("seq", 10, 40).commit()
    g.new_annotation("a2").mark_sequence("seq", 10, 40).commit()
    g.new_annotation("a3").mark_sequence("seq", 200, 240).commit()
    return g


def test_graph_metrics_accessor():
    g = build()
    metrics = g.graph_metrics()
    assert metrics.average_degree() > 0


def test_similar_annotations():
    g = build()
    similar = g.similar_annotations("a1")
    assert similar
    assert similar[0][0] == "a2"
    assert similar[0][1] == pytest.approx(1.0)  # identical referent sets


def test_similar_excludes_self():
    g = build()
    similar = g.similar_annotations("a1")
    assert all(other != "a1" for other, _ in similar)


def test_similar_none_for_isolated():
    g = build()
    assert g.similar_annotations("a3") == []


def test_report_includes_graph_analytics():
    from repro.workloads.reporting import study_report

    report = study_report(build())
    assert "## Graph analytics" in report
    assert "average node degree" in report
