"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_scenarios(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "influenza" in out
    assert "neuroscience" in out


def test_build_and_stats(tmp_path, capsys):
    path = str(tmp_path / "flu.json")
    assert main(["build", "influenza", path]) == 0
    capsys.readouterr()
    assert main(["stats", path]) == 0
    out = capsys.readouterr().out
    assert "annotations: 4" in out


def test_build_neuroscience(tmp_path, capsys):
    path = str(tmp_path / "neuro.json")
    assert main(["build", "neuroscience", path]) == 0
    out = capsys.readouterr().out
    assert "neuroscience" in out


def test_admin(tmp_path, capsys):
    path = str(tmp_path / "flu.json")
    main(["build", "influenza", path])
    capsys.readouterr()
    assert main(["admin", path]) == 0
    out = capsys.readouterr().out
    assert "integrity" in out
    assert "index economy" in out
    assert "leaderboard" in out


def test_query(tmp_path, capsys):
    path = str(tmp_path / "flu.json")
    main(["build", "influenza", path])
    capsys.readouterr()
    assert main(["query", path, 'SELECT contents WHERE { CONTENT CONTAINS "cleavage" }']) == 0
    out = capsys.readouterr().out
    assert "result count: 2" in out
    assert "flu-a1" in out


def test_query_syntax_error(tmp_path, capsys):
    path = str(tmp_path / "flu.json")
    main(["build", "influenza", path])
    capsys.readouterr()
    assert main(["query", path, "NOT VALID GQL"]) == 1
    err = capsys.readouterr().err
    assert "query error" in err


def test_query_graph_return(tmp_path, capsys):
    path = str(tmp_path / "neuro.json")
    main(["build", "neuroscience", path])
    capsys.readouterr()
    main(["query", path, 'SELECT graph WHERE { REFERENT REFERS "Deep Cerebellar nuclei" }'])
    out = capsys.readouterr().out
    assert "subgraph" in out


def test_update_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "flu.json")
    main(["build", "influenza", path])
    capsys.readouterr()
    assert (
        main(
            [
                "update", path, "flu-a1",
                "--title", "revised cleavage note",
                "--keywords", "cleavage,curated-edit",
                "--body", "refined by the command line",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "updated flu-a1" in out
    assert main(["query", path, 'SELECT contents WHERE { CONTENT CONTAINS "curated-edit" }']) == 0
    out = capsys.readouterr().out
    assert "result count: 1" in out
    assert "flu-a1" in out


def test_update_requires_a_change(tmp_path, capsys):
    path = str(tmp_path / "flu.json")
    main(["build", "influenza", path])
    capsys.readouterr()
    assert main(["update", path, "flu-a1"]) == 2
    assert "nothing to update" in capsys.readouterr().err


def test_delete_object_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "flu.json")
    main(["build", "influenza", path])
    capsys.readouterr()
    assert main(["delete-object", path, "HA_duck"]) == 0
    out = capsys.readouterr().out
    assert "cascaded 1 annotation(s)" in out
    assert main(["stats", path]) == 0
    assert "annotations: 3" in capsys.readouterr().out


def test_delete_object_no_cascade_refuses(tmp_path, capsys):
    path = str(tmp_path / "flu.json")
    main(["build", "influenza", path])
    capsys.readouterr()
    assert main(["delete-object", path, "HA_duck", "--no-cascade"]) == 1
    assert "error:" in capsys.readouterr().err
    # the snapshot is untouched
    assert main(["stats", path]) == 0
    assert "annotations: 4" in capsys.readouterr().out


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_serve_fresh_and_reopen(tmp_path, capsys):
    root = str(tmp_path / "served")
    args = [
        "serve", root, "--scenario", "influenza",
        "--readers", "2", "--writers", "1", "--queries", "20", "--commits", "6",
        "--durability", "never",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "opened fresh instance" in out
    assert "cache:" in out and "checkpoints:" in out
    # Second invocation recovers the durable state and keeps serving.
    assert main([
        "serve", root, "--readers", "2", "--writers", "1",
        "--queries", "10", "--commits", "4", "--durability", "never",
    ]) == 0
    out = capsys.readouterr().out
    assert "recovered instance" in out


def test_serve_help_lists_options():
    parser = build_parser()
    args = parser.parse_args(["serve", "somewhere"])
    assert args.readers == 4 and args.durability == "always"
    assert args.shards is None  # unset; a sharded root's manifest decides


def test_serve_sharded_fresh_then_reopen_without_flag(tmp_path, capsys):
    """Regression: reopening a sharded root WITHOUT --shards must adopt the
    manifest and serve the shards — not open a fresh empty unsharded
    instance next to them."""
    root = str(tmp_path / "sharded-served")
    assert main([
        "serve", root, "--shards", "3",
        "--readers", "2", "--writers", "1", "--queries", "12", "--commits", "4",
        "--durability", "never",
    ]) == 0
    out = capsys.readouterr().out
    assert "opened fresh 3-shard instance" in out
    assert "shards: 3" in out

    # no --shards on reopen: the manifest wins and prior state is served
    assert main([
        "serve", root, "--readers", "1", "--writers", "1",
        "--queries", "6", "--commits", "2", "--durability", "never",
    ]) == 0
    out = capsys.readouterr().out
    assert "recovered 3-shard instance" in out

    # an explicitly conflicting count is refused, not silently resharded
    assert main([
        "serve", root, "--shards", "2",
        "--readers", "1", "--writers", "1", "--queries", "2", "--commits", "1",
    ]) == 1


def test_serve_net_flags_have_defaults():
    parser = build_parser()
    args = parser.parse_args(["serve", "somewhere", "--net"])
    assert args.net is True
    assert args.port_base is None
    assert args.heartbeat_interval == 0.5
    assert args.max_inflight == 64
    worker = parser.parse_args(["shard-worker", "somewhere", "--shard-index", "2"])
    assert worker.shard_index == 2 and worker.port == 0
    assert worker.func.__name__ == "_cmd_shard_worker"


def test_serve_net_spawns_workers_and_metrics_net_reads_them(tmp_path, capsys):
    root = str(tmp_path / "net-served")
    assert main([
        "serve", root, "--net", "--shards", "2",
        "--readers", "1", "--writers", "1", "--queries", "5", "--commits", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "shard worker process(es) over TCP" in out
    assert "annotations served:" in out
    # The same root reopens through worker processes for metrics sampling.
    assert main(["metrics", root, "--net", "--exercise", "1"]) == 0
    out = capsys.readouterr().out
    assert '"rpc.requests"' in out


def test_metrics_net_refuses_an_unsharded_root(tmp_path, capsys):
    root = str(tmp_path / "plain")
    assert main(["build", "influenza", root + "/instance.json"]) == 0
    capsys.readouterr()
    assert main(["metrics", str(tmp_path / "missing"), "--net"]) == 1
