"""Threaded scatter deadline: one hung shard cannot hang the merge.

``ServiceConfig.scatter_deadline_s`` gives the threaded facade the same
bounded-waiting contract the network facade gets from per-op socket
deadlines — and it fails with the same typed error
(:class:`ShardTimeoutError`), so callers handle a hung local shard and a
slow remote worker identically.
"""

import time

import pytest

from repro.errors import ShardTimeoutError
from repro.service import ServiceConfig
from repro.shard import ShardedGraphittiService

from test_shard_service import PROBES, populate


def _hang(service, shard_index, delay=1.0):
    """Make one shard's query block for *delay* seconds."""
    original = service.shards[shard_index].query

    def slow_query(text):
        time.sleep(delay)
        return original(text)

    service.shards[shard_index].query = slow_query


def test_no_deadline_by_default():
    service = ShardedGraphittiService(shards=2, name="deadline-off")
    assert service.config.scatter_deadline_s is None
    populate(service, count=8)
    _hang(service, 1, delay=0.2)
    # Without a deadline the scatter simply waits the 0.2s out.
    assert service.query(PROBES[0]).count > 0
    service.close()


def test_hung_shard_raises_typed_timeout():
    config = ServiceConfig(scatter_deadline_s=0.15)
    service = ShardedGraphittiService(shards=2, name="deadline-on", config=config)
    populate(service, count=8)
    _hang(service, 1, delay=1.0)
    start = time.monotonic()
    with pytest.raises(ShardTimeoutError):
        service.query(PROBES[0])
    # The deadline is a whole-scatter budget, not one budget per shard.
    assert time.monotonic() - start < 0.9
    service.close()


def test_generous_deadline_does_not_fire():
    config = ServiceConfig(scatter_deadline_s=5.0)
    service = ShardedGraphittiService(shards=2, name="deadline-slack", config=config)
    populate(service, count=8)
    _hang(service, 0, delay=0.05)
    result = service.query(PROBES[0])
    assert result.count > 0
    service.close()


def test_deadline_covers_the_obs_disabled_path():
    from repro.obs import ObservabilityConfig

    config = ServiceConfig(
        scatter_deadline_s=0.15, observability=ObservabilityConfig(enabled=False)
    )
    service = ShardedGraphittiService(shards=2, name="deadline-noobs", config=config)
    populate(service, count=8)
    _hang(service, 1, delay=1.0)
    with pytest.raises(ShardTimeoutError):
        service.query(PROBES[0])
    service.close()
