"""Client/server RPC behaviour over real sockets (in-process worker).

Covers the reliability contracts the network tier promises: typed remote
errors arrive as the same :class:`GraphittiError` subclass the worker
raised; a retried mutation with a duplicate idempotency key applies once
and replays the recorded ack; a full write window answers backpressure with
a Retry-After hint instead of queueing; dead-marked shards fail fast; and
per-op deadlines surface as :class:`ShardTimeoutError`.
"""

import socket

import pytest

from repro.core.manager import Graphitti
from repro.datatypes.sequence import DnaSequence
from repro.errors import (
    AnnotationError,
    BackpressureError,
    QuerySyntaxError,
    ServiceError,
    ShardTimeoutError,
    ShardUnavailableError,
)
from repro.net import RetryPolicy, ShardClient, ShardWorkerServer
from repro.service import GraphittiService

FAST_RETRY = RetryPolicy(attempts=3, base_backoff_s=0.001, max_backoff_s=0.005)


@pytest.fixture
def rig():
    service = GraphittiService(manager=Graphitti("rpc-test", id_namespace="s00"))
    server = ShardWorkerServer(service, shard_index=0, max_inflight=4, retry_after_s=0.001)
    host, port = server.start()
    client = ShardClient(0, host, port, retry=FAST_RETRY, op_timeout_s=5.0)
    seq = DnaSequence("chr1", "ACGT" * 100, domain="rpc:chr1")
    service.register(seq)
    yield service, server, client
    client.close()
    server.stop()
    service.close()


def _builder(service, title="probe", keywords=("alpha",)):
    return service.new_annotation(title=title, keywords=list(keywords)).mark_sequence(
        "chr1", 5, 40
    )


def test_round_trip_commit_and_reads(rig):
    service, _server, client = rig
    annotation = client.commit(_builder(service).build())
    assert client.holds(annotation.annotation_id)
    fetched = client.annotation(annotation.annotation_id)
    assert fetched.content.dublin_core.title == "probe"
    assert client.annotation_count == service.annotation_count == 1
    result = client.query('SELECT contents WHERE { CONTENT CONTAINS "alpha" }')
    assert result.annotation_ids == [annotation.annotation_id]
    assert client.last_wal_seq == service.last_wal_seq


def test_remote_errors_keep_their_type(rig):
    _service, _server, client = rig
    with pytest.raises(AnnotationError):
        client.annotation("no-such-annotation")
    with pytest.raises(QuerySyntaxError):
        client.query("NOT A QUERY")


def test_duplicate_idempotency_key_applies_once_with_same_ack(rig):
    # The regression the idempotency layer exists for: a retried commit
    # (ack lost to a torn frame / timeout) must not double-apply.
    service, _server, client = rig
    annotation = _builder(service).build()
    from repro.core.persistence import encode_annotation

    args = {"annotation": encode_annotation(annotation)}
    first = client._exchange_once("commit", args, idem="idem-xyz", timeout=5.0)
    second = client._exchange_once("commit", args, idem="idem-xyz", timeout=5.0)
    assert first["ok"] and second["ok"]
    assert second.get("replayed") is True
    assert "replayed" not in first
    assert second["value"] == first["value"]  # byte-for-byte the same ack
    assert service.annotation_count == 1  # applied exactly once
    assert service.obs.registry.counter("rpc.idempotent_replays").value == 1


def test_error_acks_replay_too(rig):
    # A deterministic failure (deleting a missing annotation) must replay the
    # SAME error on retry, not re-execute into a possibly different state.
    service, _server, client = rig
    args = {"annotation_id": "never-existed"}
    first = client._exchange_once("delete_annotation", args, idem="idem-err", timeout=5.0)
    second = client._exchange_once("delete_annotation", args, idem="idem-err", timeout=5.0)
    assert not first["ok"] and not second["ok"]
    assert second.get("replayed") is True
    assert second["error"] == first["error"]


def test_full_write_window_answers_backpressure(rig):
    service, server, client = rig
    server.max_inflight = 0  # every mutation finds the window full
    before = service.annotation_count
    with pytest.raises(BackpressureError) as excinfo:
        client.commit(_builder(service).build())
    assert excinfo.value.retry_after > 0
    assert service.annotation_count == before  # shed before execution
    assert service.obs.registry.counter("rpc.backpressure").value >= FAST_RETRY.attempts
    server.max_inflight = 4
    client.commit(_builder(service).build())  # drains once the window opens


def test_reads_bypass_the_write_window(rig):
    service, server, client = rig
    server.max_inflight = 0
    assert client.annotation_count == 0
    assert client.query('SELECT contents WHERE { CONTENT CONTAINS "alpha" }').count == 0


def test_dead_mark_fails_fast_without_dialing(rig):
    _service, _server, client = rig
    client.mark_dead()
    with pytest.raises(ShardUnavailableError) as excinfo:
        client.annotation_count
    assert excinfo.value.shards == (0,)
    client.mark_alive()
    assert client.annotation_count == 0


def test_unreachable_worker_exhausts_retries(rig):
    _service, server, client = rig
    server.stop()
    with pytest.raises(ShardUnavailableError):
        client.call("status")
    assert client.obs.registry.counter("rpc.transport_errors").value >= FAST_RETRY.attempts


def test_deadline_maps_to_shard_timeout():
    # A listener that accepts but never responds burns the op deadline.
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    try:
        client = ShardClient(
            0,
            "127.0.0.1",
            listener.getsockname()[1],
            retry=RetryPolicy(attempts=2, base_backoff_s=0.001, max_backoff_s=0.002),
            op_timeout_s=0.05,
        )
        with pytest.raises(ShardTimeoutError):
            client.call("status")
        client.close()
    finally:
        listener.close()


def test_ping_reports_liveness(rig):
    service, _server, client = rig
    payload = client.ping()
    assert payload["pid"] > 0
    assert payload["last_wal_seq"] == service.last_wal_seq
    client.commit(_builder(service).build())
    assert client.ping()["last_wal_seq"] == service.last_wal_seq


def test_shutdown_rpc_stops_the_server(rig):
    _service, server, client = rig
    client.shutdown()
    assert server.wait(timeout=5.0)


def test_malformed_args_answer_with_a_typed_error(rig):
    # A bad request must come back as an error response on the SAME
    # connection — not kill the worker's connection thread mid-exchange.
    _service, _server, client = rig
    with pytest.raises(ServiceError, match="malformed args"):
        client.call("query", {"text": "SELECT contents WHERE { KEYWORD IS alpha }"})
    with pytest.raises(ServiceError, match="malformed args"):
        client.call("commit", {"wrong_key": {}}, write=True)
    # The connection (and the worker) are still healthy afterwards.
    assert client.ping()["pid"] > 0
