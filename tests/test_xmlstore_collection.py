"""Tests for the document collection, keyword index, and FLWOR queries."""

import pytest

from repro.errors import XmlStoreError
from repro.xmlstore.collection import DocumentCollection
from repro.xmlstore.text_index import InvertedIndex, tokenize


def make_collection(indexed=True):
    collection = DocumentCollection("test", indexed=indexed)
    collection.add_xml(
        "<annotation><dc:subject>protease</dc:subject><body>cleavage site of protein.TP53</body></annotation>",
        doc_id="a1",
    )
    collection.add_xml(
        "<annotation><dc:subject>kinase</dc:subject><body>phosphorylation</body></annotation>",
        doc_id="a2",
    )
    collection.add_xml(
        "<annotation><dc:subject>protease</dc:subject><body>another protease comment</body></annotation>",
        doc_id="a3",
    )
    return collection


def test_add_and_get():
    collection = make_collection()
    assert len(collection) == 3
    assert "a1" in collection
    assert collection.get("a1").root.tag == "annotation"


def test_duplicate_id():
    collection = make_collection()
    with pytest.raises(XmlStoreError):
        collection.add_xml("<a/>", doc_id="a1")


def test_generated_ids():
    collection = DocumentCollection("c")
    first = collection.add_xml("<a/>")
    second = collection.add_xml("<a/>")
    assert first != second


def test_keyword_search_indexed():
    collection = make_collection(indexed=True)
    assert collection.search_keyword("protease") == ["a1", "a3"]
    assert collection.search_keyword("kinase") == ["a2"]


def test_keyword_search_unindexed_matches_indexed():
    indexed = make_collection(indexed=True)
    scanned = make_collection(indexed=False)
    assert indexed.search_keyword("protease") == scanned.search_keyword("protease")


def test_scan_keyword():
    collection = make_collection()
    assert collection.scan_keyword("protease") == ["a1", "a3"]


def test_keyword_search_dotted_term():
    collection = make_collection()
    # protein.TP53 should be findable by its parts too
    assert "a1" in collection.search_keyword("TP53")


def test_remove_updates_index():
    collection = make_collection()
    collection.remove("a1")
    assert collection.search_keyword("protease") == ["a3"]
    assert "a1" not in collection


def test_replace():
    collection = make_collection()
    from repro.xmlstore.parser import parse_xml

    collection.replace("a2", parse_xml("<annotation><body>protease now</body></annotation>"))
    assert "a2" in collection.search_keyword("protease")


def test_select_xpath():
    collection = make_collection()
    results = collection.select("//dc:subject")
    assert len(results) == 3


def test_fragments():
    collection = make_collection()
    fragments = collection.fragments("//body")
    assert len(fragments) == 3


def test_flwor_query():
    collection = make_collection()
    results = (
        collection.query()
        .for_each("//annotation")
        .where_contains("protease")
        .select(lambda binding: binding.document.doc_id)
        .execute()
    )
    assert set(results) == {"a1", "a3"}


def test_flwor_where_path_equals():
    collection = make_collection()
    results = (
        collection.query()
        .for_each("//annotation")
        .where_path_equals("dc:subject", "kinase")
        .select(lambda binding: binding.document.doc_id)
        .execute()
    )
    assert results == ["a2"]


def test_collection_save_load(tmp_path):
    collection = make_collection()
    path = collection.save(tmp_path / "c.json")
    loaded = DocumentCollection.load(path)
    assert len(loaded) == 3
    assert loaded.search_keyword("protease") == ["a1", "a3"]


def test_export_xml():
    collection = make_collection()
    xml = collection.export_xml("a1")
    assert "protease" in xml


# -- inverted index ---------------------------------------------------------


def test_tokenize_drops_stopwords():
    tokens = tokenize("the protease and the kinase")
    assert "the" not in tokens
    assert "protease" in tokens


def test_inverted_index_basic():
    index = InvertedIndex()
    index.add_document("d1", "protease cleavage")
    index.add_document("d2", "kinase activity")
    assert index.search("protease") == {"d1"}
    assert index.search("protease kinase", mode="or") == {"d1", "d2"}
    assert index.search("protease kinase", mode="and") == set()


def test_inverted_index_reindex():
    index = InvertedIndex()
    index.add_document("d1", "protease")
    index.add_document("d1", "kinase")  # re-index replaces
    assert index.search("protease") == set()
    assert index.search("kinase") == {"d1"}


def test_inverted_index_document_frequency():
    index = InvertedIndex()
    index.add_document("d1", "protease protease")
    index.add_document("d2", "protease")
    assert index.document_frequency("protease") == 2
    assert index.term_frequency("protease", "d1") == 2


def test_inverted_index_vocabulary():
    index = InvertedIndex()
    index.add_document("d1", "alpha beta gamma")
    assert index.vocabulary_size >= 3


def test_deferred_index_flushes_on_search():
    collection = make_collection()
    from repro.xmlstore.parser import parse_xml

    collection.add(parse_xml("<annotation><body>deferred protease</body></annotation>"),
                   doc_id="d1", defer_index=True)
    assert collection.pending_index_count == 1
    # The search flushes pending work first, so results are never stale.
    assert "d1" in collection.search_keyword("deferred")
    assert collection.pending_index_count == 0


def test_deferred_then_removed_never_indexed():
    collection = make_collection()
    from repro.xmlstore.parser import parse_xml

    collection.add(parse_xml("<annotation><body>ephemeral marker</body></annotation>"),
                   doc_id="d1", defer_index=True)
    collection.remove("d1")
    assert collection.pending_index_count == 0
    assert collection.search_keyword("ephemeral") == []


def test_deferred_then_replaced_indexes_new_text():
    collection = make_collection()
    from repro.xmlstore.parser import parse_xml

    collection.add(parse_xml("<annotation><body>first text</body></annotation>"),
                   doc_id="d1", defer_index=True)
    collection.replace("d1", parse_xml("<annotation><body>second text</body></annotation>"))
    assert collection.search_keyword("second") == ["d1"]
    assert collection.search_keyword("first") == []


def test_explicit_flush_index():
    collection = make_collection()
    from repro.xmlstore.parser import parse_xml

    collection.add(parse_xml("<annotation><body>flushme now</body></annotation>"),
                   doc_id="d1", defer_index=True)
    assert collection.flush_index() == 1
    assert collection.flush_index() == 0
