"""Crash-recovery tests: a WAL prefix cut at ANY record must recover cleanly.

The scripted workload below registers objects, commits, and deletes through a
durable service.  The tests then replay every possible crash point — each
record boundary and byte-level tears inside records — and assert the
recovered instance matches a serial replay of exactly the surviving records:
same statistics, same query results, clean integrity."""

import shutil

import pytest

from repro.core.manager import Graphitti
from repro.datatypes import DnaSequence
from repro.ontology import build_protein_ontology
from repro.service import GraphittiService, ServiceConfig, read_records
from repro.service.durability import apply_record, recover_manager
from repro.service.wal import WriteAheadLog

PROBE_QUERIES = (
    'SELECT contents WHERE { CONTENT CONTAINS "recovery" }',
    'SELECT contents WHERE { CONTENT CONTAINS "alpha" }',
    "SELECT contents WHERE { INTERVAL OVERLAPS rec:chr1 [0, 500] }",
)

NO_CLOSE_CHECKPOINT = ServiceConfig(checkpoint_on_close=False)


def scripted_root(tmp_path, name="scripted"):
    """Run the scripted mutation sequence; returns the root (WAL only, no
    mid-script checkpoint, so every op is a crash point)."""
    root = tmp_path / name
    service = GraphittiService.open(root, config=NO_CLOSE_CHECKPOINT)
    service.register_ontology(build_protein_ontology())
    service.register(DnaSequence("rec_seq1", "ACGT" * 200, domain="rec:chr1"))
    service.register(DnaSequence("rec_seq2", "TGCA" * 200, domain="rec:chr1", offset=800))
    for index in range(5):
        (
            service.new_annotation(
                f"rec-{index}",
                title=f"recovery annotation {index}",
                creator=f"author-{index % 2}",
                keywords=["recovery", "alpha" if index % 2 else "beta"],
                body=f"recovery scripted annotation {index}",
            )
            .mark_sequence(f"rec_seq{index % 2 + 1}", index * 30, index * 30 + 20,
                           ontology_terms=["protein:protease"] if index == 0 else ())
            .commit()
        )
    service.delete_annotation("rec-1")
    (
        service.new_annotation("rec-5", keywords=["recovery"], body="post-delete annotation")
        .mark_sequence("rec_seq1", 300, 340)
        .commit()
    )
    # The two mutation-lifecycle record types join the crash matrix: an
    # in-place update (content edit + extent move) and a cascading object
    # retirement (rec_seq2 still carries rec-3; rec-1 is already gone).
    moved = service.annotation("rec-2").referents[0].referent_id
    service.update_annotation(
        "rec-2",
        {
            "title": "recovery annotation 2 (revised)",
            "keywords": ["recovery", "revised"],
            "body": "recovery scripted annotation 2, refined by a curator",
            "move_referents": {moved: {"start": 410, "end": 440}},
        },
    )
    service.delete_object("rec_seq2")
    service.close()
    return root


def replay_reference(records):
    """Serial replay of *records* on a fresh instance (the expected state)."""
    manager = Graphitti("scripted")
    for record in records:
        apply_record(manager, record)
    return manager


def assert_equivalent(recovered, expected):
    recovered_stats = recovered.statistics()
    expected_stats = expected.statistics()
    for volatile in ("mutation_epoch", "service"):
        recovered_stats.pop(volatile, None)
        expected_stats.pop(volatile, None)
    assert recovered_stats == expected_stats
    for text in PROBE_QUERIES:
        assert recovered.query(text).annotation_ids == expected.query(text).annotation_ids
    report = recovered.check_integrity()
    assert report.ok, report.errors


def test_recover_full_log(tmp_path):
    root = scripted_root(tmp_path)
    records, torn = read_records(root / "wal.jsonl")
    # 1 ontology + 2 registers + 6 commits + 1 delete + 1 update + 1 delete_object
    assert not torn and len(records) == 12
    assert [record["op"] for record in records[-2:]] == ["update_annotation", "delete_object"]
    service = GraphittiService.recover(root)
    assert service.recovery_info["replayed"] == 12
    assert_equivalent(service.manager, replay_reference(records))
    # Recovery pre-rebuilt the component index (the delete left it stale).
    assert service.manager.agraph.graph.components_stale is False
    service.close()


def test_crash_at_every_record_boundary(tmp_path):
    root = scripted_root(tmp_path)
    records, _ = read_records(root / "wal.jsonl")
    snapshot_bytes = (root / "snapshot.json").read_bytes()
    for cut in range(1, len(records) + 1):
        crash_root = tmp_path / f"crash-{cut}"
        crash_root.mkdir()
        (crash_root / "snapshot.json").write_bytes(snapshot_bytes)
        with WriteAheadLog(crash_root / "wal.jsonl", durability="never") as wal:
            for record in records[:cut]:
                wal.append(record["op"], record["payload"])
        recovered, info = recover_manager(crash_root)
        assert info["replayed"] == cut
        assert_equivalent(recovered, replay_reference(records[:cut]))
        shutil.rmtree(crash_root)


def test_crash_mid_record_tears_tail(tmp_path):
    root = scripted_root(tmp_path)
    wal_bytes = (root / "wal.jsonl").read_bytes()
    records, _ = read_records(root / "wal.jsonl")
    # Cut a few bytes into the last record: the tail is torn, every earlier
    # record survives.
    offsets = wal_bytes.rstrip(b"\n").rfind(b"\n")
    for cut_position in (offsets + 4, len(wal_bytes) - 3):
        crash_root = tmp_path / f"tear-{cut_position}"
        crash_root.mkdir()
        (crash_root / "snapshot.json").write_bytes((root / "snapshot.json").read_bytes())
        (crash_root / "wal.jsonl").write_bytes(wal_bytes[:cut_position])
        recovered, info = recover_manager(crash_root)
        assert info["torn_tail"] is True
        assert info["replayed"] == len(records) - 1
        assert_equivalent(recovered, replay_reference(records[:-1]))
        shutil.rmtree(crash_root)


def test_crash_between_snapshot_and_truncate(tmp_path):
    """A checkpoint that crashed after the snapshot rename but before the WAL
    truncate must not double-apply: replay skips records the snapshot covers."""
    root = scripted_root(tmp_path)
    wal_bytes = (root / "wal.jsonl").read_bytes()
    records, _ = read_records(root / "wal.jsonl")

    service = GraphittiService.recover(root, config=NO_CLOSE_CHECKPOINT)
    service.checkpoint()  # snapshot written, WAL truncated
    reference_stats = service.statistics()
    service.close()
    # Undo the truncate, as if the crash hit between rename and truncate.
    (root / "wal.jsonl").write_bytes(wal_bytes)

    recovered, info = recover_manager(root)
    assert info["skipped"] == len(records)
    assert info["replayed"] == 0
    recovered_stats = recovered.statistics()
    for volatile in ("mutation_epoch", "service"):
        recovered_stats.pop(volatile, None)
        reference_stats.pop(volatile, None)
    assert recovered_stats == reference_stats


def test_recovered_instance_keeps_serving(tmp_path):
    """Recovery is not read-only: the recovered service accepts new mutations
    and logs them after the replayed history."""
    root = scripted_root(tmp_path)
    service = GraphittiService.recover(root, config=NO_CLOSE_CHECKPOINT)
    # Old objects are catalogue placeholders (no native residues), so new
    # annotations go on freshly registered objects — same as a live deployment
    # ingesting new data after a failover.
    service.register(DnaSequence("rec_seq3", "ACGT" * 150, domain="rec:chr1", offset=1600))
    (
        service.new_annotation("post-crash", keywords=["recovery"], body="committed after recovery")
        .mark_sequence("rec_seq3", 100, 140)
        .commit()
    )
    assert "post-crash" in service.query(PROBE_QUERIES[0]).annotation_ids
    service.close()
    service2 = GraphittiService.recover(root)
    assert "post-crash" in service2.query(PROBE_QUERIES[0]).annotation_ids
    assert service2.check_integrity().ok
    service2.close()


def test_recover_empty_root_raises(tmp_path):
    from repro.errors import ServiceError

    with pytest.raises(ServiceError):
        recover_manager(tmp_path / "nothing-here")


def test_wal_numbering_survives_reopen_after_checkpoint(tmp_path):
    """Regression: records appended after a close/reopen cycle must number
    ABOVE the snapshot's wal_seq, or recovery silently skips acknowledged
    mutations as already-applied."""
    root = tmp_path / "reopen"
    service = GraphittiService.open(root)
    service.register(DnaSequence("seq_a", "ACGT" * 100, domain="ro:1"))
    service.close()  # checkpoints: snapshot wal_seq > 0, WAL truncated

    service = GraphittiService.open(root, config=NO_CLOSE_CHECKPOINT)
    base_seq = service._store._snapshot_wal_seq()
    assert base_seq > 0
    service.register(DnaSequence("seq_b", "TGCA" * 100, domain="ro:1", offset=400))
    (
        service.new_annotation("reopen-1", keywords=["reopened"], body="after reopen")
        .mark_sequence("seq_b", 10, 40)
        .commit()
    )
    service.close()  # no checkpoint: the new records stay in the WAL

    records, _ = read_records(root / "wal.jsonl")
    assert all(record["seq"] > base_seq for record in records)
    recovered, info = recover_manager(root)
    assert info["skipped"] == 0
    assert info["replayed"] == len(records) == 2
    assert "seq_b" in recovered.registry
    assert recovered.annotation("reopen-1").content.keywords() == ["reopened"]


def test_crash_tears_checkpoint_boundary_record(tmp_path):
    """Crash matrix: the torn tail IS the checkpoint-boundary record.

    A checkpoint that crashed between the snapshot rename and the WAL
    truncate leaves the full log behind; if the crash additionally tore the
    log's final line — the very record the snapshot's ``wal_seq`` points at —
    recovery must neither lose that record's effects (the snapshot covers
    them) nor double-apply any earlier record, and the reopened WAL must
    keep numbering above the snapshot's mark."""
    import json

    root = scripted_root(tmp_path)
    records, _ = read_records(root / "wal.jsonl")

    service = GraphittiService.recover(root, config=NO_CLOSE_CHECKPOINT)
    reference_stats = service.statistics()
    service.checkpoint()  # snapshot embeds wal_seq == records[-1]["seq"]
    boundary_seq = json.loads((root / "snapshot.json").read_text())["wal_seq"]
    assert boundary_seq == records[-1]["seq"]
    service.close()

    # Undo the truncate and tear the boundary record's line.
    wal_path = root / "wal.jsonl"
    with WriteAheadLog(wal_path, durability="never") as wal:
        for record in records:
            wal.append(record["op"], record["payload"])
    raw = wal_path.read_bytes()
    cut = raw.rstrip(b"\n").rfind(b"\n") + 5  # a few bytes into the last line
    wal_path.write_bytes(raw[:cut])

    recovered, info = recover_manager(root)
    assert info["torn_tail"] is True
    assert info["replayed"] == 0  # everything is snapshot-covered
    assert info["skipped"] == len(records) - 1
    recovered_stats = recovered.statistics()
    for volatile in ("mutation_epoch", "service"):
        recovered_stats.pop(volatile, None)
        reference_stats.pop(volatile, None)
    assert recovered_stats == reference_stats

    # Reopening must not mis-advance (or regress) wal_seq: the next append
    # lands strictly above the snapshot's boundary mark.
    service = GraphittiService.recover(root, config=NO_CLOSE_CHECKPOINT)
    assert service._store.wal.last_seq == boundary_seq
    service.register(DnaSequence("rec_seq9", "ACGT" * 50, domain="rec:chr1", offset=4000))
    service.close()
    post_records, _ = read_records(root / "wal.jsonl")
    assert post_records[-1]["seq"] == boundary_seq + 1
    recovered, info = recover_manager(root)
    assert info["replayed"] == 1  # the new record is NOT skipped
    assert "rec_seq9" in recovered.registry


def test_snapshotless_torn_only_wal_recovers_to_fresh(tmp_path):
    """Crash matrix: the very first append tore and no snapshot exists.

    Nothing was ever acknowledged, so recovery must hand back an empty
    instance (and report the torn tail) instead of refusing to open."""
    root = tmp_path / "first-append"
    root.mkdir()
    (root / "wal.jsonl").write_bytes(b'{"seq": 1, "op": "comm')  # torn mid-append

    recovered, info = recover_manager(root)
    assert info == {
        "snapshot": False,
        "base_seq": 0,
        "replayed": 0,
        "skipped": 0,
        "torn_tail": True,
    }
    assert recovered.annotation_count == 0

    service = GraphittiService.open(root, config=NO_CLOSE_CHECKPOINT)
    assert service.recovery_info is not None
    assert service.recovery_info["torn_tail"] is True
    service.register(DnaSequence("fresh_seq", "ACGT" * 50, domain="fa:1"))
    service.close()
    records, torn = read_records(root / "wal.jsonl")
    assert not torn and [record["seq"] for record in records] == [1]


def test_non_monotonic_wal_seq_is_corruption(tmp_path):
    """A repeated or regressing seq means acknowledged history was rewritten;
    silently replaying it would double-apply — recovery must refuse."""
    from repro.errors import WalCorruptionError

    root = scripted_root(tmp_path)
    wal_path = root / "wal.jsonl"
    records, _ = read_records(wal_path)
    lines = wal_path.read_bytes().splitlines(keepends=True)
    # duplicate the first commit record's line at the end (a doctored log)
    wal_path.write_bytes(b"".join(lines) + lines[3])
    with pytest.raises(WalCorruptionError):
        recover_manager(root)


def test_open_reports_torn_tail(tmp_path):
    """Regression: open() must not silently repair a torn WAL tail before
    recovery gets to see (and report) it."""
    root = scripted_root(tmp_path)
    wal_path = root / "wal.jsonl"
    wal_path.write_bytes(wal_path.read_bytes()[:-7])  # crash mid-append
    service = GraphittiService.open(root, config=NO_CLOSE_CHECKPOINT)
    assert service.recovery_info is not None
    assert service.recovery_info["torn_tail"] is True
    assert service.check_integrity().ok
    service.close()
