"""Tests for the epoch-tagged LRU query-result cache."""

import pytest

from repro.service.cache import QueryResultCache, normalize_gql


def test_normalize_gql_collapses_whitespace():
    a = normalize_gql('SELECT contents WHERE { CONTENT CONTAINS "x" }')
    b = normalize_gql('  SELECT   contents\nWHERE  { CONTENT CONTAINS "x" }  ')
    assert a == b
    # Content differences survive normalization.
    assert a != normalize_gql('SELECT contents WHERE { CONTENT CONTAINS "y" }')


def test_hit_and_miss():
    cache = QueryResultCache(capacity=4)
    assert cache.get("k", epoch=1) is None
    cache.put("k", epoch=1, value="v")
    assert cache.get("k", epoch=1) == "v"
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_epoch_bump_invalidates():
    cache = QueryResultCache(capacity=4)
    cache.put("k", epoch=1, value="v")
    assert cache.get("k", epoch=2) is None  # stale epoch -> dropped
    assert len(cache) == 0
    stats = cache.stats()
    assert stats["invalidations"] == 1
    # And the old value never resurfaces, even at the old epoch.
    assert cache.get("k", epoch=1) is None


def test_lru_eviction_order():
    cache = QueryResultCache(capacity=2)
    cache.put("a", 1, "A")
    cache.put("b", 1, "B")
    assert cache.get("a", 1) == "A"  # touch a -> b becomes LRU
    cache.put("c", 1, "C")
    assert cache.get("b", 1) is None
    assert cache.get("a", 1) == "A"
    assert cache.get("c", 1) == "C"
    assert cache.stats()["evictions"] == 1


def test_capacity_zero_disables():
    cache = QueryResultCache(capacity=0)
    cache.put("k", 1, "v")
    assert cache.get("k", 1) is None
    assert len(cache) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        QueryResultCache(capacity=-1)


def test_clear_and_hit_rate():
    cache = QueryResultCache(capacity=4)
    cache.put("k", 1, "v")
    cache.get("k", 1)
    cache.get("other", 1)
    assert cache.clear() == 1
    stats = cache.stats()
    assert stats["entries"] == 0
    assert stats["hit_rate"] == pytest.approx(0.5)


def test_normalize_gql_preserves_quoted_whitespace():
    """Regression: whitespace inside quoted literals is semantic and must not
    be collapsed, or the plan memo would alias different queries."""
    a = normalize_gql('SELECT contents WHERE { CONTENT CONTAINS "foo bar" }')
    b = normalize_gql('SELECT contents WHERE { CONTENT CONTAINS "foo  bar" }')
    assert a != b
    # Outside quotes still collapses.
    assert normalize_gql('A   "x y"  B') == normalize_gql('A "x y" B')
