"""Tests for the epoch-tagged LRU query-result cache."""

import threading

import pytest
from hypothesis import given, strategies as st

from repro.service.cache import QueryResultCache, normalize_gql


def test_normalize_gql_collapses_whitespace():
    a = normalize_gql('SELECT contents WHERE { CONTENT CONTAINS "x" }')
    b = normalize_gql('  SELECT   contents\nWHERE  { CONTENT CONTAINS "x" }  ')
    assert a == b
    # Content differences survive normalization.
    assert a != normalize_gql('SELECT contents WHERE { CONTENT CONTAINS "y" }')


def test_hit_and_miss():
    cache = QueryResultCache(capacity=4)
    assert cache.get("k", epoch=1) is None
    cache.put("k", epoch=1, value="v")
    assert cache.get("k", epoch=1) == "v"
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_epoch_bump_invalidates():
    cache = QueryResultCache(capacity=4)
    cache.put("k", epoch=1, value="v")
    assert cache.get("k", epoch=2) is None  # stale epoch -> dropped
    assert len(cache) == 0
    stats = cache.stats()
    assert stats["invalidations"] == 1
    # And the old value never resurfaces, even at the old epoch.
    assert cache.get("k", epoch=1) is None


def test_lru_eviction_order():
    cache = QueryResultCache(capacity=2)
    cache.put("a", 1, "A")
    cache.put("b", 1, "B")
    assert cache.get("a", 1) == "A"  # touch a -> b becomes LRU
    cache.put("c", 1, "C")
    assert cache.get("b", 1) is None
    assert cache.get("a", 1) == "A"
    assert cache.get("c", 1) == "C"
    assert cache.stats()["evictions"] == 1


def test_capacity_zero_disables():
    cache = QueryResultCache(capacity=0)
    cache.put("k", 1, "v")
    assert cache.get("k", 1) is None
    assert len(cache) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        QueryResultCache(capacity=-1)


def test_clear_and_hit_rate():
    cache = QueryResultCache(capacity=4)
    cache.put("k", 1, "v")
    cache.get("k", 1)
    cache.get("other", 1)
    assert cache.clear() == 1
    stats = cache.stats()
    assert stats["entries"] == 0
    assert stats["hit_rate"] == pytest.approx(0.5)


def test_normalize_gql_preserves_quoted_whitespace():
    """Regression: whitespace inside quoted literals is semantic and must not
    be collapsed, or the plan memo would alias different queries."""
    a = normalize_gql('SELECT contents WHERE { CONTENT CONTAINS "foo bar" }')
    b = normalize_gql('SELECT contents WHERE { CONTENT CONTAINS "foo  bar" }')
    assert a != b
    # Outside quotes still collapses.
    assert normalize_gql('A   "x y"  B') == normalize_gql('A "x y" B')


# -- unbalanced-quote keying ---------------------------------------------------


def _reference_form(text: str) -> tuple:
    """The semantic identity normalization may (and must only) collapse to:
    quote-delimited segments with whitespace canonicalized outside quotes,
    plus whether the final quote never closes."""
    segments = text.split('"')
    outside = [" ".join(segment.split()) for segment in segments[0::2]]
    inside = segments[1::2]
    return tuple(outside), tuple(inside), len(segments) % 2 == 0


def test_unbalanced_quote_cannot_alias_balanced_query():
    """Regression: a malformed query (unbalanced trailing quote) must never
    produce the same cache key as any well-formed query — a collision would
    serve the well-formed query's memoized plan for garbage input."""
    malformed = 'SELECT contents WHERE { CONTENT CONTAINS "x }'
    for balanced in (
        'SELECT contents WHERE { CONTENT CONTAINS "x }"',
        'SELECT contents WHERE { CONTENT CONTAINS "x" }',
        normalize_gql('SELECT contents WHERE { CONTENT CONTAINS "x }'),
    ):
        if balanced.count('"') % 2 == 0:
            assert normalize_gql(malformed) != normalize_gql(balanced)
    # normalization stays deterministic for malformed input
    assert normalize_gql(malformed) == normalize_gql(malformed)


_GQL_ALPHABET = st.text(
    alphabet=list('abXY{}[]()<>,.:;"  \t\n'), min_size=0, max_size=40
)


@given(_GQL_ALPHABET, _GQL_ALPHABET)
def test_normalize_injective_modulo_outside_whitespace(left, right):
    """Property: two texts normalize equal iff they differ only in whitespace
    outside quotes (same quote structure, same quoted content, same
    balancedness) — normalization is injective modulo outside whitespace."""
    same_key = normalize_gql(left) == normalize_gql(right)
    same_meaning = _reference_form(left) == _reference_form(right)
    assert same_key == same_meaning


@given(_GQL_ALPHABET)
def test_normalize_idempotent_and_parity_preserving(text):
    normalized = normalize_gql(text)
    assert normalize_gql(normalized) == normalized or text.count('"') % 2 == 1
    # quote count is preserved, so balancedness can never be laundered
    assert normalized.count('"') == text.count('"')


# -- concurrent readers sharing a hot entry ------------------------------------


def test_concurrent_readers_cannot_corrupt_hot_entry():
    """Regression: two threads hammering the same hot cache entry, one of
    them consuming its result destructively, must never corrupt what the
    other (or any later reader) receives."""
    from repro.core.manager import Graphitti
    from repro.datatypes.sequence import DnaSequence
    from repro.service import GraphittiService

    manager = Graphitti("cache-corruption-test")
    manager.register(DnaSequence("seqc", "ACGT" * 200, domain="cc:chr1"))
    for index in range(8):
        (
            manager.new_annotation(f"cc-{index}", keywords=["hot"], body=f"entry {index}")
            .mark_sequence("seqc", index * 10, index * 10 + 5)
            .commit()
        )
    service = GraphittiService(manager=manager)
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "hot" }'
    expected = sorted(f"cc-{index}" for index in range(8))
    assert service.query(probe).annotation_ids == expected  # warm the entry

    errors: list[str] = []
    barrier = threading.Barrier(2)

    def consumer() -> None:
        barrier.wait()
        for _ in range(200):
            result = service.query(probe)
            # destructive consumption: drain the page in place
            while result.annotation_ids:
                result.annotation_ids.pop()
            result.step_details.clear()

    def reader() -> None:
        barrier.wait()
        for _ in range(200):
            result = service.query(probe)
            if result.annotation_ids != expected:
                errors.append(f"saw corrupted page {result.annotation_ids!r}")
                return

    threads = [threading.Thread(target=consumer), threading.Thread(target=reader)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]
    # the cached entry itself survived every destructive consumer
    assert service.query(probe).annotation_ids == expected
