"""Tests for query EXPLAIN (plan + cost without execution)."""

import pytest

from repro.query.builder import QueryBuilder


def test_explain_structure(small_graphitti):
    explanation = small_graphitti.explain(
        QueryBuilder.contents().contains("protease").overlaps_interval("chr1", 10, 40).build()
    )
    assert "PLAN" in explanation["plan"]
    assert explanation["subqueries"] == 2
    assert explanation["estimated_cost"] > 0
    assert "content" in explanation["targets"]


def test_explain_text_query(small_graphitti):
    explanation = small_graphitti.explain('SELECT contents WHERE { CONTENT CONTAINS "protease" }')
    assert "CONTAINS" in explanation["plan"]


def test_explain_ordering_changes_plan(small_graphitti):
    query = QueryBuilder.contents().of_type("dna_sequence").contains("protease").build()
    ordered = small_graphitti.explain(query, enable_ordering=True)["plan"]
    naive = small_graphitti.explain(query, enable_ordering=False)["plan"]
    assert "ordering=on" in ordered
    assert "ordering=off" in naive


def test_explain_does_not_execute(small_graphitti):
    before = small_graphitti.annotation_count
    small_graphitti.explain(QueryBuilder.contents().contains("protease").build())
    assert small_graphitti.annotation_count == before


def test_cli_explain(tmp_path, capsys):
    from repro.cli import main

    path = str(tmp_path / "flu.json")
    main(["build", "influenza", path])
    capsys.readouterr()
    assert main(["explain", path, 'SELECT contents WHERE { CONTENT CONTAINS "cleavage" }']) == 0
    out = capsys.readouterr().out
    assert "PLAN" in out
    assert "estimated cost" in out
