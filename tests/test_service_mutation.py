"""Service-level mutation lifecycle: WAL logging, caching, deferred work."""

import pytest

from repro.core.annotation import Referent
from repro.datatypes import DnaSequence
from repro.errors import AnnotationError
from repro.service import GraphittiService, ServiceConfig, read_records
from repro.service.durability import recover_manager

NO_CLOSE_CHECKPOINT = ServiceConfig(checkpoint_on_close=False)


def _seeded(root=None, config=None):
    service = GraphittiService.open(root, config=config or NO_CLOSE_CHECKPOINT) if root else GraphittiService(config=config)
    service.register(DnaSequence("svc_seq1", "ACGT" * 200, domain="svc:chr1"))
    service.register(DnaSequence("svc_seq2", "TGCA" * 200, domain="svc:chr1", offset=800))
    service.commit(
        service.new_annotation(
            "m1", title="original", keywords=["alpha"], body="protease mark"
        ).mark_sequence("svc_seq1", 10, 40)
    )
    return service


def test_update_logs_codec_shaped_record(tmp_path):
    root = tmp_path / "svc"
    service = _seeded(root)
    addition = Referent(ref=service.data_object("svc_seq2").mark(5, 25))
    referent_id = service.annotation("m1").referents[0].referent_id
    service.update_annotation(
        "m1",
        {
            "title": "revised",
            "add_referents": [addition],
            "move_referents": {referent_id: {"start": 200, "end": 230}},
        },
    )
    service.close()
    records, torn = read_records(root / "wal.jsonl")
    assert not torn
    record = records[-1]
    assert record["op"] == "update_annotation"
    payload = record["payload"]
    assert payload["annotation_id"] == "m1"
    # live Referent objects were encoded to plain codec dicts
    assert payload["changes"]["add_referents"][0]["referent_id"] == addition.referent_id
    assert payload["changes"]["move_referents"][referent_id] == {"start": 200, "end": 230}


def test_update_and_delete_object_replay_to_same_state(tmp_path):
    root = tmp_path / "svc"
    service = _seeded(root)
    service.commit(
        service.new_annotation("m2", keywords=["beta"], body="second mark").mark_sequence(
            "svc_seq2", 50, 80
        )
    )
    referent_id = service.annotation("m1").referents[0].referent_id
    service.update_annotation(
        "m1",
        {"keywords": ["gamma"], "move_referents": {referent_id: {"start": 300, "end": 330}}},
    )
    service.delete_object("svc_seq2")  # cascades m2
    expected = service.statistics()
    expected_hits = service.query('SELECT contents WHERE { CONTENT CONTAINS "gamma" }')
    service.close()

    recovered, info = recover_manager(root)
    assert info["replayed"] == len(read_records(root / "wal.jsonl")[0])
    stats = recovered.statistics()
    for volatile in ("mutation_epoch", "service"):
        stats.pop(volatile, None)
        expected.pop(volatile, None)
    assert stats == expected
    assert (
        recovered.query('SELECT contents WHERE { CONTENT CONTAINS "gamma" }').annotation_ids
        == expected_hits.annotation_ids
    )
    assert recovered.search_by_overlap_interval("svc:chr1", 295, 340) == ["m1"]
    assert recovered.annotations_on_object("svc_seq2") == []
    report = recovered.check_integrity()
    assert report.ok, report.errors


def test_update_invalidates_result_cache():
    service = _seeded()
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "alpha" }'
    assert service.query(probe).annotation_ids == ["m1"]
    assert service.query(probe).annotation_ids == ["m1"]  # cache hit
    hits_before = service.statistics()["service"]["query_cache"]["hits"]
    assert hits_before >= 1
    service.update_annotation("m1", {"keywords": ["omega"]})
    assert service.query(probe).annotation_ids == []
    assert service.query('SELECT contents WHERE { CONTENT CONTAINS "omega" }').annotation_ids == ["m1"]
    service.close()


def test_delete_object_invalidates_cache_and_refuses_without_cascade():
    service = _seeded()
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "alpha" }'
    assert service.query(probe).annotation_ids == ["m1"]
    with pytest.raises(AnnotationError):
        service.delete_object("svc_seq1", cascade=False)
    cascaded = service.delete_object("svc_seq1")
    assert cascaded == ["m1"]
    assert service.query(probe).annotation_ids == []
    assert service.annotations_on_object("svc_seq1") == []
    service.close()


def test_bulk_commit_then_delete_then_search(tmp_path):
    """Satellite regression at the service level: the deferred index flush
    (triggered by a read view) must not resurrect a deleted annotation."""
    service = _seeded(tmp_path / "svc")
    batch = [
        service.new_annotation(
            f"bulk-{i}", keywords=["deferred", f"tag{i}"], body=f"bulk member {i}"
        ).mark_sequence("svc_seq1", 100 + i * 10, 105 + i * 10)
        for i in range(3)
    ]
    service.bulk_commit(batch)
    service.delete_annotation("bulk-1")
    assert service.search_by_keyword("tag1") == []
    assert service.search_by_keyword("deferred") == ["bulk-0", "bulk-2"]
    assert service.check_integrity().ok
    service.close()


def test_update_after_bulk_commit_before_flush(tmp_path):
    """An update landing while the keyword indexing is still deferred swaps
    the pending body; the flush indexes the latest content exactly once."""
    service = _seeded(tmp_path / "svc")
    batch = [
        service.new_annotation(
            f"pend-{i}", keywords=["pending"], body=f"pending body {i}"
        ).mark_sequence("svc_seq1", 200 + i * 10, 205 + i * 10)
        for i in range(2)
    ]
    service.bulk_commit(batch)
    service.update_annotation(
        "pend-0", {"keywords": ["flushed-edit"], "body": "rewritten before the flush"}
    )
    assert service.search_by_keyword("flushed-edit") == ["pend-0"]
    assert service.search_by_keyword("pending") == ["pend-1"]
    assert service.search_by_keyword("rewritten") == ["pend-0"]
    service.close()


def test_update_replans_prepared_plan():
    """A memoized plan from before the update must not serve afterwards —
    the epoch check re-plans and the new fingerprint misses the old cache."""
    service = _seeded()
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "alpha" TYPE dna_sequence }'
    first = service.query(probe)
    service.update_annotation("m1", {"keywords": ["alpha", "extra"]})
    second = service.query(probe)
    assert second.annotation_ids == ["m1"]
    assert first.annotation_ids == ["m1"]
    service.close()


def test_closed_service_refuses_mutations():
    from repro.errors import ServiceError

    service = _seeded()
    service.close()
    with pytest.raises(ServiceError):
        service.update_annotation("m1", {"title": "x"})
    with pytest.raises(ServiceError):
        service.delete_object("svc_seq1")
