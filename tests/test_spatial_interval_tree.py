"""Tests for the augmented interval tree and the interval index family."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpatialError
from repro.spatial.interval import Interval
from repro.spatial.interval_tree import IntervalIndexFamily, IntervalTree
from repro.baselines.linear_scan import linear_interval_overlap


def test_empty_tree():
    tree = IntervalTree()
    assert len(tree) == 0
    assert not tree
    assert tree.search_overlap(Interval(1, 5)) == []
    assert tree.span() is None


def test_insert_and_overlap():
    tree = IntervalTree()
    tree.insert(Interval(1, 5))
    tree.insert(Interval(3, 9))
    tree.insert(Interval(20, 30))
    assert len(tree.search_overlap(Interval(4, 4))) == 2
    assert len(tree.search_overlap(Interval(25, 25))) == 1
    assert tree.search_overlap(Interval(12, 15)) == []


def test_stab():
    tree = IntervalTree.from_intervals([Interval(1, 5), Interval(4, 8), Interval(10, 12)])
    assert len(tree.stab(4)) == 2
    assert len(tree.stab(11)) == 1


def test_contained_in():
    tree = IntervalTree.from_intervals([Interval(2, 4), Interval(1, 10), Interval(3, 3)])
    contained = tree.search_contained_in(Interval(0, 5))
    assert Interval(2, 4) in contained
    assert Interval(1, 10) not in contained


def test_next_after():
    tree = IntervalTree.from_intervals([Interval(1, 5), Interval(6, 9), Interval(10, 12)])
    nxt = tree.next_after(Interval(1, 5))
    assert nxt == Interval(6, 9)
    assert tree.next_after(Interval(10, 12)) is None


def test_span():
    tree = IntervalTree.from_intervals([Interval(5, 9), Interval(1, 3), Interval(2, 20)])
    span = tree.span()
    assert span.start == 1 and span.end == 20


def test_count_overlap():
    tree = IntervalTree.from_intervals([Interval(1, 5), Interval(2, 6), Interval(10, 12)])
    assert tree.count_overlap(Interval(3, 4)) == 2


def test_domain_enforced():
    tree = IntervalTree(domain="chr1")
    tree.insert(Interval(1, 5, domain="chr1"))
    tree.insert(Interval(2, 6))  # None domain allowed
    with pytest.raises(SpatialError):
        tree.insert(Interval(1, 5, domain="chr2"))


def test_remove():
    tree = IntervalTree()
    a = Interval(1, 5, payload="a")
    b = Interval(1, 5, payload="b")
    tree.insert(a)
    tree.insert(b)
    assert tree.remove(a)
    assert len(tree) == 1
    assert not tree.remove(Interval(1, 5, payload="missing"))


def test_duplicate_keys_distinct_payloads():
    tree = IntervalTree()
    tree.insert(Interval(1, 5, payload="a"))
    tree.insert(Interval(1, 5, payload="b"))
    hits = tree.search_overlap(Interval(2, 3))
    assert {hit.payload for hit in hits} == {"a", "b"}


def test_balance_stays_logarithmic():
    tree = IntervalTree()
    for value in range(1000):  # sorted inserts are the AVL worst case
        tree.insert(Interval(value, value + 1))
    # Perfectly balanced height would be ~10; AVL guarantees < 1.45*log2(n)+1.
    assert tree.height() <= 16


@settings(max_examples=50)
@given(
    intervals=st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 50)), min_size=0, max_size=60
    ),
    query=st.tuples(st.integers(0, 200), st.integers(0, 50)),
)
def test_overlap_matches_linear_scan(intervals, query):
    items = [Interval(start, start + length) for start, length in intervals]
    tree = IntervalTree.from_intervals(items)
    q = Interval(query[0], query[0] + query[1])
    expected = sorted(
        (iv.start, iv.end) for iv in linear_interval_overlap(items, q)
    )
    actual = sorted((iv.start, iv.end) for iv in tree.search_overlap(q))
    assert actual == expected


@settings(max_examples=30)
@given(st.lists(st.integers(0, 500), min_size=1, max_size=100))
def test_next_after_is_monotone(starts):
    items = [Interval(start, start + 1) for start in starts]
    tree = IntervalTree.from_intervals(items)
    current = tree.next_after(Interval(-1, -1))
    previous_key = (float("-inf"), float("-inf"))
    count = 0
    while current is not None and count < len(items) + 5:
        key = (current.start, current.end)
        assert key > previous_key
        previous_key = key
        current = tree.next_after(current)
        count += 1


# -- interval index family ---------------------------------------------------


def test_index_family_groups_by_domain():
    family = IntervalIndexFamily()
    family.insert("chr1", Interval(1, 5, domain="chr1"))
    family.insert("chr2", Interval(1, 5, domain="chr2"))
    family.insert("chr1", Interval(3, 8, domain="chr1"))
    assert len(family) == 2
    assert family.total_intervals() == 3
    assert len(family.search_overlap("chr1", Interval(4, 4, domain="chr1"))) == 2
    assert family.search_overlap("chrX", Interval(1, 1)) == []


def test_index_family_domains():
    family = IntervalIndexFamily()
    family.insert("a", Interval(1, 2, domain="a"))
    assert "a" in family
    assert family.domains == ("a",)


def test_index_family_apply():
    family = IntervalIndexFamily()
    family.insert("a", Interval(1, 2, domain="a"))
    family.insert("b", Interval(3, 4, domain="b"))
    counts = family.apply(lambda domain, tree: len(tree))
    assert sorted(counts) == [1, 1]
