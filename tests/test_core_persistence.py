"""Tests for whole-instance persistence (snapshot / save / load)."""

import pytest

from repro.core.persistence import load_instance, rebuild, save_instance, snapshot
from repro.errors import GraphittiError
from repro.query.builder import QueryBuilder


def test_snapshot_structure(small_graphitti):
    payload = snapshot(small_graphitti)
    assert payload["name"] == small_graphitti.name
    assert len(payload["annotations"]) == small_graphitti.annotation_count
    assert "object_metadata" in payload
    assert "contents" in payload


def test_roundtrip_preserves_statistics(influenza):
    reloaded = rebuild(snapshot(influenza))
    original_stats = influenza.statistics()
    reloaded_stats = reloaded.statistics()
    for key in ("annotations", "referents", "agraph_nodes", "agraph_edges"):
        assert reloaded_stats[key] == original_stats[key]


def test_roundtrip_preserves_queries(neuroscience):
    reloaded = rebuild(snapshot(neuroscience))
    original = set(neuroscience.search_by_keyword("cerebellum"))
    restored = set(reloaded.search_by_keyword("cerebellum"))
    assert original == restored


def test_roundtrip_preserves_relatedness(influenza):
    reloaded = rebuild(snapshot(influenza))
    assert reloaded.related_annotations("flu-a1") == influenza.related_annotations("flu-a1")


def test_roundtrip_preserves_paths(neuroscience):
    reloaded = rebuild(snapshot(neuroscience))
    original = neuroscience.path_between_annotations("neuro-a1", "neuro-a2")
    restored = reloaded.path_between_annotations("neuro-a1", "neuro-a2")
    assert (original is None) == (restored is None)
    assert len(original) == len(restored)


def test_roundtrip_preserves_ontology(influenza):
    reloaded = rebuild(snapshot(influenza))
    assert set(reloaded.ontologies()) == set(influenza.ontologies())
    assert reloaded.resolve_ontology_term("Hemagglutinin") == "flu:HA"


def test_reloaded_is_catalogue_only(influenza):
    reloaded = rebuild(snapshot(influenza))
    assert reloaded.catalogue_only is True
    report = reloaded.check_integrity()
    assert report.ok
    assert report.warnings  # data objects not reconstructed -> warnings


def test_reloaded_query_graph(neuroscience):
    reloaded = rebuild(snapshot(neuroscience))
    result = reloaded.query(QueryBuilder.graph().refers("alpha-synuclein").build())
    assert result.count >= 1


def test_save_load_file(tmp_path, influenza):
    path = save_instance(influenza, tmp_path / "instance.json")
    reloaded = load_instance(path)
    assert reloaded.annotation_count == influenza.annotation_count


def test_load_missing(tmp_path):
    with pytest.raises(GraphittiError):
        load_instance(tmp_path / "missing.json")


def test_metadata_preserved(influenza):
    reloaded = rebuild(snapshot(influenza))
    meta = reloaded.object_metadata("HA_chicken")
    assert meta["data_type"] == "dna_sequence"
