"""Tests for whole-instance persistence (snapshot / save / load)."""

import pytest

from repro.core.persistence import load_instance, rebuild, save_instance, snapshot
from repro.errors import GraphittiError
from repro.query.builder import QueryBuilder


def test_snapshot_structure(small_graphitti):
    payload = snapshot(small_graphitti)
    assert payload["name"] == small_graphitti.name
    assert len(payload["annotations"]) == small_graphitti.annotation_count
    assert "object_metadata" in payload
    assert "contents" in payload


def test_roundtrip_preserves_statistics(influenza):
    reloaded = rebuild(snapshot(influenza))
    original_stats = influenza.statistics()
    reloaded_stats = reloaded.statistics()
    for key in ("annotations", "referents", "agraph_nodes", "agraph_edges"):
        assert reloaded_stats[key] == original_stats[key]


def test_roundtrip_preserves_queries(neuroscience):
    reloaded = rebuild(snapshot(neuroscience))
    original = set(neuroscience.search_by_keyword("cerebellum"))
    restored = set(reloaded.search_by_keyword("cerebellum"))
    assert original == restored


def test_roundtrip_preserves_relatedness(influenza):
    reloaded = rebuild(snapshot(influenza))
    assert reloaded.related_annotations("flu-a1") == influenza.related_annotations("flu-a1")


def test_roundtrip_preserves_paths(neuroscience):
    reloaded = rebuild(snapshot(neuroscience))
    original = neuroscience.path_between_annotations("neuro-a1", "neuro-a2")
    restored = reloaded.path_between_annotations("neuro-a1", "neuro-a2")
    assert (original is None) == (restored is None)
    assert len(original) == len(restored)


def test_roundtrip_preserves_ontology(influenza):
    reloaded = rebuild(snapshot(influenza))
    assert set(reloaded.ontologies()) == set(influenza.ontologies())
    assert reloaded.resolve_ontology_term("Hemagglutinin") == "flu:HA"


def test_reloaded_is_catalogue_only(influenza):
    reloaded = rebuild(snapshot(influenza))
    assert reloaded.catalogue_only is True
    report = reloaded.check_integrity()
    assert report.ok
    assert report.warnings  # data objects not reconstructed -> warnings


def test_reloaded_query_graph(neuroscience):
    reloaded = rebuild(snapshot(neuroscience))
    result = reloaded.query(QueryBuilder.graph().refers("alpha-synuclein").build())
    assert result.count >= 1


def test_save_load_file(tmp_path, influenza):
    path = save_instance(influenza, tmp_path / "instance.json")
    reloaded = load_instance(path)
    assert reloaded.annotation_count == influenza.annotation_count


def test_load_missing(tmp_path):
    with pytest.raises(GraphittiError):
        load_instance(tmp_path / "missing.json")


def test_metadata_preserved(influenza):
    reloaded = rebuild(snapshot(influenza))
    meta = reloaded.object_metadata("HA_chicken")
    assert meta["data_type"] == "dna_sequence"


def test_roundtrip_preserves_dublin_core_and_provenance(small_graphitti):
    """Snapshot round-trips must carry the full annotation content: every
    Dublin Core element, the body, and user-defined (provenance) tags."""
    g = small_graphitti
    builder = g.new_annotation(
        "dc-rich",
        title="A fully described annotation",
        creator="curator@example.org",
        keywords=["provenance", "metadata"],
        body="The body text must survive the round trip.",
        description="Asserting lossless content persistence.",
    )
    content = builder.content
    content.dublin_core.publisher = "The Annotation Lab"
    content.dublin_core.contributor = ["reviewer-1", "reviewer-2"]
    content.dublin_core.date = "2008-04-07"
    content.dublin_core.source = "doi:10.1109/ICDE.2008.4497601"
    content.dublin_core.coverage = "segment 4"
    content.dublin_core.rights = "CC-BY"
    content.dublin_core.relation = "flu-a1"
    builder.set_tag("lab_protocol", "v2.3")
    builder.set_tag("reviewed_by", "pi")
    builder.mark_sequence("seq1", 12, 48).commit()

    reloaded = rebuild(snapshot(g))
    original = g.annotation("dc-rich").content
    restored = reloaded.annotation("dc-rich").content
    assert restored.dublin_core.to_dict() == original.dublin_core.to_dict()
    assert restored.body == original.body
    assert restored.user_tags == original.user_tags
    assert restored.ontology_terms == original.ontology_terms
    # The restored creator/title are searchable again (they reached the
    # rebuilt content collection, not just the annotation object).
    assert "dc-rich" in reloaded.search_by_keyword("provenance")


def test_annotation_codec_roundtrip(small_graphitti):
    """encode/decode (the WAL record codec) must be lossless on its own."""
    from repro.core.persistence import decode_annotation, encode_annotation

    original = small_graphitti.annotation("a1")
    decoded = decode_annotation(encode_annotation(original))
    assert decoded.annotation_id == original.annotation_id
    assert decoded.content.dublin_core.to_dict() == original.content.dublin_core.to_dict()
    assert decoded.content.body == original.content.body
    assert decoded.content.user_tags == original.content.user_tags
    assert [r.referent_id for r in decoded.referents] == [r.referent_id for r in original.referents]
    assert [r.ref.to_dict() for r in decoded.referents] == [r.ref.to_dict() for r in original.referents]
    assert [r.ontology_terms for r in decoded.referents] == [
        r.ontology_terms for r in original.referents
    ]


def test_decode_tolerates_legacy_payload():
    """Records written before the full-content codec still decode."""
    from repro.core.persistence import decode_annotation

    legacy = {
        "annotation_id": "old-1",
        "keywords": ["legacy"],
        "content_ontology_terms": ["term:x"],
        "referents": [],
    }
    annotation = decode_annotation(legacy)
    assert annotation.content.keywords() == ["legacy"]
    assert annotation.content.ontology_terms == ["term:x"]
