"""Tests for the system-administration module (admin tab)."""

import pytest

from repro.core.admin import Administrator, IntegrityReport


def test_integrity_ok_on_fresh_instance(small_graphitti):
    report = small_graphitti.check_integrity()
    assert report.ok
    assert report.checks_run > 0
    assert "OK" in report.summary()


def test_integrity_ok_on_scenarios(influenza, neuroscience):
    assert influenza.check_integrity().ok
    assert neuroscience.check_integrity().ok


def test_integrity_report_fail():
    report = IntegrityReport()
    report.fail("boom")
    assert not report.ok
    assert "FAILED" in report.summary()


def test_integrity_detects_corruption(small_graphitti):
    # Corrupt the a-graph by removing a content node behind the manager's back.
    small_graphitti.agraph.graph.remove_node("a1")
    report = small_graphitti.check_integrity()
    assert not report.ok
    assert any("a1" in error for error in report.errors)


def test_orphan_objects(small_graphitti):
    # prot1 is registered but never annotated in the small fixture
    admin = small_graphitti.administrator()
    assert "prot1" in admin.orphan_objects()


def test_orphan_ontology_terms(empty_graphitti):
    g = empty_graphitti
    from repro.datatypes import DnaSequence

    g.register(DnaSequence("s", "ACGT" * 10, domain="c"))
    g.new_annotation("a1").mark_sequence("s", 0, 5, ontology_terms=["protein:protease"]).commit()
    admin = g.administrator()
    # every ontology term present is pointed at -> no orphans
    assert admin.orphan_ontology_terms() == []


def test_index_economy_sharing_ratio():
    from repro import Graphitti
    from repro.datatypes import DnaSequence

    g = Graphitti()
    # five sequences on one shared chromosome domain -> one interval tree
    for index in range(5):
        g.register(DnaSequence(f"s{index}", "ACGT" * 10, domain="chr1"))
        g.new_annotation(f"a{index}").mark_sequence(f"s{index}", 0, 5).commit()
    economy = g.administrator().index_economy()
    assert economy["interval_trees"] == 1
    assert economy["sequence_like_objects"] == 5
    assert economy["interval_tree_sharing_ratio"] == 5.0


def test_annotation_leaderboard(influenza):
    leaderboard = influenza.administrator().annotation_leaderboard(top=3)
    assert len(leaderboard) <= 3
    # sorted by descending count
    counts = [count for _, count in leaderboard]
    assert counts == sorted(counts, reverse=True)


def test_creator_activity(influenza):
    activity = influenza.administrator().creator_activity()
    assert sum(activity.values()) == influenza.annotation_count
    assert "virologist1" in activity
