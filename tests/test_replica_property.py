"""Property: chunked shipping is replay-equivalent to cold recovery.

The replication pipeline moves WAL bytes, not records — a shipment can cut
the stream anywhere, including mid-record.  This property feeds the scripted
recovery WAL (all six op shapes) to a :class:`WalCursor` one arbitrary byte
chunk at a time and asserts the records collected across polls replay to the
exact state :func:`recover_manager` rebuilds from the intact file: same
statistics, same query results, integrity clean, no record lost, duplicated
or reordered regardless of where the chunk boundaries fall.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manager import Graphitti
from repro.replica import WalCursor
from repro.service.durability import apply_record, recover_manager

from test_service_recovery import assert_equivalent, scripted_root


@pytest.fixture(scope="module")
def scripted(tmp_path_factory):
    """The scripted WAL bytes plus the cold-recovered reference state."""
    root = scripted_root(tmp_path_factory.mktemp("prop"))
    raw = (root / "wal.jsonl").read_bytes()
    cold, info = recover_manager(root)
    assert info["replayed"] > 0 and not info["torn_tail"]
    return raw, cold, info["replayed"]


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_arbitrary_chunk_boundaries_replay_identical(scripted, data):
    raw, cold, total = scripted
    cuts = sorted(
        data.draw(
            st.sets(st.integers(min_value=1, max_value=len(raw) - 1), max_size=16),
            label="cut_points",
        )
    )
    bounds = [0, *cuts, len(raw)]
    records = []
    with tempfile.TemporaryDirectory() as tmp:
        stream = Path(tmp) / "wal.jsonl"
        cursor = WalCursor(stream)
        with stream.open("ab") as handle:
            for low, high in zip(bounds, bounds[1:]):
                handle.write(raw[low:high])
                handle.flush()
                # A chunk ending mid-record leaves a torn tail the cursor
                # must hold back, then deliver whole once completed.
                records.extend(cursor.poll())
        records.extend(cursor.poll())
    assert [record["seq"] for record in records] == list(range(1, total + 1))
    replayed = Graphitti(cold.name)
    for record in records:
        apply_record(replayed, record)
    assert_equivalent(replayed, cold)
