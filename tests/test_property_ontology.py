"""Property-based tests for ontology operation invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ontology.operations import OntologyOperations
from repro.ontology.reasoning import OntologyReasoner
from repro.workloads.generators import generate_ontology_dag


def _ontology(depth, branching, instances, seed):
    return generate_ontology_dag("O", depth=depth, branching=branching, instances_per_leaf=instances, rng=random.Random(seed))


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    depth=st.integers(1, 4),
    branching=st.integers(1, 3),
    instances=st.integers(1, 3),
    seed=st.integers(0, 500),
)
def test_ci_of_root_covers_all_instances(depth, branching, instances, seed):
    ontology = _ontology(depth, branching, instances, seed)
    ops = OntologyOperations(ontology)
    all_instances = {term.term_id for term in ontology.instances()}
    assert ops.ci("O:0") == all_instances


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    depth=st.integers(2, 4),
    branching=st.integers(2, 3),
    instances=st.integers(1, 2),
    seed=st.integers(0, 500),
)
def test_ci_is_monotone_down_the_hierarchy(depth, branching, instances, seed):
    ontology = _ontology(depth, branching, instances, seed)
    ops = OntologyOperations(ontology)
    # a child concept's instances are a subset of its parent's instances
    for term in ontology.concepts():
        parents = ontology.parents(term.term_id)
        for parent in parents:
            assert ops.ci(term.term_id) <= ops.ci(parent)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    depth=st.integers(1, 4),
    branching=st.integers(1, 3),
    seed=st.integers(0, 500),
)
def test_subtree_contains_root(depth, branching, seed):
    ontology = _ontology(depth, branching, 1, seed)
    ops = OntologyOperations(ontology)
    for term in ontology.concepts():
        subtree = ops.subtree(term.term_id, "is_a")
        assert term.term_id in subtree


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    depth=st.integers(2, 4),
    branching=st.integers(2, 3),
    seed=st.integers(0, 500),
)
def test_descendants_subset_of_subtree(depth, branching, seed):
    ontology = _ontology(depth, branching, 1, seed)
    ops = OntologyOperations(ontology)
    for term in ontology.concepts():
        subtree = ops.subtree(term.term_id, "is_a")
        descendants = ontology.descendants(term.term_id, ("is_a",))
        assert descendants <= subtree


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    depth=st.integers(2, 4),
    branching=st.integers(2, 3),
    seed=st.integers(0, 500),
)
def test_similarity_symmetric_and_bounded(depth, branching, seed):
    ontology = _ontology(depth, branching, 1, seed)
    reasoner = OntologyReasoner(ontology)
    concepts = [term.term_id for term in ontology.concepts()][:6]
    for a in concepts:
        for b in concepts:
            sim_ab = reasoner.wu_palmer_similarity(a, b)
            sim_ba = reasoner.wu_palmer_similarity(b, a)
            assert sim_ab == pytest.approx(sim_ba)
            assert 0.0 <= sim_ab <= 1.0


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    depth=st.integers(2, 4),
    branching=st.integers(2, 3),
    seed=st.integers(0, 500),
)
def test_lca_is_common_ancestor(depth, branching, seed):
    ontology = _ontology(depth, branching, 1, seed)
    reasoner = OntologyReasoner(ontology)
    concepts = [term.term_id for term in ontology.concepts()][:6]
    for a in concepts:
        for b in concepts:
            for lca in reasoner.lowest_common_ancestors(a, b):
                anc_a = ontology.ancestors(a) | {a}
                anc_b = ontology.ancestors(b) | {b}
                assert lca in anc_a and lca in anc_b
