"""``repro lint`` end-to-end: the shipped tree is clean, seeded fixtures fail.

These are the acceptance-bar tests: the CLI must exit 0 (strict) on the real
repo, and nonzero on each seeded fixture with the violated rule named in the
JSON report.
"""

import json
from pathlib import Path

from repro.analysis.driver import repo_layout, run_lint
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def test_repo_lint_is_clean_strict():
    findings, suppressed = run_lint()
    assert findings == [], "\n".join(f.render() for f in findings)
    # The pragma machinery is exercised for real on the shipped tree
    # (injected-fault raises in net/client.py, the promotion funeral in
    # replica/replicated.py) — not just on fixtures.
    assert suppressed >= 4


def test_repo_layout_covers_the_serving_layer():
    layout = repo_layout()
    analyzed = {p.name for p in layout["lock_analyze"]}
    assert {"service.py", "wal.py", "durability.py", "follower.py", "server.py"} <= analyzed
    assert layout["wal_config"].test_paths, "crash/recovery tests must be in scope"


def test_cli_strict_exits_zero_on_repo(capsys):
    assert main(["lint", "--strict"]) == 0
    assert "clean" in capsys.readouterr().out


def _cli_json(fixture: str, capsys) -> dict:
    code = main(["lint", "--strict", "--json", str(FIXTURES / fixture)])
    assert code == 1, f"{fixture} must fail the lint"
    return json.loads(capsys.readouterr().out)


def test_cli_names_rules_in_json_for_each_bad_fixture(capsys):
    expectations = {
        "lock_bad": {"lock-discipline", "lock-io"},
        "wal_bad": {"wal-lifecycle"},
        "err_bad": {"error-taxonomy", "silent-except"},
        "pragma_stale": {"stale-pragma"},
    }
    for fixture, expected_rules in expectations.items():
        report = _cli_json(fixture, capsys)
        rules = {f["rule"] for f in report["findings"]}
        assert rules == expected_rules, (fixture, rules)
        assert report["count"] == len(report["findings"]) > 0
        for finding in report["findings"]:
            assert finding["path"] and finding["line"] > 0 and finding["message"]


def test_cli_good_fixtures_pass(capsys):
    for fixture in ("lock_good", "wal_good", "err_good"):
        assert main(["lint", "--strict", str(FIXTURES / fixture)]) == 0, fixture
        capsys.readouterr()


def test_nonstrict_treats_stale_pragma_as_advisory(capsys):
    assert main(["lint", str(FIXTURES / "pragma_stale")]) == 0
    out = capsys.readouterr().out
    assert "stale-pragma" in out  # reported, but not gating without --strict
    assert main(["lint", "--strict", str(FIXTURES / "pragma_stale")]) == 1
    capsys.readouterr()
