"""Tests for repro.obs tracing (span trees) and the slow-op ring buffer."""

import threading

from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    SlowOpLog,
    Tracer,
    current_span,
    format_span,
)


def test_span_nesting_links_parent_and_child():
    tracer = Tracer(enabled=True)
    with tracer.span("outer") as outer:
        assert current_span() is outer
        with tracer.span("inner") as inner:
            assert current_span() is inner
            assert inner.parent is outer
    assert current_span() is None
    assert outer.children == [inner]
    assert outer.duration >= inner.duration >= 0.0


def test_span_records_error_attribute():
    tracer = Tracer(enabled=True)
    try:
        with tracer.span("boom") as span:
            raise KeyError("x")
    except KeyError:
        pass
    assert span.attributes["error"] == "KeyError"


def test_explicit_parent_crosses_threads():
    tracer = Tracer(enabled=True)
    with tracer.span("scatter") as scatter:

        def worker():
            with tracer.span("shard.query", parent=scatter) as span:
                span.set("shard", 0)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert [child.name for child in scatter.children] == ["shard.query"]
    assert scatter.children[0].attributes["shard"] == 0


def test_thread_local_stacks_are_independent():
    """Concurrent roots on different threads never adopt each other."""
    tracer = Tracer(enabled=True)
    roots = {}
    barrier = threading.Barrier(4)

    def worker(index):
        barrier.wait()
        with tracer.span(f"root-{index}") as root:
            with tracer.span("child"):
                pass
        roots[index] = root

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for index, root in roots.items():
        assert root.parent is None
        assert [child.name for child in root.children] == ["child"]


def test_reparent_moves_span_without_duplicates():
    tracer = Tracer(enabled=True)
    with tracer.span("old-parent") as old_parent:
        with tracer.span("orphan") as orphan:
            pass
    with tracer.span("new-parent") as new_parent:
        pass
    orphan.reparent(new_parent)
    assert orphan.parent is new_parent
    assert orphan not in old_parent.children
    assert orphan in new_parent.children
    # Reparenting a parentless span also works.
    with tracer.span("free") as free:
        pass
    free.reparent(new_parent)
    assert free in new_parent.children


def test_disabled_tracer_hands_out_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything")
    assert span is NULL_SPAN
    assert not span
    with span as entered:
        entered.set("key", "value")
        entered.reparent(entered)
    assert span.attributes == {}
    assert span.children == []
    assert current_span() is None


def test_tracer_records_durations_into_registry():
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True, registry=registry)
    for _ in range(3):
        with tracer.span("query"):
            pass
    snap = registry.snapshot()
    assert snap["histograms"]["span.query"]["count"] == 3
    assert snap["histograms"]["span.query"]["sum"] >= 0.0


def test_format_span_renders_tree():
    tracer = Tracer(enabled=True)
    with tracer.span("query") as root:
        root.set("cache", "miss")
        with tracer.span("execute") as execute:
            execute.set("rows", 7)
    text = format_span(root)
    lines = text.splitlines()
    assert "query" in lines[0] and "cache=miss" in lines[0]
    assert "execute" in lines[1] and "rows=7" in lines[1]
    assert "ms" in lines[0]
    # to_dict round-trips through the same renderer.
    assert format_span(root.to_dict()) == text


def test_to_dict_shape():
    tracer = Tracer(enabled=True)
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            inner.set("k", 1)
    node = outer.to_dict()
    assert node["name"] == "outer"
    assert node["children"][0]["name"] == "inner"
    assert node["children"][0]["attributes"] == {"k": 1}
    assert "attributes" not in node  # empty attrs are omitted


# -- slow-op ring buffer ------------------------------------------------------


def _finished_span(tracer, name, **attrs):
    with tracer.span(name) as span:
        for key, value in attrs.items():
            span.set(key, value)
    return span


def test_slow_log_threshold_and_capture():
    tracer = Tracer(enabled=True)
    log = SlowOpLog(capacity=4, threshold_s=0.25)
    assert not log.is_slow(0.1)
    assert log.is_slow(0.25)
    assert log.is_slow(1.0)
    span = _finished_span(tracer, "query", gql="SELECT contents")
    log.record("query", span, explain={"plan": "static"}, shard=2)
    (entry,) = log.entries()
    assert entry["op"] == "query"
    assert entry["explain"] == {"plan": "static"}
    assert entry["shard"] == 2
    assert entry["trace"]["name"] == "query"
    assert entry["trace"]["attributes"]["gql"] == "SELECT contents"
    assert entry["recorded_at"] > 0


def test_slow_log_ring_buffer_is_bounded():
    tracer = Tracer(enabled=True)
    log = SlowOpLog(capacity=3, threshold_s=0.0)
    for index in range(10):
        log.record("op", _finished_span(tracer, f"span-{index}"))
    entries = log.entries()
    assert len(entries) == 3
    assert len(log) == 3
    # Oldest evicted first: the survivors are the three newest.
    assert [entry["trace"]["name"] for entry in entries] == [
        "span-7", "span-8", "span-9",
    ]
    stats = log.stats()
    assert stats["entries"] == 3
    assert stats["recorded_total"] == 10
    assert stats["capacity"] == 3


def test_slow_log_thread_safety():
    tracer = Tracer(enabled=True)
    log = SlowOpLog(capacity=16, threshold_s=0.0)

    def hammer(worker):
        for index in range(200):
            log.record("op", _finished_span(tracer, f"w{worker}-{index}"))

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(log) == 16
    assert log.stats()["recorded_total"] == 1200
    for entry in log.entries():  # every surviving entry is structurally whole
        assert entry["op"] == "op"
        assert "trace" in entry and "duration_s" in entry


def test_slow_log_clear():
    tracer = Tracer(enabled=True)
    log = SlowOpLog(capacity=4, threshold_s=0.0)
    log.record("op", _finished_span(tracer, "x"))
    log.clear()
    assert log.entries() == []
    assert len(log) == 0
