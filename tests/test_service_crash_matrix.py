"""Checkpoint crash matrix: SIGKILL at every checkpoint seam, then recover.

The non-blocking checkpoint has four distinct on-disk transitions — seal the
active WAL segment, write the temp snapshot, rename it into place, prune the
superseded segments — and a crash between any two of them leaves a different
on-disk shape (sealed segments with no new snapshot, an orphaned ``.tmp``,
a fresh snapshot next to stale segments, a fully landed checkpoint).  Each
test drives a subprocess through one seam via the ``REPRO_CKPT_KILL_AFTER``
environment variable and proves recovery loses no acknowledged write.

The second half parks a checkpoint mid-snapshot-write through the
``DurableStore.snapshot_write_hook`` test seam and proves concurrent writers
commit to completion while the checkpoint is still serializing — the whole
point of moving serialization off the write lock.
"""

import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.datatypes import DnaSequence
from repro.service import GraphittiService, ServiceConfig
from repro.service.durability import KILL_ENV

SRC = Path(__file__).resolve().parent.parent / "src"

NO_CLOSE_CHECKPOINT = ServiceConfig(checkpoint_on_close=False)

#: Annotations committed before the clean checkpoint / before the killed one.
WARM, ACKED = 8, 8

# The child: warm corpus -> clean checkpoint -> more acknowledged commits ->
# checkpoint that SIGKILLs itself at the seam named by argv[2].  The clean
# checkpoint first means the killed one runs against a real prior snapshot
# and prior sealed-segment history, not a fresh root.
_CHILD_CODE = """
import os, sys
root, seam = sys.argv[1], sys.argv[2]
from repro.datatypes import DnaSequence
from repro.service import GraphittiService, ServiceConfig

service = GraphittiService.open(root, config=ServiceConfig(checkpoint_on_close=False))
service.register(DnaSequence("crash_seq", "ACGT" * 120, domain="crash:chr1"))

def commit(prefix, count):
    for index in range(count):
        (
            service.new_annotation(
                f"{prefix}-{index}",
                title=f"{prefix} annotation {index}",
                keywords=["crash", prefix],
                body=f"{prefix} crash-matrix annotation {index}",
            )
            .mark_sequence("crash_seq", index * 12, index * 12 + 10)
            .commit()
        )

commit("warm", int(sys.argv[3]))
service.checkpoint()
commit("acked", int(sys.argv[4]))
print("ACKED", flush=True)
os.environ[sys.argv[5]] = seam
service.checkpoint()
print("SURVIVED", flush=True)
"""


def _run_child_killed_at(root: Path, seam: str) -> subprocess.CompletedProcess:
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD_CODE,
            str(root),
            seam,
            str(WARM),
            str(ACKED),
            KILL_ENV,
        ],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert completed.returncode == -signal.SIGKILL, completed.stderr
    assert "ACKED" in completed.stdout, completed.stderr
    assert "SURVIVED" not in completed.stdout
    return completed


def _expected_ids() -> set[str]:
    return {f"warm-{i}" for i in range(WARM)} | {f"acked-{i}" for i in range(ACKED)}


@pytest.mark.parametrize("seam", ["seal", "tmp", "rename", "prune"])
def test_kill_at_checkpoint_seam_loses_no_acknowledged_write(tmp_path, seam):
    root = tmp_path / f"kill-{seam}"
    _run_child_killed_at(root, seam)

    recovered = GraphittiService.recover(root, config=NO_CLOSE_CHECKPOINT)
    try:
        ids = {a.annotation_id for a in recovered.manager.annotations()}
        assert ids == _expected_ids()
        report = recovered.check_integrity()
        assert report.ok, report.errors
        hits = recovered.query('SELECT contents WHERE { CONTENT CONTAINS "crash" }')
        assert set(hits.annotation_ids) == _expected_ids()
    finally:
        recovered.close()


@pytest.mark.parametrize("seam", ["seal", "tmp", "rename", "prune"])
def test_recovered_root_checkpoints_cleanly_after_kill(tmp_path, seam):
    """The crash leftovers (orphaned tmp, stale segments) must not poison the
    next checkpoint: recover, commit more, checkpoint, recover again."""
    root = tmp_path / f"relife-{seam}"
    _run_child_killed_at(root, seam)

    recovered = GraphittiService.recover(root, config=NO_CLOSE_CHECKPOINT)
    try:
        # Recovered objects are catalogue-only placeholders (no native
        # payload to mark), so the post-recovery commit marks a freshly
        # registered object — the supported continue-after-crash workflow.
        recovered.register(DnaSequence("relife_seq", "GATC" * 120, domain="crash:chr2"))
        (
            recovered.new_annotation(
                "post-crash", keywords=["crash"], body="committed after recovery"
            )
            .mark_sequence("relife_seq", 300, 320)
            .commit()
        )
        recovered.checkpoint()
    finally:
        recovered.close()
    assert not (root / "snapshot.json.tmp").exists()

    reopened = GraphittiService.recover(root, config=NO_CLOSE_CHECKPOINT)
    try:
        ids = {a.annotation_id for a in reopened.manager.annotations()}
        assert ids == _expected_ids() | {"post-crash"}
        assert reopened.check_integrity().ok
    finally:
        reopened.close()


def test_kill_after_tmp_leaves_orphan_and_old_snapshot(tmp_path):
    """At the ``tmp`` seam the rename never happened: the previous snapshot is
    still the one recovery reads, and the orphaned temp file sits beside it."""
    root = tmp_path / "orphan"
    _run_child_killed_at(root, "tmp")
    assert (root / "snapshot.json.tmp").exists()
    assert (root / "snapshot.json").exists()


def test_writers_commit_while_checkpoint_is_parked_mid_write(tmp_path):
    """Concurrent writers never block on snapshot serialization.

    The hook parks the background checkpoint thread right before the
    snapshot payload hits disk; writer threads then commit to completion
    while the checkpoint is provably still in flight.
    """
    root = tmp_path / "parked"
    service = GraphittiService.open(root, config=NO_CLOSE_CHECKPOINT)
    service.register(DnaSequence("park_seq", "TGCA" * 120, domain="park:chr1"))
    for index in range(6):
        (
            service.new_annotation(
                f"before-{index}", keywords=["park"], body=f"pre-checkpoint {index}"
            )
            .mark_sequence("park_seq", index * 10, index * 10 + 8)
            .commit()
        )

    parked = threading.Event()
    release = threading.Event()

    def park() -> None:
        parked.set()
        assert release.wait(timeout=30)

    service._store.snapshot_write_hook = park
    checkpointer = threading.Thread(target=service.checkpoint, name="test-ckpt")
    checkpointer.start()
    try:
        assert parked.wait(timeout=30)

        finished: list[int] = []

        def writer(lane: int) -> None:
            for index in range(5):
                (
                    service.new_annotation(
                        f"during-{lane}-{index}",
                        keywords=["park"],
                        body=f"committed while checkpoint parked {lane}/{index}",
                    )
                    .mark_sequence("park_seq", lane * 60 + index * 10, lane * 60 + index * 10 + 8)
                    .commit()
                )
            finished.append(lane)

        writers = [threading.Thread(target=writer, args=(lane,)) for lane in range(3)]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=30)
        # Every writer ran to completion while the checkpoint thread was
        # still parked inside the snapshot write — serialization did not
        # gate a single commit.
        assert sorted(finished) == [0, 1, 2]
        assert checkpointer.is_alive()
    finally:
        release.set()
        checkpointer.join(timeout=30)
    assert not checkpointer.is_alive()
    service._store.snapshot_write_hook = None
    service.close()

    recovered = GraphittiService.recover(root, config=NO_CLOSE_CHECKPOINT)
    try:
        ids = {a.annotation_id for a in recovered.manager.annotations()}
        expected = {f"before-{i}" for i in range(6)} | {
            f"during-{lane}-{i}" for lane in range(3) for i in range(5)
        }
        assert ids == expected
        assert recovered.check_integrity().ok
    finally:
        recovered.close()
