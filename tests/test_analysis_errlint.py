"""The error-taxonomy lint: seeded violations fire, the clean twin passes."""

from pathlib import Path

from repro.analysis.errlint import (
    check_raises,
    check_silent_excepts,
    taxonomy_closure,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def test_bad_fixture_raise_outside_taxonomy():
    findings = check_raises(
        [FIXTURES / "err_bad" / "store.py"], FIXTURES / "err_bad" / "errors_mod.py"
    )
    assert [f.rule for f in findings] == ["error-taxonomy"]
    assert "ValueError" in findings[0].message


def test_bad_fixture_silent_excepts():
    findings = check_silent_excepts([FIXTURES / "err_bad" / "store.py"])
    assert [f.rule for f in findings] == ["silent-except", "silent-except"]
    messages = " | ".join(f.message for f in findings)
    assert "bare `except:`" in messages
    assert "except Exception: pass" in messages


def test_good_fixture_is_clean():
    assert (
        check_raises(
            [FIXTURES / "err_good" / "store.py"], FIXTURES / "err_good" / "errors_mod.py"
        )
        == []
    )
    assert check_silent_excepts([FIXTURES / "err_good" / "store.py"]) == []


def test_taxonomy_closure_spans_scanned_files(tmp_path):
    errors = tmp_path / "errors.py"
    errors.write_text(
        "class GraphittiError(Exception):\n    pass\n"
        "class ServiceError(GraphittiError):\n    pass\n"
    )
    module = tmp_path / "replica.py"
    module.write_text(
        "class StaleTermError(ServiceError):\n    pass\n"
        "def f():\n    raise StaleTermError('behind')\n"
    )
    # The locally-defined ServiceError subclass is taxonomy, not a finding.
    assert check_raises([module], errors) == []
    closure = taxonomy_closure(errors, [module])
    assert "StaleTermError" in closure


def test_error_factories_are_not_flagged(tmp_path):
    errors = tmp_path / "errors.py"
    errors.write_text("class GraphittiError(Exception):\n    pass\n")
    module = tmp_path / "client.py"
    module.write_text(
        "def f(self, resp):\n    raise self._decode_error(resp)\n"
        "def g():\n    raise make_error('x')\n"
    )
    assert check_raises([module], errors) == []


def test_lowercase_builtin_exceptions_are_flagged(tmp_path):
    errors = tmp_path / "errors.py"
    errors.write_text("class GraphittiError(Exception):\n    pass\n")
    module = tmp_path / "client.py"
    module.write_text("import socket\ndef f():\n    raise socket.timeout('slow')\n")
    findings = check_raises([module], errors)
    assert [f.rule for f in findings] == ["error-taxonomy"]


def test_handlers_that_do_work_are_fine(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except Exception as exc:\n"
        "        log(exc)\n"
        "    try:\n"
        "        risky()\n"
        "    except OSError:\n"
        "        pass\n"
    )
    # Broad-but-logging and narrow-but-silent are both acceptable.
    assert check_silent_excepts([module]) == []
