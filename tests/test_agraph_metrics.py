"""Tests for a-graph analytics."""

import pytest

from repro.agraph.agraph import AGraph
from repro.agraph.metrics import AGraphMetrics


def build_agraph():
    g = AGraph()
    for c in ["c1", "c2", "c3"]:
        g.add_content(c)
    for r in ["r1", "r2", "r3"]:
        g.add_referent(r)
    g.add_ontology_node("t1")
    g.link_annotation("c1", "r1")
    g.link_annotation("c1", "r2")
    g.link_annotation("c2", "r1")  # c1, c2 share r1
    g.link_annotation("c3", "r3")
    g.link_ontology("r1", "t1")
    g.link_ontology("r2", "t1")
    return g


def test_degree_distribution():
    metrics = AGraphMetrics(build_agraph())
    dist = metrics.degree_distribution()
    assert sum(dist.values()) == build_agraph().node_count


def test_average_degree():
    metrics = AGraphMetrics(build_agraph())
    assert metrics.average_degree() > 0


def test_average_degree_empty():
    assert AGraphMetrics(AGraph()).average_degree() == 0.0


def test_ontology_hubs():
    metrics = AGraphMetrics(build_agraph())
    hubs = metrics.ontology_hubs()
    assert hubs[0][0] == "t1"
    assert hubs[0][1] == 2  # r1 and r2 point at t1


def test_annotation_similarity():
    metrics = AGraphMetrics(build_agraph())
    # c1 has {r1, r2}, c2 has {r1} -> Jaccard 1/2
    assert metrics.annotation_similarity("c1", "c2") == pytest.approx(0.5)
    # c1 and c3 share nothing
    assert metrics.annotation_similarity("c1", "c3") == 0.0


def test_most_similar():
    metrics = AGraphMetrics(build_agraph())
    similar = metrics.most_similar("c1")
    assert similar[0][0] == "c2"


def test_referent_sharing():
    metrics = AGraphMetrics(build_agraph())
    sharing = metrics.referent_sharing()
    assert sharing == {"r1": 2}


def test_component_sizes():
    metrics = AGraphMetrics(build_agraph())
    sizes = metrics.component_sizes()
    assert sizes == sorted(sizes, reverse=True)
    assert sum(sizes) == build_agraph().node_count


def test_articulation_annotations():
    # A path c1 - r1 - c2 - r2 - c3 : c2 is an articulation annotation.
    g = AGraph()
    for c in ["c1", "c2", "c3"]:
        g.add_content(c)
    for r in ["r1", "r2"]:
        g.add_referent(r)
    g.link_annotation("c1", "r1")
    g.link_annotation("c2", "r1")
    g.link_annotation("c2", "r2")
    g.link_annotation("c3", "r2")
    metrics = AGraphMetrics(g)
    assert "c2" in metrics.articulation_annotations()
    assert "c1" not in metrics.articulation_annotations()


def test_metrics_on_scenario(influenza):
    metrics = AGraphMetrics(influenza.agraph)
    assert metrics.average_degree() > 0
    assert metrics.component_sizes()
    hubs = metrics.ontology_hubs()
    assert all(count >= 0 for _, count in hubs)
