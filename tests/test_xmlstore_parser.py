"""Tests for the XML parser and serializer."""

import pytest

from repro.errors import XmlParseError
from repro.xmlstore.parser import escape_text, parse_xml, serialize_xml, unescape_text


def test_parse_simple():
    doc = parse_xml("<root><a>hello</a></root>")
    assert doc.root.tag == "root"
    assert doc.root.child_text("a") == "hello"


def test_parse_attributes():
    doc = parse_xml('<e k="v" n="5"/>')
    assert doc.root.get("k") == "v"
    assert doc.root.get("n") == "5"


def test_parse_self_closing():
    doc = parse_xml("<root><empty/></root>")
    assert doc.root.find("empty") is not None


def test_parse_nested():
    doc = parse_xml("<a><b><c>x</c></b></a>")
    assert doc.root.find("b").find("c").text == "x"


def test_parse_prolog_and_comment():
    doc = parse_xml('<?xml version="1.0"?><!-- note --><root/>')
    assert doc.root.tag == "root"


def test_parse_cdata():
    doc = parse_xml("<root><![CDATA[<not parsed>]]></root>")
    assert "<not parsed>" in doc.root.text


def test_parse_entities():
    doc = parse_xml("<root>a &lt; b &amp; c</root>")
    assert doc.root.text == "a < b & c"


def test_parse_empty_raises():
    with pytest.raises(XmlParseError):
        parse_xml("   ")


def test_parse_mismatched_tag():
    with pytest.raises(XmlParseError):
        parse_xml("<a></b>")


def test_parse_unterminated():
    with pytest.raises(XmlParseError):
        parse_xml("<a><b></a>")


def test_parse_trailing_content():
    with pytest.raises(XmlParseError):
        parse_xml("<a/><b/>")


def test_escape_unescape_roundtrip():
    text = 'a < b & c > d "e" \'f\''
    assert unescape_text(escape_text(text)) == text


def test_serialize_roundtrip():
    original = "<annotation><metadata><dc:title>T</dc:title></metadata></annotation>"
    doc = parse_xml(original)
    serialized = serialize_xml(doc)
    reparsed = parse_xml(serialized)
    assert reparsed.root.equals(doc.root)


def test_serialize_escapes_text():
    doc = parse_xml("<root>a &lt; b</root>")
    serialized = serialize_xml(doc, declaration=False)
    assert "&lt;" in serialized


def test_serialize_without_declaration():
    doc = parse_xml("<root/>")
    assert not serialize_xml(doc, declaration=False).startswith("<?xml")


def test_roundtrip_attributes_with_special_chars():
    doc = parse_xml('<e note="a &amp; b"/>')
    assert doc.root.get("note") == "a & b"
    reparsed = parse_xml(serialize_xml(doc))
    assert reparsed.root.get("note") == "a & b"
