"""Integration tests: repro.obs threaded through service, shard, and replica."""

import threading

import pytest

from repro.obs import ObservabilityConfig, merge_stats, render_prometheus
from repro.service import GraphittiService, ServiceConfig
from repro.shard import ShardedGraphittiService

QUERY = 'SELECT contents WHERE { CONTENT CONTAINS "signal" }'
OTHER_QUERY = 'SELECT contents WHERE { CONTENT CONTAINS "noise" }'


def _seed(service, count=12, tag="obs"):
    from repro.datatypes.sequence import DnaSequence

    object_ids = []
    for index in range(4):
        obj = DnaSequence(
            f"{tag}-seq-{index}", "ACGT" * 100, domain=f"{tag}:chr1", offset=index * 400
        )
        service.register(obj)
        object_ids.append(obj.object_id)
    for index in range(count):
        (
            service.new_annotation(
                f"{tag}-{index}",
                title=f"{tag} annotation {index}",
                keywords=["signal" if index % 2 == 0 else "noise"],
                body=f"{tag} body {index}",
            )
            .mark_sequence(object_ids[index % len(object_ids)], index * 10, index * 10 + 25)
            .commit()
        )
    return object_ids


# -- single service -----------------------------------------------------------


def test_disabled_observability_emits_nothing():
    service = GraphittiService(
        config=ServiceConfig(observability=ObservabilityConfig(enabled=False))
    )
    _seed(service)
    assert service.query(QUERY).count > 0
    assert service.query(QUERY).count > 0  # cache hit path
    assert service.metrics() == {"enabled": False}
    assert service.slow_ops() == []
    assert service.obs.registry is None
    assert service.obs.slow_log is None
    service.close()


def test_query_spans_and_cache_hit_counter():
    service = GraphittiService(config=ServiceConfig())
    _seed(service)
    service.query(QUERY)  # miss: traced
    service.query(QUERY)  # hit: counter only
    service.query(QUERY)
    snapshot = service.metrics()
    assert snapshot["enabled"] is True
    assert snapshot["counters"]["query.cache_hits"] == 2
    hist = snapshot["histograms"]["span.query"]
    assert hist["count"] == 1  # only the miss opened a root span
    for stage in ("span.parse", "span.plan", "span.execute"):
        assert snapshot["histograms"][stage]["count"] == 1
    assert "p99" in hist
    text = render_prometheus(snapshot)
    assert "repro_query_cache_hits_total 2" in text
    service.close()


def test_mutation_and_lock_metrics():
    service = GraphittiService(config=ServiceConfig())
    _seed(service, count=6)
    snapshot = service.metrics()
    assert snapshot["histograms"]["span.mutation.commit"]["count"] == 6
    assert snapshot["histograms"]["span.apply"]["count"] >= 6
    assert snapshot["histograms"]["lock.write.hold"]["count"] >= 6
    assert snapshot["gauges"]["lock.writers_queued"] == 0
    service.close()


def test_wal_fsync_spans_on_durable_service(tmp_path):
    service = GraphittiService.open(
        tmp_path / "svc", config=ServiceConfig(durability="always")
    )
    _seed(service, count=3, tag="wal")
    snapshot = service.metrics()
    assert snapshot["histograms"]["span.wal.append"]["count"] >= 3
    assert snapshot["histograms"]["span.wal.fsync"]["count"] >= 3
    service.close()


def test_slow_op_log_captures_trace_and_explain():
    service = GraphittiService(
        config=ServiceConfig(
            observability=ObservabilityConfig(slow_op_threshold_s=0.0)
        )
    )
    _seed(service)
    service.query(QUERY)
    slow = service.slow_ops()
    assert slow, "a zero-threshold query must land in the slow-op log"
    entry = slow[-1]
    assert entry["op"] == "query"
    assert entry["trace"]["name"] == "query"
    assert entry["trace"]["attributes"]["cache"] == "miss"
    assert "gql" in entry["trace"]["attributes"]
    assert entry["explain"]  # the plan explanation rode along
    assert service.metrics()["counters"]["slow_ops"] >= 1
    # Cache hits are span-free, so they never re-enter the slow log.
    before = len(service.slow_ops())
    service.query(QUERY)
    assert len(service.slow_ops()) == before
    service.close()


def test_slow_op_log_capacity_from_config():
    service = GraphittiService(
        config=ServiceConfig(
            observability=ObservabilityConfig(slow_op_threshold_s=0.0, slow_log_capacity=2)
        )
    )
    _seed(service)
    queries = [QUERY, OTHER_QUERY, 'SELECT contents WHERE { CONTENT CONTAINS "body" }']
    for text in queries:
        service.query(text)
    # The seed's commits also trip a zero threshold; the ring buffer still
    # holds exactly its configured two newest entries.
    assert len(service.slow_ops()) == 2
    assert service.metrics()["slow_ops"]["recorded_total"] >= 3
    assert service.metrics()["slow_ops"]["capacity"] == 2
    service.close()


def test_registry_resets_on_recovery_but_config_persists(tmp_path):
    config = ServiceConfig(durability="always")
    service = GraphittiService.open(tmp_path / "svc", config=config)
    _seed(service, count=4, tag="rec")
    service.query(QUERY.replace("signal", "rec"))
    assert service.metrics()["histograms"]["span.mutation.commit"]["count"] == 4
    service.close()

    recovered = GraphittiService.open(tmp_path / "svc", config=config)
    snapshot = recovered.metrics()
    assert snapshot["enabled"] is True  # config still enables observability
    # ...but the counters/histograms start from zero: a fresh registry.
    assert "span.mutation.commit" not in snapshot.get("histograms", {})
    assert snapshot.get("counters", {}).get("query.cache_hits", 0) == 0
    assert recovered.statistics()["annotations"] == 4
    recovered.close()


# -- sharded facade -----------------------------------------------------------


def test_sharded_trace_has_one_child_span_per_shard():
    service = ShardedGraphittiService(shards=3, name="obs-shard")
    _seed(service, count=18, tag="sh")
    with service.obs.tracer.span("capture") as capture:
        service.query('SELECT contents WHERE { CONTENT CONTAINS "sh" }')
    (root,) = capture.children
    assert root.name == "query"
    stages = [child.name for child in root.children]
    assert stages == ["parse", "scatter", "merge"]
    scatter = root.children[1]
    shard_spans = [child for child in scatter.children if child.name == "shard.query"]
    assert len(shard_spans) == 3
    assert sorted(span.attributes["shard"] for span in shard_spans) == [0, 1, 2]
    # Each shard's own query tree hangs off its shard.query span.
    for span in shard_spans:
        inner_names = [child.name for child in span.children]
        assert inner_names == ["query"]
    service.close()


def test_sharded_span_trees_correct_under_concurrency():
    """Parallel traced queries each see exactly their own shard children."""
    shards = 2
    service = ShardedGraphittiService(shards=shards, name="obs-conc")
    _seed(service, count=12, tag="cc")
    errors = []
    barrier = threading.Barrier(4)

    def worker(index):
        text = f'SELECT contents WHERE {{ CONTENT CONTAINS "cc body {index}" }}'
        try:
            barrier.wait()
            for _ in range(5):
                with service.obs.tracer.span(f"capture-{index}") as capture:
                    service.query(text)
                (root,) = capture.children
                scatter = next(c for c in root.children if c.name == "scatter")
                shard_ids = sorted(
                    child.attributes["shard"]
                    for child in scatter.children
                    if child.name == "shard.query"
                )
                if shard_ids != list(range(shards)):
                    errors.append(f"worker {index}: shard spans {shard_ids}")
        except Exception as exc:  # pragma: no cover - surfaced via errors list
            errors.append(f"worker {index}: {exc!r}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    service.close()


def test_sharded_metrics_sum_per_shard_counters():
    """Regression: the aggregate equals the sum of per-shard registries."""
    service = ShardedGraphittiService(shards=3, name="obs-sum")
    _seed(service, count=15, tag="sum")
    text = 'SELECT contents WHERE { CONTENT CONTAINS "sum" }'
    for _ in range(4):
        service.query(text)
    merged = service.metrics()
    per_shard = merged["per_shard"]
    assert len(per_shard) == 3
    for name, total in merged["counters"].items():
        parts = sum(snap.get("counters", {}).get(name, 0) for snap in per_shard)
        facade = service.obs.snapshot().get("counters", {}).get(name, 0)
        assert total == parts + facade, f"counter {name} does not sum"
    for name, hist in merged["histograms"].items():
        parts = sum(snap.get("histograms", {}).get(name, {}).get("count", 0) for snap in per_shard)
        facade_hist = service.obs.snapshot().get("histograms", {}).get(name, {})
        assert hist["count"] == parts + facade_hist.get("count", 0)
    # Three warm repeats hit each shard's cache: 3 repeats x 3 shards.
    assert merged["counters"]["query.cache_hits"] == 9
    service.close()


def test_sharded_statistics_still_sum_with_merge_stats():
    """statistics() aggregation (now via merge_stats) matches manual sums."""
    service = ShardedGraphittiService(shards=2, name="obs-stats")
    _seed(service, count=10, tag="st")
    stats = service.statistics()
    per_shard = [shard.statistics() for shard in service._shards]
    assert stats["annotations"] == sum(s["annotations"] for s in per_shard)
    assert stats["referents"] == sum(s["referents"] for s in per_shard)
    manual = merge_stats([{k: v for k, v in s.items() if k not in ("service",)} for s in per_shard])
    assert stats["annotations"] == manual["annotations"]
    service.close()


def test_sharded_disabled_observability():
    service = ShardedGraphittiService(
        shards=2,
        name="obs-off",
        config=ServiceConfig(observability=ObservabilityConfig(enabled=False)),
    )
    _seed(service, count=6, tag="off")
    assert service.query('SELECT contents WHERE { CONTENT CONTAINS "off" }').count > 0
    assert service.metrics() == {"enabled": False}
    assert service.slow_ops() == []
    service.close()


def test_sharded_slow_ops_attribute_shards():
    service = ShardedGraphittiService(
        shards=2,
        name="obs-slow",
        config=ServiceConfig(
            observability=ObservabilityConfig(slow_op_threshold_s=0.0)
        ),
    )
    _seed(service, count=6, tag="sl")
    service.query('SELECT contents WHERE { CONTENT CONTAINS "sl" }')
    entries = service.slow_ops()
    assert entries
    shard_entries = [entry for entry in entries if "shard" in entry]
    assert shard_entries, "per-shard slow entries must carry shard attribution"
    assert {entry["shard"] for entry in shard_entries} <= {0, 1}
    # Oldest-first ordering.
    stamps = [entry["recorded_at"] for entry in entries]
    assert stamps == sorted(stamps)
    service.close()


# -- replicated facade --------------------------------------------------------


def test_replicated_metrics_merge_roles(tmp_path):
    from repro.replica import ReplicatedGraphittiService, ReplicationConfig

    service = ReplicatedGraphittiService.open(
        tmp_path / "rep",
        replicas=2,
        config=ServiceConfig(durability="never"),
        replication=ReplicationConfig(auto_ship=False),
    )
    _seed(service, count=6, tag="rep")
    service.ship()
    service.query('SELECT contents WHERE { CONTENT CONTAINS "rep" }')
    merged = service.metrics()
    assert merged["enabled"] is True
    assert merged["counters"]["replication.records_shipped"] > 0
    per_role = merged["per_role"]
    assert len(per_role) == 3  # primary + two followers
    shipped = merged["histograms"]["span.replication.ship"]
    assert shipped["count"] >= 1
    # Primary mutation spans are visible through the merge.
    parts = sum(
        snap.get("histograms", {}).get("span.mutation.commit", {}).get("count", 0)
        for snap in per_role.values()
    )
    assert merged["histograms"]["span.mutation.commit"]["count"] == parts
    service.close()


# -- CLI surfaces -------------------------------------------------------------


def test_cli_metrics_and_trace(tmp_path, capsys):
    from repro.cli import main

    root = tmp_path / "svc"
    service = GraphittiService.open(root, config=ServiceConfig(durability="always"))
    _seed(service, count=5, tag="cli")
    service.close()

    gql = 'SELECT contents WHERE { CONTENT CONTAINS "cli" }'
    assert main(["metrics", str(root), "--exercise", "1"]) == 0
    out = capsys.readouterr().out
    assert '"enabled": true' in out
    assert "span.query" in out

    assert main(["metrics", str(root), "--format", "prometheus", "--exercise", "1"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_span_query histogram" in out

    assert main(["trace", str(root), gql]) == 0
    out = capsys.readouterr().out
    assert "result count: 5" in out
    assert "query" in out and "parse" in out and "execute" in out

    # Warm trace: the cached path is span-free and says so.
    assert main(["trace", str(root), gql, "--warm"]) == 0
    out = capsys.readouterr().out
    assert "served from the result cache" in out


def test_cli_trace_sharded_shows_per_shard_spans(tmp_path, capsys):
    from repro.cli import main

    root = tmp_path / "fleet"
    service = ShardedGraphittiService.open(root, shards=2)
    _seed(service, count=8, tag="fleet")
    service.close()

    assert main(["trace", str(root), 'SELECT contents WHERE { CONTENT CONTAINS "fleet" }']) == 0
    out = capsys.readouterr().out
    assert "scatter" in out and "merge" in out
    assert out.count("shard.query") == 2
    assert "shard=0" in out and "shard=1" in out


def test_cli_metrics_reports_disabled(tmp_path, monkeypatch):
    import argparse

    root = tmp_path / "svc"
    service = GraphittiService.open(root, config=ServiceConfig(durability="always"))
    _seed(service, count=2, tag="dis")
    service.close()

    # The CLI opens services with the default config; simulate a disabled
    # deployment by forcing the opener to pass a disabled config.
    from repro import cli as cli_module

    original = cli_module._open_service_for_root

    def _open_disabled(path, config=None):
        return original(
            path,
            config=ServiceConfig(
                durability="always",
                observability=ObservabilityConfig(enabled=False),
            ),
        )

    monkeypatch.setattr(cli_module, "_open_service_for_root", _open_disabled)
    args = argparse.Namespace(root=str(root), format="json", exercise=0)
    assert cli_module._cmd_metrics(args) == 1
