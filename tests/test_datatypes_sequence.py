"""Tests for sequence data objects."""

import pytest

from repro.datatypes.base import DataType
from repro.datatypes.sequence import DnaSequence, ProteinSequence, RnaSequence, SequenceType
from repro.errors import MarkError


def test_dna_alphabet_validation():
    with pytest.raises(MarkError):
        DnaSequence("s", "ACGTX")


def test_rna_alphabet():
    seq = RnaSequence("s", "ACGU")
    assert seq.sequence_type is SequenceType.RNA


def test_protein_alphabet():
    seq = ProteinSequence("p", "ACDEFG")
    assert seq.data_type is DataType.PROTEIN


def test_length_and_subsequence():
    seq = DnaSequence("s", "ACGTACGT")
    assert len(seq) == 8
    assert seq.subsequence(2, 4) == "GTA"


def test_mark_produces_interval():
    seq = DnaSequence("s", "ACGTACGT", domain="chr1")
    ref = seq.mark(2, 4)
    assert ref.interval.start == 2
    assert ref.interval.end == 4
    assert ref.interval.domain == "chr1"
    assert ref.descriptor["residues"] == "GTA"


def test_mark_with_offset():
    seq = DnaSequence("s", "ACGT", domain="chr1", offset=100)
    ref = seq.mark(0, 1)
    assert ref.interval.start == 100
    assert ref.interval.end == 101


def test_mark_out_of_bounds():
    seq = DnaSequence("s", "ACGT")
    with pytest.raises(MarkError):
        seq.mark(0, 10)


def test_mark_inverted_range():
    seq = DnaSequence("s", "ACGTACGT")
    with pytest.raises(MarkError):
        seq.mark(5, 2)


def test_mark_many():
    seq = DnaSequence("s", "ACGT" * 10)
    refs = seq.mark_many([(0, 2), (5, 8)])
    assert len(refs) == 2


def test_coordinate_domain_defaults_to_id():
    seq = DnaSequence("s", "ACGT")
    assert seq.coordinate_domain == "s"


def test_coordinate_domain_shared():
    a = DnaSequence("a", "ACGT", domain="chr1")
    b = DnaSequence("b", "ACGT", domain="chr1")
    assert a.coordinate_domain == b.coordinate_domain == "chr1"


def test_gc_content():
    seq = DnaSequence("s", "GCGC")
    assert seq.gc_content() == 1.0
    assert DnaSequence("s2", "ATAT").gc_content() == 0.0


def test_gc_content_protein_raises():
    with pytest.raises(MarkError):
        ProteinSequence("p", "ACDEF").gc_content()


def test_reverse_complement():
    seq = DnaSequence("s", "ACGT")
    assert seq.reverse_complement().residues == "ACGT"  # palindrome
    assert DnaSequence("s", "AACC").reverse_complement().residues == "GGTT"


def test_transcribe_back_transcribe():
    dna = DnaSequence("s", "ACGT")
    rna = dna.transcribe()
    assert rna.residues == "ACGU"
    assert rna.back_transcribe().residues == "ACGT"


def test_describe():
    seq = DnaSequence("s", "ACGT")
    assert "sequence" in seq.describe()
