"""Property tests: the indexed multigraph agrees with a naive reference model.

The indexed :class:`LabeledMultigraph` maintains per-label adjacency, a pair
index, a kind index, degree counters, and an incremental union-find component
index.  These tests drive it through interleaved ``add_node`` / ``add_edge`` /
``remove_node`` sequences and check every observable against a deliberately
dumb reference model (a node dict plus a flat edge list, re-derived per
query), so any index that drifts out of sync is caught.

Also holds the regression tests for the PR's bugfixes: ``connect()`` must
validate an explicit hub up front, and a ``NOT`` constraint must not
materialize the full annotation universe when a candidate set already exists.
"""

from collections import Counter, deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.agraph.agraph import AGraph
from repro.agraph.multigraph import LabeledMultigraph
from repro.errors import UnknownNodeError

KINDS = ("content", "referent", "ontology")
LABELS = ("annotates", "refers_to", "relates")


class ReferenceModel:
    """Flat node dict + edge list; every query recomputed from scratch."""

    def __init__(self):
        self.nodes: dict[int, str] = {}
        self.edges: list[tuple[int, int, str]] = []

    def add_node(self, node, kind):
        self.nodes[node] = kind

    def add_edge(self, source, target, label):
        self.edges.append((source, target, label))

    def remove_node(self, node):
        del self.nodes[node]
        self.edges = [e for e in self.edges if e[0] != node and e[1] != node]

    def successors(self, node, label=None):
        return Counter(
            t for s, t, lbl in self.edges if s == node and (label is None or lbl == label)
        )

    def predecessors(self, node, label=None):
        return Counter(
            s for s, t, lbl in self.edges if t == node and (label is None or lbl == label)
        )

    def degree(self, node):
        return sum(1 for s, _, _ in self.edges if s == node) + sum(
            1 for _, t, _ in self.edges if t == node
        )

    def neighbors(self, node):
        out = {t for s, t, _ in self.edges if s == node}
        inc = {s for s, t, _ in self.edges if t == node}
        return out | inc

    def labels(self):
        return {lbl for _, _, lbl in self.edges}

    def nodes_of_kind(self, kind):
        return {n for n, k in self.nodes.items() if k == kind}

    def components(self):
        seen, parts = set(), []
        for start in self.nodes:
            if start in seen:
                continue
            part = {start}
            queue = deque([start])
            while queue:
                current = queue.popleft()
                for neighbor in self.neighbors(current):
                    if neighbor not in part:
                        part.add(neighbor)
                        queue.append(neighbor)
            seen |= part
            parts.append(part)
        return parts


#: One mutation: ("node", id, kind) | ("edge", s, t, label) | ("remove", id).
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("node"), st.integers(0, 11), st.sampled_from(KINDS)),
        st.tuples(
            st.just("edge"), st.integers(0, 11), st.integers(0, 11), st.sampled_from(LABELS)
        ),
        st.tuples(st.just("remove"), st.integers(0, 11)),
    ),
    max_size=60,
)


def _apply(ops):
    graph = LabeledMultigraph()
    model = ReferenceModel()
    for op in ops:
        if op[0] == "node":
            _, node, kind = op
            # The indexed graph updates kind in place; mirror that.
            graph.add_node(node, kind=kind)
            model.add_node(node, kind)
        elif op[0] == "edge":
            _, source, target, label = op
            if source in model.nodes and target in model.nodes:
                graph.add_edge(source, target, label=label)
                model.add_edge(source, target, label)
        else:
            _, node = op
            if node in model.nodes:
                graph.remove_node(node)
                model.remove_node(node)
    return graph, model


@settings(max_examples=120, deadline=None)
@given(ops=_ops)
def test_adjacency_agrees_with_reference(ops):
    graph, model = _apply(ops)
    assert set(graph.node_ids()) == set(model.nodes)
    assert graph.edge_count == len(model.edges)
    assert graph.labels() == model.labels()
    for node in model.nodes:
        assert Counter(graph.successors(node)) == model.successors(node)
        assert Counter(graph.predecessors(node)) == model.predecessors(node)
        for label in LABELS:
            assert Counter(graph.successors(node, label=label)) == model.successors(node, label)
            assert Counter(graph.predecessors(node, label=label)) == model.predecessors(node, label)
        assert graph.degree(node) == model.degree(node)
        assert graph.out_degree(node) + graph.in_degree(node) == model.degree(node)
        assert graph.neighbors_undirected(node) == model.neighbors(node)
        assert Counter(graph.iter_neighbors(node)).keys() == model.neighbors(node)
    for kind in KINDS:
        assert {n.node_id for n in graph.nodes_of_kind(kind)} == model.nodes_of_kind(kind)


@settings(max_examples=120, deadline=None)
@given(ops=_ops)
def test_component_index_agrees_with_reference(ops):
    graph, model = _apply(ops)
    expected = {frozenset(part) for part in model.components()}
    assert {frozenset(part) for part in graph.components()} == expected
    assert graph.component_count == len(expected)
    for node in model.nodes:
        members = graph.component_members(node)
        assert members in expected or frozenset(members) in expected
        assert graph.component_size(node) == len(members)
        root = graph.component_root(node)
        assert root in members
    for a in model.nodes:
        for b in model.nodes:
            same = any(a in part and b in part for part in expected)
            assert graph.same_component(a, b) == same


@settings(max_examples=80, deadline=None)
@given(ops=_ops)
def test_pair_index_agrees_with_reference(ops):
    graph, model = _apply(ops)
    expected_pairs = Counter((s, t) for s, t, _ in model.edges)
    for (source, target), count in expected_pairs.items():
        assert len(graph.edges_between(source, target)) == count
        assert graph.has_edge(source, target)
        found = graph.find_edge(source, target)
        assert found is not None and {found.source, found.target} <= {source, target}
    for node_a in model.nodes:
        for node_b in model.nodes:
            if (node_a, node_b) not in expected_pairs:
                assert not graph.has_edge(node_a, node_b)


@settings(max_examples=80, deadline=None)
@given(ops=_ops)
def test_bidirectional_path_is_shortest(ops):
    """path() (bidirectional BFS) returns paths as short as a one-sided BFS."""
    graph, model = _apply(ops)
    agraph = AGraph()
    agraph._graph = graph  # drive the primitive over the generated graph

    def naive_distance(source, target):
        if source == target:
            return 0
        seen = {source: 0}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in model.neighbors(current):
                if neighbor not in seen:
                    seen[neighbor] = seen[current] + 1
                    if neighbor == target:
                        return seen[neighbor]
                    queue.append(neighbor)
        return None

    nodes = sorted(model.nodes)[:6]
    for source in nodes:
        for target in nodes:
            expected = naive_distance(source, target)
            path = agraph.path(source, target)
            if expected is None:
                assert path is None
            else:
                assert path is not None
                assert len(path) - 1 == expected
                assert path[0] == source and path[-1] == target
                for left, right in zip(path, path[1:]):
                    assert right in model.neighbors(left)


# -- regression: satellite bugfixes -------------------------------------------


def test_connect_rejects_unknown_hub():
    """An explicitly passed unknown hub must fail fast, not crash in path()."""
    g = AGraph()
    g.add_content("c1")
    g.add_content("c2")
    g.add_referent("r1")
    g.link_annotation("c1", "r1")
    g.link_annotation("c2", "r1")
    with pytest.raises(UnknownNodeError):
        g.connect("c1", "c2", hub="ghost")


def test_not_constraint_restricts_to_candidates(small_graphitti, monkeypatch):
    """With candidates available, NOT must not materialize the universe."""
    from repro.query.ast import KeywordConstraint
    from repro.query.builder import QueryBuilder
    from repro.query.executor import QueryExecutor

    query = (
        QueryBuilder.contents()
        .overlaps_interval("chr1", 0, 200)
        .exclude(KeywordConstraint("kinase"))
        .build()
    )
    executor = QueryExecutor(small_graphitti)
    universe_calls = []
    original = QueryExecutor._all_annotation_ids

    def counting(self):
        universe_calls.append(1)
        return original(self)

    monkeypatch.setattr(QueryExecutor, "_all_annotation_ids", counting)
    result = executor.execute(query)
    # a1 and a2 both overlap chr1[0,200]; only a2 mentions "kinase".
    assert result.annotation_ids == ["a1"]
    assert not universe_calls


def test_not_constraint_alone_still_uses_universe(small_graphitti):
    from repro.query.ast import KeywordConstraint
    from repro.query.builder import QueryBuilder

    query = QueryBuilder.contents().exclude(KeywordConstraint("kinase")).build()
    result = small_graphitti.query(query)
    assert result.annotation_ids == ["a1"]
