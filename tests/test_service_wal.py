"""Tests for the write-ahead log: appends, torn tails, corruption, truncation."""

import json

import pytest

from repro.errors import ServiceError, WalCorruptionError
from repro.service.wal import (
    WAL_OPS,
    WriteAheadLog,
    encode_record,
    parse_record,
    read_records,
)


def _wal(tmp_path, durability="never"):
    return WriteAheadLog(tmp_path / "wal.jsonl", durability=durability)


def test_append_assigns_sequence(tmp_path):
    with _wal(tmp_path) as wal:
        assert wal.append("commit", {"annotation_id": "a1"}) == 1
        assert wal.append("delete_annotation", {"annotation_id": "a1"}) == 2
        assert wal.last_seq == 2 and wal.record_count == 2
    records, torn = read_records(tmp_path / "wal.jsonl")
    assert not torn
    assert [record["seq"] for record in records] == [1, 2]
    assert records[0]["op"] == "commit"


def test_append_many_is_one_batch(tmp_path):
    with _wal(tmp_path) as wal:
        seqs = wal.append_many([("commit", {"n": index}) for index in range(5)])
    assert seqs == [1, 2, 3, 4, 5]
    records, _ = read_records(tmp_path / "wal.jsonl")
    assert len(records) == 5


def test_unknown_op_rejected(tmp_path):
    with _wal(tmp_path) as wal:
        with pytest.raises(ServiceError):
            wal.append("drop_table", {})


def test_reopen_continues_numbering(tmp_path):
    with _wal(tmp_path) as wal:
        wal.append("commit", {"n": 1})
    with _wal(tmp_path) as wal:
        assert wal.last_seq == 1
        assert wal.append("commit", {"n": 2}) == 2
    records, _ = read_records(tmp_path / "wal.jsonl")
    assert [record["seq"] for record in records] == [1, 2]


def test_torn_tail_tolerated(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WriteAheadLog(path, durability="never") as wal:
        wal.append("commit", {"n": 1})
        wal.append("commit", {"n": 2})
    # Simulate a crash mid-append: chop bytes off the final record.
    raw = path.read_bytes()
    path.write_bytes(raw[:-9])
    records, torn = read_records(path)
    assert torn
    assert [record["payload"]["n"] for record in records] == [1]


def test_corruption_before_tail_raises(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WriteAheadLog(path, durability="never") as wal:
        wal.append("commit", {"n": 1})
        wal.append("commit", {"n": 2})
        wal.append("commit", {"n": 3})
    lines = path.read_bytes().splitlines(keepends=True)
    lines[1] = b"{garbage!}\n"
    path.write_bytes(b"".join(lines))
    with pytest.raises(WalCorruptionError):
        read_records(path)


def test_record_with_bad_shape_is_corruption(tmp_path):
    path = tmp_path / "wal.jsonl"
    # Valid JSON but not a valid record (bad op), followed by a good record.
    path.write_text(
        json.dumps({"seq": 1, "op": "nonsense", "payload": {}}) + "\n"
        + json.dumps({"seq": 2, "op": "commit", "payload": {}}) + "\n"
    )
    with pytest.raises(WalCorruptionError):
        read_records(path)


def test_reopen_after_torn_tail_rewrites_clean(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WriteAheadLog(path, durability="never") as wal:
        wal.append("commit", {"n": 1})
        wal.append("commit", {"n": 2})
    raw = path.read_bytes()
    path.write_bytes(raw[:-5])
    with WriteAheadLog(path, durability="never") as wal:
        assert wal.last_seq == 1  # torn record dropped
        wal.append("commit", {"n": 3})
    records, torn = read_records(path)
    assert not torn
    assert [record["payload"]["n"] for record in records] == [1, 3]


def test_truncate_keeps_numbering(tmp_path):
    with _wal(tmp_path) as wal:
        wal.append("commit", {"n": 1})
        wal.truncate()
        assert wal.record_count == 0
        assert wal.append("commit", {"n": 2}) == 2  # numbering continues
    records, _ = read_records(tmp_path / "wal.jsonl")
    assert [record["seq"] for record in records] == [2]


def test_missing_and_empty_files(tmp_path):
    assert read_records(tmp_path / "absent.jsonl") == ([], False)
    empty = tmp_path / "empty.jsonl"
    empty.write_bytes(b"")
    assert read_records(empty) == ([], False)


def test_bad_durability_mode_rejected(tmp_path):
    with pytest.raises(ServiceError):
        WriteAheadLog(tmp_path / "wal.jsonl", durability="sometimes")


# -- strict encoding and codec round-trips -------------------------------------


def test_unserializable_payload_rejected_before_append(tmp_path):
    """A record that cannot round-trip through JSON must never be acked."""
    with _wal(tmp_path) as wal:
        with pytest.raises(ServiceError):
            wal.append("commit", {"keywords": {"a", "set"}})
        with pytest.raises(ServiceError):
            wal.append("commit", {"score": float("nan")})
        # The refusals left no partial line behind: the log is still clean.
        assert wal.append("commit", {"n": 1}) == 1
    records, torn = read_records(tmp_path / "wal.jsonl")
    assert not torn
    assert [record["seq"] for record in records] == [1]


def test_encode_record_strictness():
    assert encode_record({"seq": 1, "op": "commit", "payload": {"n": 2}}) == (
        '{"seq":1,"op":"commit","payload":{"n":2}}'
    )
    for payload in ({"bad": {1, 2}}, {"bad": float("inf")}, {"bad": object()}):
        with pytest.raises(ServiceError):
            encode_record({"seq": 1, "op": "commit", "payload": payload})


def test_codec_round_trips_every_op_shape(tmp_path):
    """encode -> parse is the identity for every record the service logs.

    The scripted recovery sequence emits all six WAL_OPS with their real
    payload shapes (nested referents, ontology terms, move_referents...),
    so this pins the full codec surface, not toy payloads.
    """
    from test_service_recovery import scripted_root

    records, torn = read_records(scripted_root(tmp_path) / "wal.jsonl")
    assert not torn
    assert {record["op"] for record in records} == set(WAL_OPS)
    for record in records:
        line = encode_record(record)
        assert parse_record(line.encode("utf-8")) == record
        # Shipping frames records exactly as the log stores them.
        assert parse_record((line + "\n").encode("utf-8").rstrip(b"\n")) == record
