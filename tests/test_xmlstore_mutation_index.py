"""Delta index maintenance and lazy document regeneration in the xmlstore.

Covers the two new inverted-index paths (``update_document`` term diff,
``apply_text_delta`` exact part delta), the collection's in-place update
methods, and the deferred-indexing delete regression: a document committed
with ``defer_index=True`` and removed before ``flush_index()`` must never
resurrect ghost postings.
"""

import pytest

from repro.xmlstore.collection import DocumentCollection
from repro.xmlstore.parser import parse_xml
from repro.xmlstore.text_index import InvertedIndex


def _doc(text: str):
    return parse_xml(f"<note label='tagged'>{text}</note>")


def _rebuilt(collection: DocumentCollection) -> InvertedIndex:
    fresh = InvertedIndex()
    for doc_id in collection.document_ids():
        fresh.add_document(doc_id, collection._searchable_text(collection.get(doc_id)))
    return fresh


def assert_index_equals_rebuild(collection: DocumentCollection):
    live = collection._index
    fresh = _rebuilt(collection)
    assert live._postings == fresh._postings
    assert live._doc_lengths == fresh._doc_lengths
    assert {d: set(t) for d, t in live._doc_terms.items()} == {
        d: set(t) for d, t in fresh._doc_terms.items()
    }


# -- InvertedIndex.update_document (full-text term diff) -----------------------


def test_update_document_matches_full_reindex():
    index = InvertedIndex()
    index.add_document("d1", "alpha beta gamma alpha")
    touched, dropped = index.update_document("d1", "beta delta delta")
    assert dropped == 2  # alpha, gamma
    assert touched >= 1  # delta (new), beta unchanged
    reference = InvertedIndex()
    reference.add_document("d1", "beta delta delta")
    assert index._postings == reference._postings
    assert index._doc_lengths == reference._doc_lengths


def test_update_document_unindexed_falls_back_to_add():
    index = InvertedIndex()
    index.update_document("d1", "fresh words")
    assert index.document_frequency("fresh") == 1


def test_update_document_unchanged_text_touches_nothing():
    index = InvertedIndex()
    index.add_document("d1", "alpha beta")
    touched, dropped = index.update_document("d1", "alpha beta")
    assert (touched, dropped) == (0, 0)


# -- InvertedIndex.apply_text_delta (exact part delta) -------------------------


def test_apply_text_delta_equals_reindex():
    index = InvertedIndex()
    index.add_document("d1", "alpha beta title-old shared")
    index.apply_text_delta("d1", ["title-old"], ["title-new words"])
    reference = InvertedIndex()
    reference.add_document("d1", "alpha beta title-new words shared")
    assert index._postings == reference._postings
    assert index._doc_lengths == reference._doc_lengths


def test_apply_text_delta_requires_indexed_document():
    index = InvertedIndex()
    with pytest.raises(KeyError):
        index.apply_text_delta("ghost", ["a"], ["b"])


def test_apply_text_delta_floors_at_zero():
    index = InvertedIndex()
    index.add_document("d1", "alpha")
    # inexact caller: removes more than the document holds
    index.apply_text_delta("d1", ["alpha alpha alpha"], [])
    assert index.document_frequency("alpha") == 0
    assert index._doc_lengths["d1"] == 0


# -- DocumentCollection in-place updates ---------------------------------------


def test_collection_update_delta_is_lazy_and_exact():
    collection = DocumentCollection("lazy")
    collection.add(_doc("alpha beta"), doc_id="d1")
    collection.update_delta(
        "d1", lambda: _doc("alpha gamma"), removed_parts=["beta"], added_parts=["gamma"]
    )
    assert collection.stale_document_count == 1
    # index already reflects the edit, before any materialization
    assert collection._index.document_contains("d1", "gamma")
    assert not collection._index.document_contains("d1", "beta")
    # the first read materializes the new body
    assert "gamma" in collection.get("d1").text_content()
    assert collection.stale_document_count == 0
    assert collection.search_keyword("gamma") == ["d1"]
    assert collection.search_keyword("beta") == []
    assert_index_equals_rebuild(collection)


def test_collection_update_eager_delta():
    collection = DocumentCollection("eager")
    collection.add(_doc("alpha beta"), doc_id="d1")
    collection.update("d1", _doc("alpha delta"))
    assert collection.stale_document_count == 0
    assert collection.search_keyword("delta") == ["d1"]
    assert collection.search_keyword("beta") == []
    assert_index_equals_rebuild(collection)


def test_search_materializes_stale_candidates():
    collection = DocumentCollection("verify")
    collection.add(_doc("alpha beta"), doc_id="d1")
    collection.update_delta(
        "d1", lambda: _doc("alpha phrase match"), ["beta"], ["phrase match"]
    )
    # phrase verification must read the *new* body, not the stale one
    assert collection.search_keyword("phrase match") == ["d1"]


def test_save_and_corpus_materialize(tmp_path):
    collection = DocumentCollection("persist")
    collection.add(_doc("alpha"), doc_id="d1")
    collection.update_delta("d1", lambda: _doc("omega"), ["alpha"], ["omega"])
    reloaded = DocumentCollection.load(collection.save(tmp_path / "c.json"))
    assert "omega" in reloaded.get("d1").text_content()
    assert "omega" in collection.to_corpus_xml()


# -- deferred-indexing delete regression (ghost postings) ----------------------


def test_deferred_add_then_remove_leaves_no_ghost_postings():
    collection = DocumentCollection("ghosts")
    collection.add(_doc("phantom keyword"), doc_id="d1", defer_index=True)
    collection.add(_doc("surviving keyword"), doc_id="d2", defer_index=True)
    assert collection.pending_index_count == 2
    collection.remove("d1")  # deleted before the flush ever indexed it
    assert collection.pending_index_count == 1
    flushed = collection.flush_index()
    assert flushed == 1
    assert collection.search_keyword("phantom") == []
    assert collection._index.document_frequency("phantom") == 0
    assert collection.search_keyword("surviving") == ["d2"]
    assert_index_equals_rebuild(collection)


def test_deferred_update_then_flush_indexes_latest_body():
    collection = DocumentCollection("pending-update")
    collection.add(_doc("first draft"), doc_id="d1", defer_index=True)
    collection.update_delta("d1", lambda: _doc("second draft"), ["first"], ["second"])
    # still pending: the delta must NOT have touched the index
    assert collection.pending_index_count == 1
    collection.flush_index()
    assert collection.search_keyword("second") == ["d1"]
    assert collection.search_keyword("first") == []
    assert_index_equals_rebuild(collection)


def test_manager_bulk_commit_delete_flush_interleaving():
    """Satellite regression: bulk_commit (defer) -> delete -> flush."""
    from repro.core.manager import Graphitti
    from repro.datatypes import DnaSequence

    g = Graphitti("ghost-mgr")
    g.register(DnaSequence("seq", "ACGT" * 100, domain="g:1"))
    batch = [
        g.new_annotation(f"g{i}", keywords=["bulk", f"only{i}"], body=f"bulk body {i}")
        .mark_sequence("seq", i * 10, i * 10 + 5)
        .build()
        for i in range(4)
    ]
    g.commit_many(batch)  # deferred indexing
    assert g.contents.pending_index_count == 4
    g.delete_annotation("g2")
    # the flush (triggered by the first search) must not resurrect g2
    assert g.search_by_keyword("only2") == []
    assert g.search_by_keyword("bulk") == ["g0", "g1", "g3"]
    assert g.contents._index.document_frequency("only2") == 0
    report = g.check_integrity()
    assert report.ok, report.errors
