"""Tests for the programmatic query builder."""

import pytest

from repro.query.ast import (
    KeywordConstraint,
    OntologyConstraint,
    OverlapConstraint,
    PathConstraint,
    RegionConstraint,
    ReturnKind,
    TypeConstraint,
)
from repro.query.builder import QueryBuilder


def test_return_kinds():
    assert QueryBuilder.contents().build().return_kind is ReturnKind.CONTENTS
    assert QueryBuilder.referents().build().return_kind is ReturnKind.REFERENTS
    assert QueryBuilder.graph().build().return_kind is ReturnKind.GRAPH


def test_contains():
    query = QueryBuilder.contents().contains("protease").build()
    assert isinstance(query.constraints[0], KeywordConstraint)
    assert query.constraints[0].keyword == "protease"


def test_refers():
    query = QueryBuilder.contents().refers("t", ontology="o", include_descendants=False).build()
    c = query.constraints[0]
    assert isinstance(c, OntologyConstraint)
    assert c.ontology == "o"
    assert c.include_descendants is False


def test_overlaps_interval():
    query = QueryBuilder.contents().overlaps_interval("chr1", 10, 40, min_count=2).build()
    c = query.constraints[0]
    assert isinstance(c, OverlapConstraint)
    assert c.min_count == 2


def test_overlaps_region():
    query = QueryBuilder.graph().overlaps_region("atlas", (0, 0), (5, 5)).build()
    c = query.constraints[0]
    assert isinstance(c, RegionConstraint)
    assert c.lo == (0, 0) and c.hi == (5, 5)


def test_of_type():
    query = QueryBuilder.contents().of_type("dna").build()
    assert isinstance(query.constraints[0], TypeConstraint)


def test_path():
    query = QueryBuilder.graph().path("a", "b", max_length=3).build()
    c = query.constraints[0]
    assert isinstance(c, PathConstraint)
    assert c.max_length == 3


def test_limit():
    query = QueryBuilder.contents().contains("x").limit(5).build()
    assert query.limit == 5


def test_chaining_builds_conjunction():
    query = (
        QueryBuilder.contents()
        .contains("protease")
        .refers("protein:protease")
        .overlaps_interval("chr1", 1, 2)
        .of_type("dna")
        .build()
    )
    assert len(query.constraints) == 4


def test_describe_includes_all():
    query = QueryBuilder.contents().contains("x").of_type("dna").build()
    description = query.describe()
    assert "CONTAINS" in description
    assert "type dna" in description
