"""Network facade vs the threaded oracle: bit-identical results.

The tentpole acceptance bar: a :class:`NetworkShardedGraphittiService` must
be observationally identical to the threaded :class:`ShardedGraphittiService`
on the full query/mutation matrix — same annotation ids in the same order,
same referent pages — because both are views of the same routed shards.
Thread-mode workers (real sockets, in-process services) keep the matrix
fast and deterministic; process-mode coverage lives in test_net_process.py.
"""

import pytest

from repro.core.manager import Graphitti
from repro.errors import ShardUnavailableError
from repro.net import NetworkShardedGraphittiService, RetryPolicy
from repro.service import GraphittiService

from test_shard_service import PROBES, assert_bit_identical, populate

FAST_RETRY = RetryPolicy(attempts=2, base_backoff_s=0.001, max_backoff_s=0.005)


def open_net(**kwargs):
    kwargs.setdefault("worker_mode", "thread")
    kwargs.setdefault("start_monitor", False)
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("op_timeout_s", 10.0)
    return NetworkShardedGraphittiService.open(None, shards=4, **kwargs)


@pytest.fixture
def pair():
    net = open_net()
    oracle = GraphittiService(manager=Graphitti("net-oracle"))
    populate(net)
    populate(oracle)
    yield net, oracle
    net.close()
    oracle.close()


def test_queries_bit_identical_to_unsharded(pair):
    assert_bit_identical(*pair)


def test_queries_bit_identical_after_deletes(pair):
    net, oracle = pair
    for index in (3, 10, 25):
        net.delete_annotation(f"x-{index:03d}")
        oracle.delete_annotation(f"x-{index:03d}")
    assert_bit_identical(net, oracle)


def test_queries_bit_identical_after_updates(pair):
    net, oracle = pair
    changes = {"title": "retitled", "keywords": ["alpha", "common", "edited"]}
    for service in pair:
        service.update_annotation("x-005", dict(changes))
    assert_bit_identical(net, oracle)
    assert net.annotation("x-005").content.dublin_core.title == "retitled"


def test_queries_bit_identical_after_object_delete(pair):
    net, oracle = pair
    left = net.delete_object("obj2")
    right = oracle.delete_object("obj2")
    assert sorted(left) == sorted(right)
    assert_bit_identical(net, oracle)


def test_bulk_commit_routes_and_matches(pair):
    net, oracle = pair
    for service in pair:
        batch = [
            service.new_annotation(
                f"bulk-{index}", title=f"bulk {index}", keywords=["alpha", "common"]
            ).mark_sequence(f"obj{index % 6}", 10, 50)
            for index in range(6)
        ]
        committed = service.bulk_commit(batch)
        assert len(committed) == 6
    assert_bit_identical(net, oracle)


def test_reads_match_shard_surface(pair):
    net, oracle = pair
    assert net.annotation_count == oracle.annotation_count == 36
    assert net.annotation("x-001").annotation_id == "x-001"
    assert sorted(net.search_by_keyword("alpha")) == sorted(oracle.search_by_keyword("alpha"))
    assert sorted(net.annotations_on_object("obj1")) == sorted(
        oracle.annotations_on_object("obj1")
    )
    report = net.check_integrity()
    assert report.ok


def test_explain_exposes_the_fan_out(pair):
    net, _oracle = pair
    explanation = net.explain(PROBES[0])
    assert explanation


def test_statistics_and_metrics_cover_the_network_tier(pair):
    net, _oracle = pair
    stats = net.statistics()
    assert stats["network"]["mode"] == "thread"
    assert stats["network"]["shards"] == 4
    net.query(PROBES[0])
    snapshot = net.metrics()
    assert snapshot["counters"]["rpc.requests"] > 0
    assert any(key.startswith("rpc.client.") for key in snapshot["histograms"])
    assert any(key.startswith("rpc.serve.") for key in snapshot["histograms"])
    assert "net.inflight" in snapshot["gauges"]


def test_worker_slow_log_carries_shard_and_rpc_attribution(pair):
    net, _oracle = pair
    # Force every rpc to be "slow" on one worker, then look at its entries.
    worker = net._worker_services[2]
    worker.obs.slow_log.threshold_s = 0.0
    net.query(PROBES[1])
    entries = net.slow_ops()
    rpc_entries = [
        entry
        for entry in entries
        if entry.get("shard") == 2 and entry["op"].startswith("rpc.")
    ]
    assert rpc_entries  # every rpc-level entry names its shard and rpc op


def test_strict_reads_raise_when_a_shard_is_down():
    net = open_net()
    populate(net, count=12)
    net._servers[1].stop()
    with pytest.raises(ShardUnavailableError) as excinfo:
        net.query(PROBES[0])
    assert 1 in excinfo.value.shards
    net.close()


def test_degraded_reads_tag_partial_results():
    net = open_net(degraded_reads=True)
    populate(net, count=12)
    full = net.query(PROBES[0])
    assert not full.degraded
    net._servers[1].stop()
    partial = net.query(PROBES[0])
    assert partial.degraded
    assert partial.missing_shards == [1]
    # The surviving shards' rows are intact and correctly ordered.
    expected = [
        annotation_id
        for annotation_id in full.annotation_ids
        if annotation_id not in net._shards[1].__dict__.get("_gone", ())
    ]
    assert set(partial.annotation_ids) <= set(full.annotation_ids)
    assert partial.annotation_ids == [
        annotation_id
        for annotation_id in full.annotation_ids
        if annotation_id in partial.annotation_ids
    ]
    assert net.obs.registry.counter("query.degraded").value >= 1
    net.close()


def test_degraded_reads_still_raise_when_every_shard_is_down():
    net = open_net(degraded_reads=True)
    populate(net, count=8)
    for server in net._servers:
        server.stop()
    with pytest.raises(ShardUnavailableError):
        net.query(PROBES[0])
    net.close()


def test_thread_mode_restart_revives_a_stopped_listener():
    net = open_net()
    populate(net, count=8)
    before = net.query(PROBES[0]).annotation_ids
    net.kill_shard(2)
    net.restart_shard(2)
    assert net.query(PROBES[0]).annotation_ids == before
    assert net.obs.registry.counter("net.worker_restarts").value == 1
    net.close()


def test_query_ast_objects_are_rejected():
    net = open_net()
    from repro.query.parser import parse_query

    with pytest.raises(Exception):
        net.query(parse_query(PROBES[0]))
    net.close()
