"""Smoke tests that every bundled example script runs end to end.

The examples are the public-API walkthroughs; running their ``main()`` in
process ensures the documented workflows keep working as the library evolves.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_NAMES = [
    "quickstart",
    "influenza_study",
    "neuroscience_study",
    "collaborative_review",
    "provenance_propagation",
    "admin_dashboard",
    "genome_pipeline",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLE_NAMES)
def test_example_runs(name, capsys):
    module = _load(name)
    assert hasattr(module, "main")
    module.main()
    out = capsys.readouterr().out
    assert out  # the example printed something


def test_all_examples_present():
    for name in EXAMPLE_NAMES:
        assert (EXAMPLES_DIR / f"{name}.py").exists()
