"""Lock-order detector across the real concurrency surfaces: zero cycles.

Every tier (single service, sharded facade, replicated deployment, net
facade in thread mode) runs a real mixed workload with the ReadWriteLock
class instrumented; the per-thread acquisition graph must come back acyclic.
The plain mutexes that ride next to the service lock (query-result cache,
prepared-plan memo) are wrapped into the same graph for the single-service
run, so a service-lock-vs-cache-mutex inversion cannot hide.

The proof that the detector FIRES on an inversion lives in
test_analysis_runtime.py (inverted-order fixture); these tests are the
other half: the shipped tree is clean.
"""

import pytest

from repro.analysis.runtime import monitoring, name_lock, wrap_lock
from repro.core.manager import Graphitti
from repro.service import GraphittiService, ServiceConfig
from repro.shard import ShardedGraphittiService
from repro.workloads.service_scenario import run_service_workload, seed_service_objects

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


def test_service_mixed_workload_is_acyclic(tmp_path):
    with monitoring() as monitor:
        service = GraphittiService.open(
            tmp_path / "svc", config=ServiceConfig(checkpoint_on_close=False)
        )
        name_lock(service._lock, "service-lock")
        service._cache._mutex = wrap_lock("cache-mutex", service._cache._mutex, monitor)
        service._plans_mutex = wrap_lock("plans-mutex", service._plans_mutex, monitor)
        object_ids = seed_service_objects(service)
        summary = run_service_workload(
            service,
            object_ids,
            readers=3,
            writers=2,
            queries_per_reader=40,
            commits_per_writer=12,
            delete_every=5,
            integrity_every=20,
            seed=20260808,
            run_tag="lockorder",
        )
        assert summary["errors"] == []
        service.statistics()
        service.metrics()
        service.checkpoint()
        service.close()
    assert monitor.acquisitions > 100
    monitor.assert_no_cycles()


def test_sharded_facade_is_acyclic():
    with monitoring() as monitor:
        sharded = ShardedGraphittiService(shards=3, name="lockorder-shard")
        for index, shard in enumerate(sharded.shards):
            name_lock(shard._lock, f"shard-{index}-lock")
        from test_shard_service import populate

        populate(sharded)
        sharded.query('SELECT contents WHERE { CONTENT CONTAINS "alpha" }')
        sharded.statistics()
        for index in (3, 10, 25):
            sharded.delete_annotation(f"x-{index:03d}")
        sharded.close()
    assert monitor.acquisitions > 0
    monitor.assert_no_cycles()


def test_replicated_deployment_is_acyclic(tmp_path):
    from repro.replica import ReplicatedGraphittiService, ReplicationConfig
    from repro.datatypes import DnaSequence

    with monitoring() as monitor:
        deployment = ReplicatedGraphittiService.open(
            tmp_path / "repl",
            replicas=2,
            config=ServiceConfig(durability="never"),
            replication=ReplicationConfig(
                auto_ship=False, auto_failover=False, read_deadline=0.05
            ),
        )
        deployment.register(
            DnaSequence("lockorder_seq", "ACGT" * 100, domain="lockorder:chr1")
        )
        for index in range(4):
            (
                deployment.new_annotation(
                    f"lockorder-{index}",
                    keywords=["lockorder"],
                    body=f"lock order probe {index}",
                )
                .mark_sequence("lockorder_seq", index * 10, index * 10 + 8)
                .commit()
            )
        deployment.ship()
        deployment.query('SELECT contents WHERE { CONTENT CONTAINS "lock order" }')
        deployment.close()
    assert monitor.acquisitions > 0
    monitor.assert_no_cycles()


def test_net_facade_thread_mode_is_acyclic():
    from repro.net import NetworkShardedGraphittiService, RetryPolicy

    with monitoring() as monitor:
        net = NetworkShardedGraphittiService.open(
            None,
            shards=2,
            worker_mode="thread",
            start_monitor=False,
            retry=RetryPolicy(attempts=2, base_backoff_s=0.001, max_backoff_s=0.005),
            op_timeout_s=10.0,
        )
        from test_shard_service import populate

        populate(net, count=12)
        net.query('SELECT contents WHERE { CONTENT CONTAINS "alpha" }')
        net.close()
    assert monitor.acquisitions > 0
    monitor.assert_no_cycles()
