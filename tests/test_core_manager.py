"""Tests for the Graphitti manager facade."""

import pytest

from repro import Graphitti
from repro.datatypes import DnaSequence, Image
from repro.errors import AnnotationError, GraphittiError, UnknownObjectError
from repro.ontology.builtin import build_protein_ontology


def test_register_ontology_and_resolve():
    g = Graphitti()
    g.register_ontology(build_protein_ontology())
    assert g.resolve_ontology_term("Protease") == "protein:protease"
    assert g.resolve_ontology_term("protein:TP53") == "protein:TP53"


def test_register_duplicate_ontology():
    g = Graphitti()
    g.register_ontology(build_protein_ontology())
    with pytest.raises(GraphittiError):
        g.register_ontology(build_protein_ontology())


def test_unknown_ontology():
    g = Graphitti()
    with pytest.raises(GraphittiError):
        g.ontology("missing")


def test_register_object_records_metadata():
    g = Graphitti()
    g.register(DnaSequence("s", "ACGT", domain="chr1"), organism="test")
    meta = g.object_metadata("s")
    assert meta["data_type"] == "dna_sequence"
    assert meta["domain"] == "chr1"
    assert meta["metadata"]["organism"] == "test"


def test_register_stores_raw_bytes():
    g = Graphitti()
    g.register(DnaSequence("s", "ACGT"), raw=b"\x00\x01")
    assert g.object_metadata("s")["raw"] == b"\x00\x01"


def test_object_metadata_unknown():
    g = Graphitti()
    with pytest.raises(UnknownObjectError):
        g.object_metadata("ghost")


def test_coordinate_system_registered():
    g = Graphitti()
    g.register(Image("img", dimension=2, space="atlas"))
    assert "atlas" in g.coordinate_systems


def test_new_annotation_generates_id():
    g = Graphitti()
    g.register(DnaSequence("s", "ACGT", domain="chr1"))
    builder = g.new_annotation().mark_sequence("s", 0, 2)
    annotation = builder.commit()
    assert annotation.annotation_id.startswith("anno-")


def test_new_annotation_duplicate_id():
    g = Graphitti()
    g.register(DnaSequence("s", "ACGT", domain="chr1"))
    g.new_annotation("a1").mark_sequence("s", 0, 2).commit()
    with pytest.raises(AnnotationError):
        g.new_annotation("a1")


def test_commit_unregistered_object():
    g = Graphitti()
    g.register(DnaSequence("s", "ACGT", domain="chr1"))
    builder = g.new_annotation("a1").mark_sequence("s", 0, 2)
    annotation = builder.build()
    # forge a referent on an unregistered object
    from repro.datatypes.base import DataType, SubstructureRef
    from repro.spatial.interval import Interval

    annotation.add_referent(
        SubstructureRef("ghost", DataType.DNA, interval=Interval(0, 1, domain="d"))
    )
    with pytest.raises(UnknownObjectError):
        g.commit(annotation)


def test_empty_annotation_rejected():
    g = Graphitti()
    with pytest.raises(AnnotationError):
        g.new_annotation("a1").commit()


def test_commit_wires_agraph(small_graphitti):
    g = small_graphitti
    # a1 and a2 both mark seq1[10,40] -> shared referent -> related
    assert g.related_annotations("a1") == ["a2"]
    assert g.agraph.node_count > 0


def test_search_by_keyword(small_graphitti):
    assert small_graphitti.search_by_keyword("protease") == ["a1"]
    assert small_graphitti.search_by_keyword("kinase") == ["a2"]


def test_search_by_ontology(small_graphitti):
    assert "a1" in small_graphitti.search_by_ontology("protein:protease")


def test_search_by_overlap_interval(small_graphitti):
    hits = small_graphitti.search_by_overlap_interval("chr1", 20, 25)
    assert set(hits) == {"a1", "a2"}


def test_search_by_overlap_region(small_graphitti):
    hits = small_graphitti.search_by_overlap_region("atlas:25um", (15, 15), (20, 20))
    assert "a1" in hits


def test_path_between_annotations(small_graphitti):
    path = small_graphitti.path_between_annotations("a1", "a2")
    assert path is not None
    assert path[0] == "a1" and path[-1] == "a2"


def test_connect_annotations(small_graphitti):
    subgraph = small_graphitti.connect_annotations("a1", "a2")
    assert subgraph.is_connected


def test_correlated_data(small_graphitti):
    correlated = small_graphitti.correlated_data("a1")
    shared = [others for others in correlated.values() if "a2" in others]
    assert shared


def test_witness_structure(small_graphitti):
    witness = small_graphitti.witness_structure("a1")
    assert witness["annotation"] == "a1"
    assert len(witness["referents"]) == 2


def test_statistics(small_graphitti):
    stats = small_graphitti.statistics()
    assert stats["annotations"] == 2
    assert stats["data_objects"] == 3
    assert stats["interval_trees"] >= 1


def test_unknown_annotation(small_graphitti):
    with pytest.raises(AnnotationError):
        small_graphitti.annotation("ghost")
