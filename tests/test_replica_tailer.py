"""WalCursor semantics: incremental polls, torn tails, truncation, gaps.

The cursor is the shipping side of replication — these tests pin the
contract the follower pipeline builds on: complete records are returned
exactly once, a torn tail is never consumed and never an error, mid-file
damage refuses to replay, a checkpoint truncation restarts the cursor
idempotently, and a truncation that skipped history the cursor never saw
raises :class:`ReplicationGapError` instead of silently dropping it.
"""

import json

import pytest

from repro.errors import WalCorruptionError
from repro.replica import (
    ReplicationGapError,
    WalCursor,
    decode_shipment,
    encode_shipment,
    tear_payload,
)


def _record(seq, op="commit"):
    return {"seq": seq, "op": op, "payload": {"annotation_id": f"a{seq}"}}


def _line(seq, op="commit"):
    return json.dumps(_record(seq, op), separators=(",", ":")) + "\n"


def _write(path, *seqs, tail=""):
    path.write_text("".join(_line(seq) for seq in seqs) + tail)


def test_poll_missing_file_returns_nothing(tmp_path):
    cursor = WalCursor(tmp_path / "wal.jsonl")
    assert cursor.poll() == []
    assert cursor.state() == {"offset": 0, "last_seq": 0}


def test_poll_returns_each_record_exactly_once(tmp_path):
    wal = tmp_path / "wal.jsonl"
    _write(wal, 1, 2)
    cursor = WalCursor(wal)
    assert [r["seq"] for r in cursor.poll()] == [1, 2]
    assert cursor.poll() == []  # nothing new
    with wal.open("a") as handle:
        handle.write(_line(3))
    assert [r["seq"] for r in cursor.poll()] == [3]
    assert cursor.state() == {"offset": wal.stat().st_size, "last_seq": 3}


def test_torn_tail_never_consumed_then_completed(tmp_path):
    wal = tmp_path / "wal.jsonl"
    full_line = _line(3)
    _write(wal, 1, 2, tail=full_line[: len(full_line) // 2])
    cursor = WalCursor(wal)
    assert [r["seq"] for r in cursor.poll()] == [1, 2]
    # The torn half-record was not consumed; completing it delivers it whole.
    _write(wal, 1, 2, 3)
    assert [r["seq"] for r in cursor.poll()] == [3]


def test_damaged_final_line_treated_as_torn(tmp_path):
    wal = tmp_path / "wal.jsonl"
    _write(wal, 1, tail="{garbage\n")
    cursor = WalCursor(wal)
    assert [r["seq"] for r in cursor.poll()] == [1]
    # The damaged line sits untouched; a reopened WAL truncates it away and
    # the shrink-restart path lets the cursor carry on.
    _write(wal, 1, 2)
    assert [r["seq"] for r in cursor.poll()] == [2]


def test_mid_file_damage_raises(tmp_path):
    wal = tmp_path / "wal.jsonl"
    wal.write_text(_line(1) + "{garbage\n" + _line(2))
    cursor = WalCursor(wal)
    with pytest.raises(WalCorruptionError):
        cursor.poll()


def test_truncation_restart_is_idempotent(tmp_path):
    wal = tmp_path / "wal.jsonl"
    _write(wal, 1, 2, 3)
    cursor = WalCursor(wal)
    cursor.poll()
    # A checkpoint truncates the log; numbering continues above the snapshot.
    _write(wal, 4)
    assert [r["seq"] for r in cursor.poll()] == [4]
    assert cursor.truncation_restarts == 1


def test_truncation_gap_raises(tmp_path):
    wal = tmp_path / "wal.jsonl"
    _write(wal, 1, 2)
    cursor = WalCursor(wal)
    cursor.poll()
    # Records 3..5 were checkpointed away before this cursor saw them.
    _write(wal, 6)
    with pytest.raises(ReplicationGapError) as exc_info:
        cursor.poll()
    assert exc_info.value.needed == 3
    assert exc_info.value.available == 6


def test_seq_filter_skips_already_applied(tmp_path):
    wal = tmp_path / "wal.jsonl"
    _write(wal, 1, 2, 3, 4)
    cursor = WalCursor(wal, last_seq=2)
    assert [r["seq"] for r in cursor.poll()] == [3, 4]


def test_max_records_batches(tmp_path):
    wal = tmp_path / "wal.jsonl"
    _write(wal, 1, 2, 3, 4, 5)
    cursor = WalCursor(wal)
    assert [r["seq"] for r in cursor.poll(max_records=2)] == [1, 2]
    assert [r["seq"] for r in cursor.poll(max_records=2)] == [3, 4]
    assert [r["seq"] for r in cursor.poll(max_records=2)] == [5]


def test_state_resumes_a_new_cursor(tmp_path):
    wal = tmp_path / "wal.jsonl"
    _write(wal, 1, 2)
    cursor = WalCursor(wal)
    cursor.poll()
    _write(wal, 1, 2, 3)
    resumed = WalCursor(wal, **cursor.state())
    assert [r["seq"] for r in resumed.poll()] == [3]


# -- shipment codec ------------------------------------------------------------


def test_shipment_roundtrip():
    records = [_record(1), _record(2, op="delete_annotation")]
    decoded, torn = decode_shipment(encode_shipment(records))
    assert decoded == records
    assert torn is False


def test_shipment_tolerates_torn_final_record():
    records = [_record(1), _record(2)]
    decoded, torn = decode_shipment(tear_payload(encode_shipment(records)))
    assert [r["seq"] for r in decoded] == [1]
    assert torn is True


def test_shipment_rejects_mid_stream_damage():
    payload = _line(1).encode()[:-5] + b"\n" + _line(2).encode()
    with pytest.raises(WalCorruptionError):
        decode_shipment(payload)


def test_shipment_rejects_rewinding_seq():
    payload = encode_shipment([_record(3), _record(2)])
    with pytest.raises(WalCorruptionError):
        decode_shipment(payload)
    # A shipment entirely at or below the frontier is stale, not idempotent.
    with pytest.raises(WalCorruptionError):
        decode_shipment(encode_shipment([_record(2)]), last_seq=2)
