"""Tests for the manager's text-GQL query path and query edge cases."""

import pytest

from repro import Graphitti
from repro.datatypes import DnaSequence, Image
from repro.errors import QuerySyntaxError
from repro.ontology.builtin import build_protein_ontology


@pytest.fixture
def instance():
    g = Graphitti("q")
    g.register_ontology(build_protein_ontology())
    g.register(DnaSequence("seq", "ACGT" * 100, domain="chr1"))
    g.register(Image("img", dimension=2, space="atlas", size=(100, 100)))
    (
        g.new_annotation("a1", keywords=["protease"])
        .mark_sequence("seq", 10, 40, ontology_terms=["protein:protease"])
        .mark_region("img", (10, 10), (40, 40))
        .commit()
    )
    (
        g.new_annotation("a2", keywords=["kinase"])
        .mark_sequence("seq", 100, 140)
        .commit()
    )
    return g


def test_text_query_path(instance):
    result = instance.query('SELECT contents WHERE { CONTENT CONTAINS "protease" }')
    assert result.annotation_ids == ["a1"]


def test_text_query_invalid(instance):
    with pytest.raises(QuerySyntaxError):
        instance.query("SELECT bogus")


def test_query_empty_result(instance):
    result = instance.query('SELECT contents WHERE { CONTENT CONTAINS "zzz" }')
    assert result.is_empty()


def test_query_region(instance):
    result = instance.query("SELECT contents WHERE { REGION OVERLAPS atlas [0,0] .. [50,50] }")
    assert "a1" in result.annotation_ids


def test_query_region_unknown_space(instance):
    result = instance.query("SELECT contents WHERE { REGION OVERLAPS ghost [0,0] .. [50,50] }")
    assert result.is_empty()


def test_query_limit(instance):
    result = instance.query("SELECT contents WHERE { INTERVAL OVERLAPS chr1 [0, 1000] } LIMIT 1")
    assert result.count == 1


def test_query_ordering_equivalence(instance):
    q = 'SELECT contents WHERE { CONTENT CONTAINS "protease" INTERVAL OVERLAPS chr1 [0,1000] }'
    a = instance.query(q, enable_ordering=True)
    b = instance.query(q, enable_ordering=False)
    assert set(a.annotation_ids) == set(b.annotation_ids)


def test_query_type(instance):
    result = instance.query("SELECT contents WHERE { TYPE image }")
    assert result.annotation_ids == ["a1"]


def test_query_referents_return(instance):
    result = instance.query('SELECT referents WHERE { CONTENT CONTAINS "protease" }')
    assert len(result.referents) == 2


def test_query_no_constraints_returns_all(instance):
    result = instance.query("SELECT contents WHERE { }")
    assert set(result.annotation_ids) == {"a1", "a2"}
