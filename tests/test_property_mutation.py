"""Property tests for the mutation lifecycle.

Three families:

* **delete -> commit -> query aliasing** — the id-space interner recycles a
  released slot for the next interned annotation.  Audit result for this PR:
  no bitset survives across a mutation epoch (the executor builds and
  consumes candidate bitsets inside one ``execute()`` under the service's
  read lock; the statistics catalogue's TYPE index holds *string* id sets;
  cached ``QueryResult`` pages hold string ids; memoized plans hold no
  bitsets and are epoch-validated).  The property pins that: after any
  delete/commit interleaving, every query answers from the live state alone
  — a recycled slot can never resurface its previous occupant.
* **update equals delete+recommit** — the delta-maintenance path must land
  the same query-visible state the rebuild path lands.
* **index exactness under churn** — after any stream of in-place updates the
  live inverted index equals a from-scratch rebuild of every document.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.manager import Graphitti
from repro.core.persistence import decode_annotation, encode_annotation
from repro.datatypes import DnaSequence
from repro.query.stats import StatisticsCatalogue
from repro.xmlstore.text_index import InvertedIndex

KEYWORDS = ("protease", "kinase", "binding", "mutation", "conserved")


def _fresh(name):
    g = Graphitti(name)
    g.register(DnaSequence("seq1", "ACGT" * 250, domain="pm:chr1"))
    g.register(DnaSequence("seq2", "TGCA" * 250, domain="pm:chr1", offset=1000))
    return g


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.integers(5, 40), seed=st.integers(0, 10_000))
def test_delete_commit_query_never_aliases(ops, seed):
    """Slot reuse must never leak a dead annotation into any query answer."""
    rng = random.Random(seed)
    g = _fresh(f"alias{seed}")
    live: dict[str, str] = {}  # annotation id -> its unique keyword
    serial = 0
    for _ in range(ops):
        if live and rng.random() < 0.4:
            victim = rng.choice(sorted(live))
            g.delete_annotation(victim)
            del live[victim]
        else:
            annotation_id = f"al-{serial}"
            unique = f"uniq{serial}"
            shared = KEYWORDS[serial % len(KEYWORDS)]
            start = rng.randrange(0, 900)
            (
                g.new_annotation(annotation_id, keywords=[shared, unique], body=f"body {serial}")
                .mark_sequence(rng.choice(("seq1", "seq2")), start, start + 20)
                .commit()
            )
            live[annotation_id] = unique
            serial += 1
        # interner invariant: live bits == live annotations, always
        assert g.idspace.live_mask.bit_count() == len(live)
    # every unique keyword resolves to exactly its live owner; dead ids never
    # resurface through slot-recycled bitsets
    for annotation_id, unique in live.items():
        result = g.query(f'SELECT contents WHERE {{ CONTENT CONTAINS "{unique}" }}')
        assert result.annotation_ids == [annotation_id]
    for shared in KEYWORDS:
        result = g.query(f'SELECT contents WHERE {{ CONTENT CONTAINS "{shared}" }}')
        expected = sorted(
            annotation_id
            for annotation_id in live
            if shared in g.annotation(annotation_id).content.keywords()
        )
        assert result.annotation_ids == expected
    type_result = g.query("SELECT contents WHERE { TYPE dna_sequence }")
    assert type_result.annotation_ids == sorted(live)
    report = g.check_integrity()
    assert report.ok, report.errors


def _seed_twins(seed, count):
    rng = random.Random(seed)
    twins = (_fresh(f"up{seed}"), _fresh(f"rc{seed}"))
    extents = []
    used = set()
    for serial in range(count):
        while True:
            start = rng.randrange(0, 900)
            length = rng.randrange(10, 60)
            if (start, length) not in used:
                used.add((start, length))
                break
        extents.append((start, start + length))
    for g in twins:
        for serial, (start, end) in enumerate(extents):
            (
                g.new_annotation(
                    f"tw-{serial}",
                    title=f"twin {serial}",
                    keywords=[KEYWORDS[serial % len(KEYWORDS)]],
                    body=f"twin body {serial}",
                )
                .mark_sequence("seq1" if serial % 2 else "seq2", start, end)
                .commit()
            )
    return twins


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(count=st.integers(3, 10), edits=st.integers(1, 12), seed=st.integers(0, 10_000))
def test_update_equals_delete_plus_recommit(count, edits, seed):
    rng = random.Random(seed * 31 + 7)
    updated, recommitted = _seed_twins(seed, count)
    for edit in range(edits):
        serial = rng.randrange(count)
        victim = f"tw-{serial}"
        changes = {
            "title": f"edit {edit}",
            "keywords": [KEYWORDS[(serial + edit) % len(KEYWORDS)], f"stamp{edit}"],
            "body": f"edited body {edit}",
        }
        if rng.random() < 0.5:
            referent_id = updated.annotation(victim).referents[0].referent_id
            # half-integer extents cannot collide with the integer corpus
            start = rng.randrange(0, 900) + 0.5
            changes["move_referents"] = {referent_id: {"start": start, "end": start + 15}}
        updated.update_annotation(victim, dict(changes))

        replacement = decode_annotation(encode_annotation(recommitted.annotation(victim)))
        replacement.content.dublin_core.title = changes["title"]
        replacement.content.dublin_core.subject = list(changes["keywords"])
        replacement.content.body = changes["body"]
        if "move_referents" in changes:
            from repro.spatial.interval import Interval

            referent = replacement.referents[0]
            extent = next(iter(changes["move_referents"].values()))
            referent.ref.interval = Interval(
                extent["start"], extent["end"], domain=referent.ref.interval.domain
            )
            referent.ref.descriptor["start"] = extent["start"]
            referent.ref.descriptor["end"] = extent["end"]
        recommitted.delete_annotation(victim)
        recommitted.commit(replacement)

    probes = [f'SELECT contents WHERE {{ CONTENT CONTAINS "{kw}" }}' for kw in KEYWORDS]
    probes.append("SELECT contents WHERE { INTERVAL OVERLAPS pm:chr1 [0, 2000] }")
    probes.append('SELECT contents WHERE { CONTENT CONTAINS "stamp0" }')
    for text in probes:
        assert updated.query(text).annotation_ids == recommitted.query(text).annotation_ids
    assert updated.stats_catalogue.counts() == recommitted.stats_catalogue.counts()
    assert (
        updated.substructures.extent_summaries()
        == recommitted.substructures.extent_summaries()
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edits=st.integers(1, 25), seed=st.integers(0, 10_000))
def test_index_matches_rebuild_after_update_churn(edits, seed):
    rng = random.Random(seed)
    g = _fresh(f"ix{seed}")
    for serial in range(6):
        # ix-5 shares ix-0's extent (and therefore its referent), so moves
        # exercise the shared-substructure sync across sharer documents
        start = 0 if serial == 5 else serial * 30
        (
            g.new_annotation(
                f"ix-{serial}",
                title=f"indexed {serial}",
                keywords=[KEYWORDS[serial % len(KEYWORDS)]],
                body=f"indexed body protein.TP53 {serial}",
            )
            .mark_sequence("seq1", start, start + 20)
            .commit()
        )
    for edit in range(edits):
        victim = f"ix-{rng.randrange(6)}"
        kind = rng.randrange(4)
        if kind == 0:
            g.update_annotation(victim, {"title": f"t{edit}", "keywords": [f"kw{edit}", "shared"]})
        elif kind == 1:
            g.update_annotation(victim, {"body": f"rewritten {edit} x.y-z"})
        elif kind == 2:
            referent_id = g.annotation(victim).referents[0].referent_id
            start = rng.randrange(0, 900) + 0.25
            g.update_annotation(
                victim, {"move_referents": {referent_id: {"start": start, "end": start + 9}}}
            )
        else:
            g.update_annotation(victim, {"user_tags": {"note": f"n{edit}"}})
    live = g.contents._index
    fresh = InvertedIndex()
    for doc_id in g.contents.document_ids():
        fresh.add_document(doc_id, g.contents._searchable_text(g.contents.get(doc_id)))
    assert live._postings == fresh._postings
    assert live._doc_lengths == fresh._doc_lengths
    catalogue = StatisticsCatalogue()
    catalogue.rebuild(g)
    assert g.stats_catalogue.counts() == catalogue.counts()
