"""Tests for 1D intervals."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpatialError
from repro.spatial.interval import Interval, merge_intervals, total_coverage


def test_interval_rejects_inverted():
    with pytest.raises(SpatialError):
        Interval(5, 1)


def test_interval_length():
    assert Interval(2, 7).length == 5
    assert Interval(3, 3).length == 0


def test_overlaps_closed():
    assert Interval(1, 5).overlaps(Interval(5, 9))  # touch at 5
    assert not Interval(1, 5).overlaps(Interval(6, 9))


def test_overlaps_respects_domain():
    assert not Interval(1, 5, domain="a").overlaps(Interval(1, 5, domain="b"))
    assert Interval(1, 5, domain="a").overlaps(Interval(1, 5, domain="a"))
    assert Interval(1, 5, domain="a").overlaps(Interval(1, 5))  # None domain matches


def test_contains():
    assert Interval(1, 10).contains(Interval(3, 5))
    assert not Interval(3, 5).contains(Interval(1, 10))


def test_contains_point():
    assert Interval(1, 5).contains_point(3)
    assert not Interval(1, 5).contains_point(6)


def test_intersection():
    assert Interval(1, 5).intersection(Interval(3, 9)) == Interval(3, 5)
    assert Interval(1, 2).intersection(Interval(5, 9)) is None


def test_union_span():
    assert Interval(1, 3).union_span(Interval(7, 9)) == Interval(1, 9)


def test_union_span_cross_domain():
    with pytest.raises(SpatialError):
        Interval(1, 3, domain="a").union_span(Interval(7, 9, domain="b"))


def test_distance_to():
    assert Interval(1, 3).distance_to(Interval(7, 9)) == 4
    assert Interval(1, 5).distance_to(Interval(3, 9)) == 0


def test_precedes():
    assert Interval(1, 3).precedes(Interval(4, 8))
    assert not Interval(1, 5).precedes(Interval(4, 8))
    assert Interval(1, 4).precedes(Interval(4, 8), strict=False)


def test_shifted_and_payload():
    shifted = Interval(1, 3, payload="x").shifted(10)
    assert shifted.start == 11 and shifted.end == 13 and shifted.payload == "x"
    assert Interval(1, 3).with_payload("p").payload == "p"


def test_ordering_is_lexicographic():
    assert Interval(1, 5) < Interval(1, 6)
    assert Interval(1, 5) < Interval(2, 0 + 2)


def test_merge_intervals():
    merged = merge_intervals([Interval(1, 3), Interval(2, 5), Interval(8, 9)])
    assert merged == [Interval(1, 5), Interval(8, 9)]


def test_merge_intervals_per_domain():
    merged = merge_intervals([Interval(1, 5, domain="a"), Interval(2, 9, domain="b")])
    assert len(merged) == 2


def test_total_coverage():
    assert total_coverage([Interval(1, 3), Interval(2, 5)]) == 4
    assert total_coverage([Interval(0, 2), Interval(4, 6)]) == 4


@given(
    a=st.integers(min_value=-50, max_value=50),
    b=st.integers(min_value=-50, max_value=50),
    c=st.integers(min_value=-50, max_value=50),
    d=st.integers(min_value=-50, max_value=50),
)
def test_overlap_symmetric(a, b, c, d):
    left = Interval(min(a, b), max(a, b))
    right = Interval(min(c, d), max(c, d))
    assert left.overlaps(right) == right.overlaps(left)


@given(
    a=st.integers(min_value=-50, max_value=50),
    b=st.integers(min_value=-50, max_value=50),
    c=st.integers(min_value=-50, max_value=50),
    d=st.integers(min_value=-50, max_value=50),
)
def test_intersection_implies_overlap(a, b, c, d):
    left = Interval(min(a, b), max(a, b))
    right = Interval(min(c, d), max(c, d))
    shared = left.intersection(right)
    if shared is not None:
        assert left.overlaps(right)
        assert left.contains(shared)
        assert right.contains(shared)


@given(st.lists(st.tuples(st.integers(-30, 30), st.integers(0, 20)), min_size=0, max_size=20))
def test_merge_is_disjoint(raw):
    intervals = [Interval(start, start + length) for start, length in raw]
    merged = merge_intervals(intervals)
    for earlier, later in zip(merged, merged[1:]):
        assert earlier.end < later.start
