"""Tests for table storage, constraints, indexes, and queries."""

import pytest

from repro.errors import ConstraintViolation, RelationalError, SchemaError, UnknownColumnError
from repro.relational.query import and_, eq, ge, gt, in_, le, like, lt, not_null
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table


def make_people_table():
    schema = TableSchema(
        "people",
        [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT),
            Column("age", ColumnType.INTEGER),
            Column("email", ColumnType.TEXT),
        ],
        primary_key="id",
        unique=[("email",)],
    )
    table = Table(schema)
    table.insert({"id": 1, "name": "Alice", "age": 30, "email": "a@x.com"})
    table.insert({"id": 2, "name": "Bob", "age": 25, "email": "b@x.com"})
    table.insert({"id": 3, "name": "Carol", "age": 40, "email": "c@x.com"})
    return table


def test_insert_and_get():
    table = make_people_table()
    assert table.get(1)["name"] == "Alice"
    assert len(table) == 3


def test_primary_key_duplicate():
    table = make_people_table()
    with pytest.raises(ConstraintViolation):
        table.insert({"id": 1, "name": "Dup"})


def test_unique_violation():
    table = make_people_table()
    with pytest.raises(ConstraintViolation):
        table.insert({"id": 4, "email": "a@x.com"})


def test_unique_allows_multiple_nulls():
    table = make_people_table()
    table.insert({"id": 4, "email": None})
    table.insert({"id": 5, "email": None})
    assert len(table) == 5


def test_select_equality():
    table = make_people_table()
    rows = table.select(eq("name", "Bob"))
    assert len(rows) == 1 and rows[0]["id"] == 2


def test_select_range():
    table = make_people_table()
    rows = table.select(and_(ge("age", 30), le("age", 40)))
    assert {row["name"] for row in rows} == {"Alice", "Carol"}


def test_select_in():
    table = make_people_table()
    rows = table.select(in_("id", [1, 3]))
    assert {row["name"] for row in rows} == {"Alice", "Carol"}


def test_select_like():
    table = make_people_table()
    rows = table.select(like("name", "a*"))
    assert {row["name"] for row in rows} == {"Alice"}


def test_update_rows():
    table = make_people_table()
    changed = table.update(eq("name", "Bob"), {"age": 26})
    assert changed == 1
    assert table.get(2)["age"] == 26


def test_update_unknown_column():
    table = make_people_table()
    with pytest.raises(UnknownColumnError):
        table.update(None, {"ghost": 1})


def test_update_preserving_unique():
    table = make_people_table()
    # changing Bob's email to a fresh value is fine
    assert table.update(eq("id", 2), {"email": "new@x.com"}) == 1
    # but to Alice's existing email is a violation
    with pytest.raises(ConstraintViolation):
        table.update(eq("id", 2), {"email": "a@x.com"})


def test_delete_rows():
    table = make_people_table()
    deleted = table.delete(eq("name", "Alice"))
    assert deleted == 1
    assert table.get(1) is None
    assert len(table) == 2


def test_delete_all():
    table = make_people_table()
    assert table.delete(None) == 3
    assert len(table) == 0


def test_clear():
    table = make_people_table()
    table.clear()
    assert len(table) == 0


def test_secondary_hash_index_used():
    table = make_people_table()
    index = table.create_index("name")
    assert table.has_index("name")
    rows = table.select(eq("name", "Carol"))
    assert rows[0]["id"] == 3
    assert len(index) == 3


def test_sorted_index_range_query():
    table = make_people_table()
    table.create_sorted_index("age")
    rows = table.select(gt("age", 28))
    assert {row["name"] for row in rows} == {"Alice", "Carol"}


def test_index_maintained_on_update():
    table = make_people_table()
    table.create_index("name")
    table.update(eq("id", 1), {"name": "Alicia"})
    assert table.select(eq("name", "Alice")) == []
    assert table.select(eq("name", "Alicia"))[0]["id"] == 1


def test_index_maintained_on_delete():
    table = make_people_table()
    table.create_index("name")
    table.delete(eq("name", "Bob"))
    assert table.select(eq("name", "Bob")) == []


def test_query_builder_order_limit():
    table = make_people_table()
    rows = table.query().order_by("age", descending=True).limit(2).all()
    assert [row["name"] for row in rows] == ["Carol", "Alice"]


def test_query_builder_project():
    table = make_people_table()
    rows = table.query().where(eq("id", 1)).project("name").all()
    assert rows == [{"name": "Alice"}]


def test_query_builder_offset():
    table = make_people_table()
    rows = table.query().order_by("id").offset(1).all()
    assert [row["id"] for row in rows] == [2, 3]


def test_query_not_null():
    table = make_people_table()
    table.insert({"id": 9, "email": None, "name": None})
    rows = table.query().where(not_null("name")).all()
    assert all(row["name"] is not None for row in rows)


def test_join():
    people = make_people_table()
    orders_schema = TableSchema(
        "orders",
        [Column("oid", ColumnType.INTEGER, nullable=False), Column("person", ColumnType.INTEGER), Column("total", ColumnType.FLOAT)],
        primary_key="oid",
    )
    orders = Table(orders_schema)
    orders.insert({"oid": 1, "person": 1, "total": 9.99})
    orders.insert({"oid": 2, "person": 1, "total": 4.99})
    orders.insert({"oid": 3, "person": 2, "total": 1.00})
    joined = people.query().where(eq("id", 1)).join(orders, "id", "person").all()
    assert len(joined) == 2
    assert all(row["orders.person"] == 1 for row in joined)


def test_table_roundtrip_with_blob():
    schema = TableSchema(
        "raw",
        [Column("id", ColumnType.INTEGER, nullable=False), Column("data", ColumnType.BLOB)],
        primary_key="id",
    )
    table = Table(schema)
    table.insert({"id": 1, "data": b"\x00\x01\x02"})
    restored = Table.from_dict(table.to_dict())
    assert restored.get(1)["data"] == b"\x00\x01\x02"


def test_get_without_primary_key_raises():
    schema = TableSchema("t", [Column("x", ColumnType.INTEGER)])
    table = Table(schema)
    with pytest.raises(RelationalError):
        table.get(1)


def test_iter_returns_copies():
    table = make_people_table()
    rows = list(table)
    rows[0]["name"] = "MUTATED"
    assert table.get(rows[0]["id"])["name"] != "MUTATED"
