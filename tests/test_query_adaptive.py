"""Tests for the cost-based adaptive query pipeline.

Plan-order invariance (off / static / cost modes agree, including NOT / OR
nesting), semi-join probe behaviour, estimated-vs-actual reporting, and the
sweep-based type-extension pairing against its quadratic baseline.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Graphitti
from repro.core.annotation import Referent
from repro.datatypes.base import DataType, SubstructureRef
from repro.query.ast import KeywordConstraint, OverlapConstraint, TypeConstraint
from repro.query.builder import QueryBuilder
from repro.query.executor import _overlapping_pairs
from repro.spatial.interval import Interval
from repro.spatial.operators import if_overlap, intersect
from repro.spatial.rect import Rect
from repro.workloads.generators import WorkloadConfig, generate_annotation_workload

MODES = ("off", "static", "cost")


@pytest.fixture(scope="module")
def workload():
    manager = Graphitti("adaptive-wl")
    generate_annotation_workload(
        manager,
        WorkloadConfig(seed=6, sequence_count=15, annotation_count=600, image_count=4, regions_per_image=25),
    )
    return manager


def _queries():
    return [
        QueryBuilder.contents().contains("epitope").build(),
        QueryBuilder.contents().of_type("dna_sequence").contains("epitope").build(),
        QueryBuilder.contents()
        .contains("binding")
        .overlaps_interval("genome:chrX", 500, 2500)
        .of_type("dna_sequence")
        .build(),
        QueryBuilder.contents()
        .overlaps_region("atlas:25um", (10, 10), (60, 60))
        .of_type("image")
        .build(),
        QueryBuilder.contents()
        .contains("mutation")
        .exclude(KeywordConstraint(keyword="conserved"))
        .build(),
        QueryBuilder.contents()
        .any_of(
            KeywordConstraint(keyword="kinase"),
            OverlapConstraint(domain="genome:chrX", start=100, end=900),
        )
        .of_type("dna_sequence")
        .build(),
        # Nested NOT(OR(...)) over mixed targets.
        QueryBuilder.contents()
        .contains("protease", mode="or")
        .exclude(TypeConstraint(data_type="image"))
        .build(),
        QueryBuilder.referents().contains("cleavage").of_type("dna_sequence").build(),
        QueryBuilder.graph().overlaps_interval("genome:chrX", 0, 1500).contains("domain").build(),
    ]


@pytest.mark.parametrize("index", range(len(_queries())))
def test_plan_order_invariance(workload, index):
    """off / static / cost execution produce identical results."""
    query = _queries()[index]
    results = {mode: workload.query(query, mode=mode) for mode in MODES}
    baseline = results["off"]
    for mode in ("static", "cost"):
        assert results[mode].annotation_ids == baseline.annotation_ids, mode
        assert results[mode].count == baseline.count, mode


def test_adaptive_uses_probe_for_broad_constraints(workload):
    query = (
        QueryBuilder.contents()
        .contains("epitope")  # broad-ish
        .overlaps_interval("genome:chrX", 100, 250)  # tiny window
        .of_type("dna_sequence")  # very broad
        .build()
    )
    result = workload.query(query, mode="cost")
    modes = {detail["label"]: detail["mode"] for detail in result.step_details}
    assert modes["interval OVERLAPS genome:chrX[100,250] (>= 1)"] == "materialize"
    assert modes["type dna_sequence"] == "probe"
    # Every step carries its estimate.
    assert all(detail["estimated"] is not None for detail in result.step_details)


def test_probe_matches_materialized_semantics(workload):
    """Force both paths over the same constraint set and compare."""
    from repro.query.executor import QueryExecutor

    executor = QueryExecutor(workload)
    candidate_ids = {a.annotation_id for a in workload.annotations()}
    for constraint in (
        KeywordConstraint(keyword="epitope"),
        KeywordConstraint(keyword="epitope domain", mode="or"),
        OverlapConstraint(domain="genome:chrX", start=200, end=1200),
        TypeConstraint(data_type="image"),
    ):
        materialized = executor._evaluate(constraint) & candidate_ids
        probed = executor._probe(constraint, sorted(candidate_ids))
        assert probed == materialized, constraint.describe()


def test_ontology_probe_sees_shared_referent_terms():
    """Regression: a term linked through ANOTHER annotation's copy of a
    shared referent must still match in probe mode (referent nodes are
    shared by ref key, so the a-graph edge exists for both annotations)."""
    from repro.datatypes import DnaSequence
    from repro.query.ast import OntologyConstraint
    from repro.query.executor import QueryExecutor

    manager = Graphitti("shared-ref")
    manager.register(DnaSequence("seq1", "ACGT" * 100, domain="chr1"))
    # Same extent -> same referent id -> one shared referent node.
    manager.new_annotation("a", keywords=["x"]).mark_sequence("seq1", 10, 20).commit()
    (
        manager.new_annotation("b", keywords=["x"])
        .mark_sequence("seq1", 10, 20, ontology_terms=["term:T"])
        .commit()
    )
    executor = QueryExecutor(manager)
    constraint = OntologyConstraint(term="term:T")
    materialized = executor._evaluate(constraint)
    assert materialized == {"a", "b"}
    assert executor._probe(constraint, ["a", "b"]) == materialized


def test_probe_region_matches_materialized(workload):
    from repro.query.ast import RegionConstraint
    from repro.query.executor import QueryExecutor

    executor = QueryExecutor(workload)
    candidate_ids = {a.annotation_id for a in workload.annotations()}
    constraint = RegionConstraint(space="atlas:25um", lo=(20, 20), hi=(70, 70))
    materialized = executor._evaluate(constraint) & candidate_ids
    probed = executor._probe(constraint, sorted(candidate_ids))
    assert probed == materialized


def test_min_count_respected_in_probe_mode(workload):
    query = (
        QueryBuilder.contents()
        .contains("epitope")
        .overlaps_interval("genome:chrX", 0, 30000, min_count=2)
        .build()
    )
    results = {mode: workload.query(query, mode=mode) for mode in MODES}
    assert results["cost"].annotation_ids == results["off"].annotation_ids


def test_explain_shows_estimated_and_actual(workload):
    query = QueryBuilder.contents().contains("epitope").of_type("dna_sequence").build()
    from repro.query.executor import QueryExecutor
    from repro.query.planner import QueryPlanner

    plan = QueryPlanner(manager=workload, mode="cost").plan(query)
    assert "est~" in plan.explain()
    assert "act=" not in plan.explain()
    result = QueryExecutor(workload).execute_plan(plan)
    explained = plan.explain(result.actual_rows())
    assert "act=" in explained
    # Plans stay immutable across executions (they are memoized and shared).
    assert "act=" not in plan.explain()


def test_fingerprint_reflects_chosen_order(workload):
    """The same GQL under different statistics fingerprints differently."""
    from repro.query.parser import parse_query
    from repro.query.planner import QueryPlanner

    text = (
        'SELECT contents WHERE { CONTENT CONTAINS "epitope" '
        "INTERVAL OVERLAPS genome:chrX [100, 250] TYPE dna_sequence }"
    )
    cost_plan = QueryPlanner(manager=workload, mode="cost").plan(parse_query(text))
    empty = Graphitti("adaptive-empty")
    empty_plan = QueryPlanner(manager=empty, mode="cost").plan(parse_query(text))
    assert cost_plan.mode == empty_plan.mode == "cost"
    orders = [c.describe() for c in cost_plan.ordered_constraints]
    empty_orders = [c.describe() for c in empty_plan.ordered_constraints]
    # The workload's stats pull the tiny interval window ahead of the
    # keyword; the empty instance (all estimates 0) falls back to the static
    # tie-break where the keyword leads.  Different order, different digest.
    assert orders[0].startswith("interval")
    assert empty_orders[0].startswith("content")
    assert cost_plan.fingerprint() != empty_plan.fingerprint()
    # Same manager, same stats -> deterministic fingerprint.
    again = QueryPlanner(manager=workload, mode="cost").plan(parse_query(text))
    assert again.fingerprint() == cost_plan.fingerprint()


def test_executor_default_mode_tracks_corpus_size(workload):
    """The implicit default is cost mode — but only past the small-corpus
    threshold, below which the estimate pass cannot pay for itself and the
    planner falls back to the static table per plan."""
    from repro.query.executor import QueryExecutor
    from repro.query.planner import SMALL_CORPUS_THRESHOLD, QueryPlanner

    # The workload fixture is below the threshold: implicit -> static.
    assert workload.stats_catalogue.annotation_total < SMALL_CORPUS_THRESHOLD
    assert QueryPlanner(manager=workload).effective_mode() == "static"
    executor = QueryExecutor(workload)
    result = executor.execute(QueryBuilder.contents().contains("epitope").build())
    assert result.step_details and result.step_details[0]["estimated"] is None

    # An explicit mode="cost" disables the fallback on the same corpus.
    explicit = QueryExecutor(workload, planner=QueryPlanner(manager=workload, mode="cost"))
    result = explicit.execute(QueryBuilder.contents().contains("epitope").build())
    assert result.step_details and result.step_details[0]["estimated"] is not None

    # Once the catalogue reports a large corpus the implicit default IS cost
    # again — the fallback is per plan, against the live annotation total.
    planner = QueryPlanner(manager=workload)
    workload.stats_catalogue._annotation_total += SMALL_CORPUS_THRESHOLD  # noqa: SLF001
    try:
        assert planner.effective_mode() == "cost"
    finally:
        workload.stats_catalogue._annotation_total -= SMALL_CORPUS_THRESHOLD  # noqa: SLF001


# -- sweep-based type extension vs. the quadratic baseline ---------------------


def _quadratic_pairs(referents):
    """The original O(n^2) all-pairs loop, kept as the test oracle."""
    pairs = []
    for position, left in enumerate(referents):
        for right in referents[position + 1:]:
            if left.ref.object_id != right.ref.object_id:
                continue
            left_extent = left.ref.interval or left.ref.rect
            right_extent = right.ref.interval or right.ref.rect
            if left_extent is None or right_extent is None:
                continue
            if if_overlap(left_extent, right_extent) and intersect(left_extent, right_extent) is not None:
                pairs.append((left, right))
    return pairs


def _make_referents(spec):
    referents = []
    for index, (object_index, kind, a, b) in enumerate(spec):
        object_id = f"obj{object_index}"
        if kind == 0:
            ref = SubstructureRef(
                object_id=object_id,
                data_type=DataType.DNA,
                interval=Interval(a, a + b, domain=f"dom{object_index}"),
            )
        else:
            ref = SubstructureRef(
                object_id=object_id,
                data_type=DataType.IMAGE,
                rect=Rect((a, a), (a + b, a + b), space=f"space{object_index}"),
            )
        referents.append(Referent(ref=ref, referent_id=f"r{index}"))
    return referents


@settings(max_examples=60, deadline=None)
@given(
    spec=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 1), st.integers(0, 50), st.integers(0, 15)),
        min_size=0,
        max_size=40,
    )
)
def test_sweep_pairs_match_quadratic_baseline(spec):
    referents = _make_referents(spec)
    swept = [
        (left.referent_id, right.referent_id) for left, right in _overlapping_pairs(referents)
    ]
    quadratic = [
        (left.referent_id, right.referent_id) for left, right in _quadratic_pairs(referents)
    ]
    assert swept == quadratic


def test_type_extension_results_unchanged(workload):
    """End-to-end: GRAPH results carry identical type extensions per mode."""
    query = QueryBuilder.graph().overlaps_interval("genome:chrX", 0, 2000).build()
    results = {mode: workload.query(query, mode=mode) for mode in MODES}
    reference = [s.to_dict() for s in results["off"].subgraphs]
    for mode in ("static", "cost"):
        assert [s.to_dict() for s in results[mode].subgraphs] == reference
