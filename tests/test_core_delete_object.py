"""Manager-level ``delete_object``: cascade semantics and bookkeeping."""

import pytest

from repro.core.manager import Graphitti
from repro.datatypes import DnaSequence
from repro.errors import AnnotationError, UnknownObjectError
from repro.query.stats import StatisticsCatalogue


@pytest.fixture
def instance():
    g = Graphitti("delete-object-test")
    g.register(DnaSequence("seq1", "ACGT" * 200, domain="del:chr1"))
    g.register(DnaSequence("seq2", "TGCA" * 200, domain="del:chr1", offset=800))
    g.new_annotation("only1", keywords=["one"], body="marks seq1").mark_sequence(
        "seq1", 10, 30
    ).commit()
    g.new_annotation("only2", keywords=["two"], body="marks seq2").mark_sequence(
        "seq2", 10, 30
    ).commit()
    (
        g.new_annotation("both", keywords=["span"], body="marks both")
        .mark_sequence("seq1", 100, 130)
        .mark_sequence("seq2", 100, 130)
        .commit()
    )
    return g


def test_annotations_on_object(instance):
    assert instance.annotations_on_object("seq1") == ["both", "only1"]
    assert instance.annotations_on_object("seq2") == ["both", "only2"]
    assert instance.annotations_on_object("seq_unknown") == []


def test_cascade_deletes_all_referencing_annotations(instance):
    cascaded = instance.delete_object("seq1")
    assert cascaded == ["both", "only1"]
    # the multi-object annotation went whole; its seq2 referent did not linger
    assert [a.annotation_id for a in instance.annotations()] == ["only2"]
    assert instance.search_by_overlap_interval("del:chr1", 90, 140) == []
    assert "seq1" not in instance.registry
    with pytest.raises(UnknownObjectError):
        instance.object_metadata("seq1")
    report = instance.check_integrity()
    assert report.ok, report.errors


def test_cascade_keeps_other_objects_annotations(instance):
    instance.delete_object("seq1")
    assert instance.search_by_keyword("two") == ["only2"]
    assert instance.search_by_overlap_interval("del:chr1", 805, 835) == ["only2"]


def test_no_cascade_refuses_while_referenced(instance):
    with pytest.raises(AnnotationError):
        instance.delete_object("seq1", cascade=False)
    # nothing was applied
    assert instance.annotation_count == 3
    assert "seq1" in instance.registry


def test_no_cascade_deletes_unannotated_object(instance):
    instance.delete_annotation("only2")
    instance.delete_annotation("both")
    cascaded = instance.delete_object("seq2", cascade=False)
    assert cascaded == []
    assert "seq2" not in instance.registry


def test_unknown_object_raises(instance):
    with pytest.raises(UnknownObjectError):
        instance.delete_object("ghost")


def test_catalogue_matches_rebuild_after_object_delete(instance):
    instance.delete_object("seq2")
    fresh = StatisticsCatalogue()
    fresh.rebuild(instance)
    assert instance.stats_catalogue.counts() == fresh.counts()
    stats = instance.statistics()
    assert stats["annotations"] == 1
    assert stats["data_objects"] == 1


def test_delete_object_then_reregister(instance):
    """A retired object's id can be reused by a fresh registration."""
    instance.delete_object("seq1")
    instance.register(DnaSequence("seq1", "AAAA" * 100, domain="del:chr1"))
    instance.new_annotation("fresh", keywords=["again"], body="new era").mark_sequence(
        "seq1", 1, 9
    ).commit()
    assert instance.search_by_keyword("again") == ["fresh"]
    report = instance.check_integrity()
    assert report.ok, report.errors
