"""Tests for the ontology graph model."""

import pytest

from repro.errors import OntologyError, UnknownRelationError, UnknownTermError
from repro.ontology.model import INSTANCE_OF, IS_A, PART_OF, Ontology, Relation, Term


def make_ontology():
    o = Ontology("test")
    o.add_concept("animal", "Animal")
    o.add_concept("mammal", "Mammal")
    o.add_concept("dog", "Dog", synonyms=("canine",))
    o.add_relation("mammal", IS_A, "animal")
    o.add_relation("dog", IS_A, "mammal")
    o.add_instance("rex", "Rex", concept_id="dog")
    o.add_instance("fido", "Fido", concept_id="dog")
    return o


def test_term_matches_name():
    term = Term("t", "Dog", synonyms=("canine",))
    assert term.matches_name("dog")
    assert term.matches_name("CANINE")
    assert not term.matches_name("cat")


def test_add_duplicate_term_conflict():
    o = Ontology("t")
    o.add_concept("x", "X")
    with pytest.raises(OntologyError):
        o.add_concept("x", "Different")


def test_add_duplicate_identical_is_noop():
    o = Ontology("t")
    o.add_concept("x", "X")
    o.add_concept("x", "X")
    assert o.term_count == 1


def test_term_lookup():
    o = make_ontology()
    assert o.term("dog").name == "Dog"
    with pytest.raises(UnknownTermError):
        o.term("missing")


def test_find_by_name():
    o = make_ontology()
    assert o.find_by_name("canine")[0].term_id == "dog"


def test_concepts_and_instances():
    o = make_ontology()
    assert {t.term_id for t in o.concepts()} == {"animal", "mammal", "dog"}
    assert {t.term_id for t in o.instances()} == {"rex", "fido"}


def test_undeclared_relation():
    o = Ontology("t")
    o.add_concept("a", "A")
    o.add_concept("b", "B")
    with pytest.raises(UnknownRelationError):
        o.add_relation("a", "custom_rel", "b")


def test_declare_relation_type():
    o = Ontology("t")
    o.add_concept("a", "A")
    o.add_concept("b", "B")
    o.declare_relation_type("regulates")
    o.add_relation("a", "regulates", "b")
    assert o.has_relation("a", "regulates", "b")


def test_relation_to_unknown_term():
    o = make_ontology()
    with pytest.raises(UnknownTermError):
        o.add_relation("dog", IS_A, "ghost")


def test_objects_and_subjects():
    o = make_ontology()
    assert o.objects("dog", IS_A) == {"mammal"}
    assert o.subjects("mammal", IS_A) == {"dog"}


def test_ancestors_descendants():
    o = make_ontology()
    assert o.ancestors("dog") == {"mammal", "animal"}
    assert o.descendants("animal") == {"mammal", "dog"}


def test_parents_children():
    o = make_ontology()
    assert o.parents("dog") == {"mammal"}
    assert o.children("mammal") == {"dog"}


def test_roots():
    o = make_ontology()
    assert o.roots() == ["animal"]


def test_depth():
    o = make_ontology()
    assert o.depth("dog") == 2
    assert o.depth("animal") == 0


def test_relations_from_to():
    o = make_ontology()
    assert len(o.relations_from("dog")) == 1
    assert any(r.predicate == INSTANCE_OF for r in o.relations_to("dog"))


def test_edge_count():
    o = make_ontology()
    # 2 is_a + 2 instance_of
    assert o.edge_count == 4


def test_duplicate_edge_not_double_counted():
    o = Ontology("t")
    o.add_concept("a", "A")
    o.add_concept("b", "B")
    o.add_relation("a", IS_A, "b")
    o.add_relation("a", IS_A, "b")
    assert o.edge_count == 1


def test_relation_reversed():
    r = Relation("a", IS_A, "b")
    assert r.reversed() == Relation("b", IS_A, "a")


def test_ontology_roundtrip():
    o = make_ontology()
    restored = Ontology.from_dict(o.to_dict())
    assert restored.term_count == o.term_count
    assert restored.edge_count == o.edge_count
    assert restored.descendants("animal") == {"mammal", "dog"}
