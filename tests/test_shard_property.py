"""Hypothesis round-trip: route -> scatter -> merge equals the unsharded oracle.

For any randomly generated corpus (objects, keywords, intervals, point
annotations, deletes) and any shard count, a :class:`ShardedGraphittiService`
must answer the probe query set — keyword, overlap, NOT, OR, LIMIT —
bit-identically (ordering included) to one :class:`GraphittiService` holding
the same annotations.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.manager import Graphitti
from repro.service import GraphittiService
from repro.shard import ShardedGraphittiService

KEYWORDS = ("protease", "kinase", "binding", "mutation")

PROBES = (
    'SELECT contents WHERE { CONTENT CONTAINS "protease" }',
    'SELECT contents WHERE { CONTENT CONTAINS "kinase" }',
    "SELECT contents WHERE { INTERVAL OVERLAPS prop:chr1 [0, 400] }",
    "SELECT contents WHERE { INTERVAL OVERLAPS prop:chr1 [400, 400] }",
    'SELECT contents WHERE { NOT { CONTENT CONTAINS "binding" } }',
    'SELECT contents WHERE { ANY { CONTENT CONTAINS "protease" CONTENT CONTAINS "mutation" } }',
    'SELECT referents WHERE { INTERVAL OVERLAPS prop:chr1 [100, 700] }',
    'SELECT contents WHERE { CONTENT CONTAINS "mutation" } LIMIT 3',
)


def _drive(service, num_annotations: int, delete_ratio: float, seed: int) -> None:
    """Apply one deterministic mutation sequence to *service*."""
    from repro.datatypes.sequence import DnaSequence

    rng = random.Random(seed)
    object_ids = []
    for index in range(5):
        obj = DnaSequence(
            f"pobj{index}", "ACGT" * 250, domain="prop:chr1", offset=index * 150
        )
        service.register(obj)
        object_ids.append(obj.object_id)
    committed = []
    for index in range(num_annotations):
        builder = service.new_annotation(
            f"p-{index:03d}",
            title=f"prop {index}",
            keywords=[rng.choice(KEYWORDS)],
            body=f"property corpus {index}",
        )
        start = rng.randint(0, 700)
        # mix point annotations (start == end) in with ranged ones
        end = start if rng.random() < 0.3 else start + rng.randint(1, 60)
        builder.mark_sequence(object_ids[index % 5], start, end)
        committed.append(service.commit(builder).annotation_id)
    victims = [
        annotation_id for annotation_id in committed if rng.random() < delete_ratio
    ]
    for annotation_id in victims:
        service.delete_annotation(annotation_id)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    num_annotations=st.integers(1, 24),
    shards=st.integers(1, 5),
    delete_ratio=st.floats(0.0, 0.4),
    seed=st.integers(0, 10_000),
)
def test_route_then_merge_equals_unsharded_oracle(num_annotations, shards, delete_ratio, seed):
    sharded = ShardedGraphittiService(shards=shards, name=f"prop-sharded-{seed}")
    oracle = GraphittiService(manager=Graphitti(f"prop-oracle-{seed}"))
    try:
        _drive(sharded, num_annotations, delete_ratio, seed)
        _drive(oracle, num_annotations, delete_ratio, seed)
        for text in PROBES:
            left = sharded.query(text)
            right = oracle.query(text)
            assert left.annotation_ids == right.annotation_ids, text
            left_refs = [referent.referent_id for referent in left.referents]
            right_refs = [referent.referent_id for referent in right.referents]
            assert left_refs == right_refs, text
        assert sharded.annotation_count == oracle.annotation_count
        assert sharded.check_integrity().ok
    finally:
        sharded.close()
        oracle.close()
