"""Tests for the R-tree and R-tree family."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpatialError
from repro.spatial.rect import Rect
from repro.spatial.rtree import RTree, RTreeFamily
from repro.baselines.linear_scan import linear_region_overlap


def test_empty_rtree():
    tree = RTree()
    assert len(tree) == 0
    assert tree.search_overlap(Rect((0, 0), (1, 1))) == []
    assert tree.nearest((0, 0)) == []


def test_rtree_min_entries_guard():
    with pytest.raises(SpatialError):
        RTree(max_entries=3)


def test_insert_and_overlap():
    tree = RTree(max_entries=4)
    tree.insert(Rect((0, 0), (2, 2), payload="a"))
    tree.insert(Rect((5, 5), (7, 7), payload="b"))
    tree.insert(Rect((1, 1), (6, 6), payload="c"))
    hits = {rect.payload for rect in tree.search_overlap(Rect((1, 1), (1.5, 1.5)))}
    assert hits == {"a", "c"}


def test_contained_query():
    tree = RTree()
    tree.insert(Rect((1, 1), (2, 2), payload="inside"))
    tree.insert(Rect((0, 0), (100, 100), payload="huge"))
    contained = {rect.payload for rect in tree.search_contained_in(Rect((0, 0), (10, 10)))}
    assert contained == {"inside"}


def test_point_query():
    tree = RTree()
    tree.insert(Rect((0, 0), (10, 10), payload="a"))
    tree.insert(Rect((20, 20), (30, 30), payload="b"))
    assert {rect.payload for rect in tree.search_point((5, 5))} == {"a"}


def test_many_inserts_overlap_correct():
    rng = random.Random(1)
    tree = RTree(max_entries=8)
    rects = []
    for index in range(400):
        x = rng.uniform(0, 1000)
        y = rng.uniform(0, 1000)
        rect = Rect((x, y), (x + rng.uniform(1, 20), y + rng.uniform(1, 20)), payload=index)
        rects.append(rect)
        tree.insert(rect)
    assert len(tree) == 400
    query = Rect((100, 100), (300, 300))
    expected = {rect.payload for rect in linear_region_overlap(rects, query)}
    actual = {rect.payload for rect in tree.search_overlap(query)}
    assert actual == expected


def test_height_grows_with_data():
    tree = RTree(max_entries=4)
    for index in range(100):
        tree.insert(Rect((index, 0), (index + 1, 1), payload=index))
    assert tree.height() >= 2


def test_nearest():
    tree = RTree()
    tree.insert(Rect((0, 0), (1, 1), payload="close"))
    tree.insert(Rect((100, 100), (101, 101), payload="far"))
    nearest = tree.nearest((0, 0), count=1)
    assert nearest[0].payload == "close"


def test_nearest_k():
    rng = random.Random(3)
    tree = RTree()
    for index in range(50):
        x = rng.uniform(0, 100)
        tree.insert(Rect((x, x), (x + 1, x + 1), payload=index))
    result = tree.nearest((0, 0), count=5)
    assert len(result) == 5


def test_remove():
    tree = RTree()
    rect = Rect((0, 0), (2, 2), payload="a")
    tree.insert(rect)
    tree.insert(Rect((5, 5), (7, 7), payload="b"))
    assert tree.remove(rect)
    assert len(tree) == 1
    assert not tree.remove(Rect((0, 0), (2, 2), payload="ghost"))


def test_remove_then_query():
    rng = random.Random(5)
    tree = RTree(max_entries=4)
    rects = []
    for index in range(60):
        x = rng.uniform(0, 100)
        rect = Rect((x, x), (x + 2, x + 2), payload=index)
        rects.append(rect)
        tree.insert(rect)
    for rect in rects[:20]:
        tree.remove(rect)
    assert len(tree) == 40
    remaining = set(rect.payload for rect in tree)
    assert remaining == {rect.payload for rect in rects[20:]}


def test_3d_rtree():
    tree = RTree(space="vol")
    tree.insert(Rect((0, 0, 0), (2, 2, 2), space="vol", payload="a"))
    tree.insert(Rect((10, 10, 10), (12, 12, 12), space="vol", payload="b"))
    hits = {rect.payload for rect in tree.search_overlap(Rect((1, 1, 1), (1, 1, 1), space="vol"))}
    assert hits == {"a"}


def test_space_mismatch_rejected():
    tree = RTree(space="x")
    with pytest.raises(SpatialError):
        tree.insert(Rect((0, 0), (1, 1), space="y"))


@settings(max_examples=30, deadline=None)
@given(
    rects=st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 200), st.integers(1, 30), st.integers(1, 30)),
        min_size=1,
        max_size=80,
    ),
    query=st.tuples(st.integers(0, 200), st.integers(0, 200), st.integers(1, 60), st.integers(1, 60)),
)
def test_rtree_overlap_matches_linear(rects, query):
    items = [Rect((x, y), (x + w, y + h), payload=i) for i, (x, y, w, h) in enumerate(rects)]
    tree = RTree.from_rects(items, max_entries=6)
    q = Rect((query[0], query[1]), (query[0] + query[2], query[1] + query[3]))
    expected = {rect.payload for rect in linear_region_overlap(items, q)}
    actual = {rect.payload for rect in tree.search_overlap(q)}
    assert actual == expected


# -- R-tree family -----------------------------------------------------------


def test_rtree_family_groups_by_space():
    family = RTreeFamily()
    family.insert("atlas", Rect((0, 0), (2, 2), space="atlas", payload="a"))
    family.insert("slide", Rect((0, 0), (2, 2), space="slide", payload="b"))
    assert len(family) == 2
    assert family.total_rects() == 2
    hits = family.search_overlap("atlas", Rect((1, 1), (1, 1), space="atlas"))
    assert {rect.payload for rect in hits} == {"a"}


def test_rtree_family_unknown_space_empty():
    family = RTreeFamily()
    assert family.search_overlap("ghost", Rect((0, 0), (1, 1))) == []
