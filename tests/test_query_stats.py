"""Tests for the live statistics catalogue and cardinality estimation.

Covers the tentpole's stats contract: the incrementally maintained counts
always equal a from-scratch rebuild — across commits, deletes, snapshot
round-trips, and the full checkpoint + crash + recover durability
lifecycle — and the estimates rank constraints sensibly.
"""

import pytest

from repro import Graphitti
from repro.core.persistence import rebuild, snapshot
from repro.query.builder import QueryBuilder
from repro.query.stats import StatisticsCatalogue, canonical_type
from repro.workloads.generators import WorkloadConfig, generate_annotation_workload


def _fresh_rebuild(manager: Graphitti) -> StatisticsCatalogue:
    catalogue = StatisticsCatalogue()
    catalogue.rebuild(manager)
    return catalogue


def test_canonical_type_resolves_names_and_values():
    assert canonical_type("dna") == "dna_sequence"
    assert canonical_type("DNA_sequence") == "dna_sequence"
    assert canonical_type("image") == "image"
    assert canonical_type("mystery") == "mystery"


def test_catalogue_tracks_commits(small_graphitti):
    catalogue = small_graphitti.stats_catalogue
    assert catalogue.annotation_total == 2
    assert catalogue.annotations_of_type("dna") == {"a1", "a2"}
    assert catalogue.annotations_of_type("image") == {"a1"}
    assert catalogue.term_annotation_count("protein:protease") == 1
    assert catalogue.counts() == _fresh_rebuild(small_graphitti).counts()


def test_catalogue_tracks_deletes(small_graphitti):
    small_graphitti.delete_annotation("a1")
    catalogue = small_graphitti.stats_catalogue
    assert catalogue.annotation_total == 1
    assert catalogue.annotations_of_type("image") == frozenset()
    assert catalogue.term_annotation_count("protein:protease") == 0
    assert catalogue.counts() == _fresh_rebuild(small_graphitti).counts()


def test_catalogue_matches_rebuild_on_workload():
    manager = Graphitti("stats-wl")
    summary = generate_annotation_workload(
        manager, WorkloadConfig(seed=11, sequence_count=6, annotation_count=80, image_count=2)
    )
    # Delete a third of the annotations, including re-shared referents.
    for annotation_id in summary["annotation_ids"][::3]:
        manager.delete_annotation(annotation_id)
    assert manager.stats_catalogue.counts() == _fresh_rebuild(manager).counts()


def test_idspace_matches_live_annotations(small_graphitti):
    assert set(small_graphitti.idspace.ids(small_graphitti.idspace.live_mask)) == {"a1", "a2"}
    small_graphitti.delete_annotation("a2")
    assert set(small_graphitti.idspace.ids(small_graphitti.idspace.live_mask)) == {"a1"}


def test_snapshot_rebuild_restores_catalogue(small_graphitti):
    restored = rebuild(snapshot(small_graphitti))
    assert restored.stats_catalogue.counts() == small_graphitti.stats_catalogue.counts()
    assert set(restored.idspace.ids(restored.idspace.live_mask)) == {"a1", "a2"}


def test_extent_summaries_maintained(small_graphitti):
    summary = small_graphitti.substructures.interval_summary("chr1")
    assert summary is not None
    # a1 + a2 mark the same chr1[10,40] substructure -> one shared referent.
    assert summary.count == 1
    assert small_graphitti.substructures.interval_bounds("chr1") == (10, 40)
    region = small_graphitti.substructures.region_summary("atlas:25um")
    assert region is not None and region.count == 1
    assert small_graphitti.substructures.region_bounds("atlas:25um") == ((10.0, 10.0), (40.0, 40.0))
    small_graphitti.delete_annotation("a2")
    # The referent is still shared with a1, so the summary is unchanged.
    summary = small_graphitti.substructures.interval_summary("chr1")
    assert summary.count == 1
    small_graphitti.delete_annotation("a1")
    assert small_graphitti.substructures.interval_summary("chr1") is None
    assert small_graphitti.substructures.region_summary("atlas:25um") is None


def test_bounds_shrink_after_boundary_delete():
    """Deleting the extremal extent tightens the live bounds, so pre-crash
    statistics() equal post-recovery statistics() (recovery rebuilds tight
    bounds from scratch)."""
    from repro.core.persistence import rebuild, snapshot
    from repro.datatypes import DnaSequence

    manager = Graphitti("bounds")
    manager.register(DnaSequence("seq1", "ACGT" * 100, domain="chr9"))
    manager.new_annotation("low", keywords=["x"]).mark_sequence("seq1", 30, 50).commit()
    manager.new_annotation("high", keywords=["x"]).mark_sequence("seq1", 90, 110).commit()
    assert manager.substructures.interval_bounds("chr9") == (30, 110)
    manager.delete_annotation("low")
    assert manager.substructures.interval_bounds("chr9") == (90, 110)
    restored = rebuild(snapshot(manager))
    assert restored.statistics()["extent_summaries"] == manager.statistics()["extent_summaries"]
    assert restored.substructures.interval_bounds("chr9") == (90, 110)


def test_estimates_rank_skewed_constraints():
    manager = Graphitti("stats-est")
    generate_annotation_workload(
        manager, WorkloadConfig(seed=6, sequence_count=10, annotation_count=400, image_count=3)
    )
    explanation = manager.explain(
        QueryBuilder.contents()
        .of_type("dna_sequence")
        .overlaps_interval("genome:chrX", 100, 300)
        .build(),
        mode="cost",
    )
    assert explanation["mode"] == "cost"
    rows = dict(explanation["estimated_rows"])
    interval_estimate = rows["interval OVERLAPS genome:chrX[100,300] (>= 1)"]
    type_estimate = rows["type dna_sequence"]
    assert interval_estimate < type_estimate
    # The tiny window must be planned before the broad type constraint.
    assert "1. [interval]" in explanation["plan"]


def test_estimate_zero_for_unknown_domain_and_term(small_graphitti):
    from repro.query.ast import OntologyConstraint, OverlapConstraint
    from repro.query.stats import CardinalityEstimator

    estimator = CardinalityEstimator(small_graphitti)
    assert estimator.estimate(OverlapConstraint(domain="nope", start=0, end=10)) == 0
    assert estimator.estimate(OntologyConstraint(term="no-such-term")) == 0


def test_type_count_exact(small_graphitti):
    assert small_graphitti.stats_catalogue.type_count("dna") == 2
    assert small_graphitti.stats_catalogue.type_count("image") == 1
    assert small_graphitti.stats_catalogue.type_count("phylogenetic_tree") == 0


def test_catalogue_survives_durability_lifecycle(tmp_path):
    """Checkpoint + crash + recover: catalogue equals a cold rebuild."""
    from repro.datatypes import DnaSequence
    from repro.service import GraphittiService, ServiceConfig

    root = tmp_path / "served"
    service = GraphittiService(
        manager=Graphitti("stats-dur"),
        root=root,
        config=ServiceConfig(checkpoint_on_close=False),
    )
    service.register(DnaSequence("seq1", "ACGT" * 100, domain="chr1"))
    for index in range(8):
        service.commit(
            service.new_annotation(
                f"dur-{index}", keywords=["alpha" if index % 2 else "beta"]
            ).mark_sequence("seq1", index * 10, index * 10 + 5)
        )
    service.checkpoint()
    # Post-checkpoint mutations live only in the WAL.
    for index in range(8, 12):
        service.commit(
            service.new_annotation(f"dur-{index}", keywords=["gamma"]).mark_sequence(
                "seq1", index * 10, index * 10 + 5
            )
        )
    service.delete_annotation("dur-1")
    expected = service.manager.stats_catalogue.counts()
    expected_live = set(service.manager.idspace.ids(service.manager.idspace.live_mask))
    # Simulated crash: no close(), no final checkpoint.
    recovered = GraphittiService.recover(root)
    manager = recovered.manager
    assert manager.stats_catalogue.counts() == expected
    cold = StatisticsCatalogue()
    cold.rebuild(manager)
    assert manager.stats_catalogue.counts() == cold.counts()
    assert set(manager.idspace.ids(manager.idspace.live_mask)) == expected_live
    recovered.close()
    service.close()


def test_statistics_exposes_catalogue(small_graphitti):
    stats = small_graphitti.statistics()
    assert stats["catalogue"]["annotations"] == 2
    assert "dna_sequence" in stats["catalogue"]["annotations_by_type"]
    assert "chr1" in stats["extent_summaries"]["intervals"]
