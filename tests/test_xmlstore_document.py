"""Tests for the XML document model."""

import pytest

from repro.errors import XmlStoreError
from repro.xmlstore.document import XmlDocument, XmlElement


def test_element_requires_tag():
    with pytest.raises(XmlStoreError):
        XmlElement("")


def test_add_child_and_find():
    root = XmlElement("root")
    child = root.add("child", text="hi")
    assert root.find("child") is child
    assert root.find("missing") is None
    assert root.child_text("child") == "hi"


def test_append_detects_existing_parent():
    root = XmlElement("root")
    child = XmlElement("child")
    root.append(child)
    other = XmlElement("other")
    with pytest.raises(XmlStoreError):
        other.append(child)


def test_remove_child():
    root = XmlElement("root")
    child = root.add("child")
    root.remove(child)
    assert root.find("child") is None
    assert child.parent is None


def test_remove_non_child():
    root = XmlElement("root")
    stranger = XmlElement("stranger")
    with pytest.raises(XmlStoreError):
        root.remove(stranger)


def test_find_all():
    root = XmlElement("root")
    root.add("x", text="1")
    root.add("x", text="2")
    root.add("y")
    assert len(root.find_all("x")) == 2


def test_iter_depth_first():
    root = XmlElement("a")
    b = root.add("b")
    b.add("c")
    root.add("d")
    tags = [element.tag for element in root.iter()]
    assert tags == ["a", "b", "c", "d"]


def test_descendants_filtered():
    root = XmlElement("root")
    root.add("keyword", text="x")
    sub = root.add("sub")
    sub.add("keyword", text="y")
    keywords = list(root.descendants("keyword"))
    assert len(keywords) == 2


def test_ancestors_and_root():
    root = XmlElement("root")
    mid = root.add("mid")
    leaf = mid.add("leaf")
    assert [a.tag for a in leaf.ancestors()] == ["mid", "root"]
    assert leaf.root() is root


def test_path():
    root = XmlElement("annotation")
    ref = root.add("referents").add("referent")
    assert ref.path() == "/annotation/referents/referent"


def test_text_content_recursive():
    root = XmlElement("root", text="a")
    child = root.add("child", text="b")
    child.add("grand", text="c")
    assert root.text_content() == "a b c"


def test_attributes():
    element = XmlElement("e", attributes={"k": "v"})
    assert element.get("k") == "v"
    assert element.get("missing", "default") == "default"
    element.set("n", 5)
    assert element.get("n") == "5"


def test_equals():
    a = XmlElement("x", attributes={"k": "v"}, text="hi")
    b = XmlElement("x", attributes={"k": "v"}, text="hi")
    assert a.equals(b)
    b.set("k", "other")
    assert not a.equals(b)


def test_copy_is_deep():
    root = XmlElement("root")
    root.add("child", text="x")
    clone = root.copy()
    clone.find("child").text = "mutated"
    assert root.find("child").text == "x"
    assert clone.parent is None


def test_element_roundtrip_dict():
    root = XmlElement("root", attributes={"id": "1"})
    root.add("child", text="x")
    restored = XmlElement.from_dict(root.to_dict())
    assert restored.equals(root)


def test_document_helpers():
    root = XmlElement("doc")
    root.add("item", text="one")
    root.add("item", text="two")
    document = XmlDocument(root, doc_id="d1")
    assert document.element_count() == 3
    assert len(document.find_elements("item")) == 2
    assert "one" in document.text_content()


def test_document_roundtrip_dict():
    root = XmlElement("doc")
    root.add("item", text="one")
    document = XmlDocument(root, doc_id="d1")
    restored = XmlDocument.from_dict(document.to_dict())
    assert restored.doc_id == "d1"
    assert restored.root.equals(root)
