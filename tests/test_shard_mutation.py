"""Sharded mutation lifecycle: owner routing, broadcast cascades, and the
legacy-id / cache-invalidation regressions."""

import pytest

from repro.datatypes import DnaSequence
from repro.errors import AnnotationError
from repro.shard import ShardedGraphittiService
from repro.shard.router import shard_for_key


@pytest.fixture
def sharded():
    service = ShardedGraphittiService(shards=2)
    # find two object ids that hash to different shards
    first = "obj_a"
    other = next(
        f"obj_{suffix}"
        for suffix in "bcdefgh"
        if shard_for_key(f"obj_{suffix}", 2) != shard_for_key(first, 2)
    )
    service.register(DnaSequence(first, "ACGT" * 200, domain="sh:chr1"))
    service.register(DnaSequence(other, "TGCA" * 200, domain="sh:chr1", offset=800))
    service.commit(
        service.new_annotation("on-a", keywords=["alpha"], body="marks obj a").mark_sequence(
            first, 10, 40
        )
    )
    service.commit(
        service.new_annotation("on-b", keywords=["alpha"], body="marks obj b").mark_sequence(
            other, 10, 40
        )
    )
    yield service, first, other
    service.close()


def _epochs(service):
    return [shard.manager.mutation_epoch for shard in service.shards]


def test_update_routes_to_owning_shard_only(sharded):
    service, first, other = sharded
    owner = service._owning_shard("on-a")
    before = _epochs(service)
    service.update_annotation("on-a", {"keywords": ["beta"]})
    after = _epochs(service)
    for index, (was, now) in enumerate(zip(before, after)):
        if index == owner:
            assert now > was
        else:
            assert now == was
    assert service.search_by_keyword("beta") == ["on-a"]


def test_update_unknown_annotation_raises(sharded):
    service, _, _ = sharded
    with pytest.raises(AnnotationError):
        service.update_annotation("missing", {"title": "x"})


def test_delete_object_broadcasts_and_cascades(sharded):
    service, first, other = sharded
    # an annotation owned by first's shard that ALSO marks the other object:
    # only a broadcast delete of `other` can reach it
    service.commit(
        service.new_annotation("spans", keywords=["span"], body="marks both")
        .mark_sequence(first, 100, 130)
        .mark_sequence(other, 100, 130)
    )
    cascaded = service.delete_object(other)
    assert cascaded == ["on-b", "spans"]
    assert service.search_by_keyword("alpha") == ["on-a"]
    assert service.annotations_on_object(other) == []
    # the object is gone from every shard's registry
    for shard in service.shards:
        assert other not in shard.manager.registry
    report = service.check_integrity()
    assert report.ok, report.errors


def test_delete_object_no_cascade_prechecks_every_shard(sharded):
    service, first, other = sharded
    with pytest.raises(AnnotationError):
        service.delete_object(other, cascade=False)
    # the refusal left every shard untouched (no half-deleted object)
    for shard in service.shards:
        assert other in shard.manager.registry
    assert service.search_by_keyword("alpha") == ["on-a", "on-b"]


def test_delete_object_converges_after_partial_broadcast(sharded):
    """A shard whose replica is already gone reports no work instead of
    failing, so a raced/interrupted broadcast is finished by re-running."""
    service, first, other = sharded
    # simulate a half-applied earlier broadcast: one shard already lost it
    lagging = service._owning_shard("on-b")
    for index, shard in enumerate(service.shards):
        if index != lagging:
            shard.delete_object(other)
    cascaded = service.delete_object(other)  # converges, no UnknownObjectError
    assert cascaded == ["on-b"]
    for shard in service.shards:
        assert other not in shard.manager.registry


def test_delete_object_unknown_everywhere_raises(sharded):
    from repro.errors import UnknownObjectError

    service, _, _ = sharded
    with pytest.raises(UnknownObjectError):
        service.delete_object("ghost-object")


# -- legacy / foreign annotation-id routing (broadcast-probe fallback) ---------


def test_legacy_ids_resolve_by_broadcast_probe(sharded):
    service, first, other = sharded
    # pre-shard id (no shard encoding), caller-chosen
    service.commit(
        service.new_annotation("anno-000042", keywords=["legacy"], body="old world").mark_sequence(
            first, 50, 70
        )
    )
    # foreign shard-encoded id whose encoded index is out of range here
    service.commit(
        service.new_annotation("anno-s99-000001", keywords=["legacy"], body="imported").mark_sequence(
            first, 80, 95
        )
    )
    # shard-encoded id that actually lives on a different shard than encoded
    owner = shard_for_key(first, 2)
    mismatched = f"anno-s{(owner + 1) % 2:02d}-777777"
    service.commit(
        service.new_annotation(mismatched, keywords=["legacy"], body="migrated").mark_sequence(
            first, 120, 140
        )
    )
    for annotation_id in ("anno-000042", "anno-s99-000001", mismatched):
        assert service.annotation(annotation_id).annotation_id == annotation_id
        service.update_annotation(annotation_id, {"title": f"touched {annotation_id}"})
    assert sorted(service.search_by_keyword("legacy")) == sorted(
        ["anno-000042", "anno-s99-000001", mismatched]
    )
    service.delete_annotation("anno-000042")
    with pytest.raises(AnnotationError):
        service.annotation("anno-000042")


# -- per-shard cache invalidation on delete (two-shard regression) -------------


def test_delete_invalidates_only_owning_shard_cache(sharded):
    service, first, other = sharded
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "alpha" }'
    assert service.query(probe).annotation_ids == ["on-a", "on-b"]
    assert service.query(probe).annotation_ids == ["on-a", "on-b"]  # warm both shards
    owner_b = service._owning_shard("on-b")
    hits_before = [
        shard.statistics()["service"]["query_cache"]["hits"] for shard in service.shards
    ]
    epochs_before = _epochs(service)

    service.delete_annotation("on-b")

    # only the owning shard's epoch moved
    epochs_after = _epochs(service)
    for index, (was, now) in enumerate(zip(epochs_before, epochs_after)):
        assert (now > was) if index == owner_b else (now == was)

    # every merged page stops showing the deleted annotation immediately...
    assert service.query(probe).annotation_ids == ["on-a"]
    # ...yet the untouched shard answered from its cache (hits grew there,
    # while the owning shard re-executed on a miss)
    hits_after = [
        shard.statistics()["service"]["query_cache"]["hits"] for shard in service.shards
    ]
    for index, (was, now) in enumerate(zip(hits_before, hits_after)):
        if index == owner_b:
            assert now == was  # miss: invalidated by the epoch bump
        else:
            assert now == was + 1  # served from cache
