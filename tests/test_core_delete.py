"""Tests for annotation deletion and its a-graph / index effects."""

import pytest

from repro import Graphitti
from repro.datatypes import DnaSequence, Image
from repro.errors import AnnotationError, XmlStoreError


def make_instance():
    g = Graphitti("del")
    g.register(DnaSequence("seq", "ACGT" * 100, domain="chr1"))
    g.register(Image("img", dimension=2, space="atlas", size=(100, 100)))
    return g


def test_delete_sole_owner_removes_referent():
    g = make_instance()
    g.new_annotation("a1").mark_sequence("seq", 10, 40).commit()
    assert g.statistics()["indexed_intervals"] == 1
    g.delete_annotation("a1")
    assert g.statistics()["referents"] == 0
    assert g.statistics()["indexed_intervals"] == 0
    assert "a1" not in g.contents


def test_delete_keeps_shared_referent():
    g = make_instance()
    g.new_annotation("a1").mark_sequence("seq", 10, 40).commit()
    g.new_annotation("a2").mark_sequence("seq", 10, 40).commit()
    assert g.statistics()["referents"] == 1
    g.delete_annotation("a1")
    # referent survives because a2 still needs it
    assert g.statistics()["referents"] == 1
    assert g.statistics()["indexed_intervals"] == 1
    assert g.related_annotations("a2") == []


def test_delete_unknown_raises():
    g = make_instance()
    with pytest.raises(AnnotationError):
        g.delete_annotation("ghost")


def test_delete_removes_content_document():
    g = make_instance()
    g.new_annotation("a1").mark_sequence("seq", 10, 40).commit()
    g.delete_annotation("a1")
    with pytest.raises(XmlStoreError):
        g.contents.get("a1")


def test_delete_then_reindex_correct():
    g = make_instance()
    g.new_annotation("a1").mark_sequence("seq", 10, 40).commit()
    g.delete_annotation("a1")
    # the interval is gone from overlap queries
    assert g.search_by_overlap_interval("chr1", 20, 30) == []
    # a fresh annotation on the same region works
    g.new_annotation("a2").mark_sequence("seq", 10, 40).commit()
    assert g.search_by_overlap_interval("chr1", 20, 30) == ["a2"]


def test_delete_region_annotation():
    g = make_instance()
    g.new_annotation("a1").mark_region("img", (10, 10), (40, 40)).commit()
    assert g.statistics()["indexed_regions"] == 1
    g.delete_annotation("a1")
    assert g.statistics()["indexed_regions"] == 0


def test_delete_preserves_integrity():
    g = make_instance()
    g.new_annotation("a1").mark_sequence("seq", 10, 40).commit()
    g.new_annotation("a2").mark_sequence("seq", 50, 70).commit()
    g.delete_annotation("a1")
    assert g.check_integrity().ok
