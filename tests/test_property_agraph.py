"""Property-based tests for a-graph invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.agraph.agraph import AGraph


def _build_bipartite(num_contents, num_referents, edges):
    g = AGraph()
    for index in range(num_contents):
        g.add_content(f"c{index}")
    for index in range(num_referents):
        g.add_referent(f"r{index}")
    for content_index, referent_index in edges:
        if content_index < num_contents and referent_index < num_referents:
            g.link_annotation(f"c{content_index}", f"r{referent_index}")
    return g


@settings(max_examples=60, suppress_health_check=[HealthCheck.filter_too_much])
@given(
    num_contents=st.integers(1, 8),
    num_referents=st.integers(1, 8),
    edges=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=30),
)
def test_path_is_symmetric(num_contents, num_referents, edges):
    g = _build_bipartite(num_contents, num_referents, edges)
    nodes = g.graph.node_ids()
    for source in nodes[:3]:
        for target in nodes[:3]:
            forward = g.path(source, target)
            backward = g.path(target, source)
            # reachability is symmetric in an undirected-traversal a-graph
            assert (forward is None) == (backward is None)


@settings(max_examples=60, suppress_health_check=[HealthCheck.filter_too_much])
@given(
    num_contents=st.integers(1, 6),
    num_referents=st.integers(1, 6),
    edges=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20),
)
def test_path_endpoints_correct(num_contents, num_referents, edges):
    g = _build_bipartite(num_contents, num_referents, edges)
    nodes = g.graph.node_ids()
    for source in nodes:
        for target in nodes:
            path = g.path(source, target)
            if path is not None:
                assert path[0] == source
                assert path[-1] == target


@settings(max_examples=50, suppress_health_check=[HealthCheck.filter_too_much])
@given(
    num_contents=st.integers(2, 6),
    num_referents=st.integers(1, 6),
    edges=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20),
)
def test_related_annotations_are_symmetric(num_contents, num_referents, edges):
    g = _build_bipartite(num_contents, num_referents, edges)
    contents = g.contents()
    for content in contents:
        for other in g.related_annotations(content):
            assert content in g.related_annotations(other)


@settings(max_examples=40, suppress_health_check=[HealthCheck.filter_too_much])
@given(
    num_contents=st.integers(1, 6),
    num_referents=st.integers(1, 6),
    edges=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20),
)
def test_connected_component_is_reflexive(num_contents, num_referents, edges):
    g = _build_bipartite(num_contents, num_referents, edges)
    for node in g.graph.node_ids():
        component = g.connected_component(node)
        assert node in component
        # every node in the component is reachable
        for other in component:
            assert g.path(node, other) is not None


@settings(max_examples=40, suppress_health_check=[HealthCheck.filter_too_much])
@given(
    num_contents=st.integers(1, 6),
    num_referents=st.integers(1, 6),
    edges=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20),
)
def test_components_partition_nodes(num_contents, num_referents, edges):
    g = _build_bipartite(num_contents, num_referents, edges)
    components = g.connected_components()
    total = sum(len(component) for component in components)
    assert total == g.node_count
    # components are disjoint
    seen = set()
    for component in components:
        assert seen.isdisjoint(component)
        seen |= component
