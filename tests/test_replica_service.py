"""ReplicatedGraphittiService: shipping, read routing, reseed, failover.

Everything runs in manual-ship mode (``auto_ship=False``) so each test
controls exactly when records move — the background threads are covered by
the benchmarks and the fault matrix.
"""

import pytest

from repro.datatypes import DnaSequence
from repro.errors import ServiceError, WalCorruptionError
from repro.replica import (
    ReplicatedGraphittiService,
    ReplicationConfig,
    StaleTermError,
    read_replication_manifest,
)
from repro.service import GraphittiService, ServiceConfig

MANUAL = ReplicationConfig(auto_ship=False, auto_failover=False, read_deadline=0.05)
CONFIG = ServiceConfig(durability="never")


def open_deployment(root, replicas=2):
    return ReplicatedGraphittiService.open(
        root, replicas=replicas, config=ServiceConfig(durability="never"), replication=MANUAL
    )


def seed(service, count=3, prefix="rep", object_id="rep_seq1"):
    service.register(DnaSequence(object_id, "ACGT" * 200, domain="rep:chr1"))
    for index in range(count):
        (
            service.new_annotation(
                f"{prefix}-{index}",
                keywords=["replica", "test"],
                body=f"replica test annotation {index}",
            )
            .mark_sequence(object_id, index * 30, index * 30 + 20)
            .commit()
        )


PROBE = 'SELECT contents WHERE { CONTENT CONTAINS "replica" }'


def test_ship_moves_acknowledged_history(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        seed(service)
        assert [f.applied_seq for f in service.followers] == [0, 0]
        service.ship()
        frontier = service.last_acked_seq
        assert frontier > 0
        assert all(f.applied_seq == frontier for f in service.followers)
        for follower in service.followers:
            assert follower.query(PROBE).count == 3


def test_eventual_reads_route_to_followers(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        seed(service)
        service.ship()
        assert service.query(PROBE).count == 3
        stats = service.replication_stats()
        assert stats["reads"]["replica"] == 1
        assert stats["reads"]["primary"] == 0
        assert service.query(PROBE, consistency="primary").count == 3
        assert service.replication_stats()["reads"]["primary"] == 1


def test_fresh_read_pumps_inline(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        seed(service)
        # No explicit ship(): the waiting read ships what it needs itself.
        assert service.query(PROBE, consistency="fresh").count == 3
        stats = service.replication_stats()
        assert stats["reads"]["replica"] == 1
        assert stats["reads"]["degraded"] == 0


def test_min_seq_gives_read_your_writes(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        seed(service)
        acked = service.last_acked_seq
        result = service.query(PROBE, min_seq=acked)
        assert result.count == 3
        assert all(f.applied_seq >= acked for f in service.followers)


def test_affinity_pins_a_query_to_one_follower(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        seed(service)
        service.ship()
        picks = {service._pick_follower(0, affinity=7).name for _ in range(5)}
        assert len(picks) == 1  # deterministic for a given affinity
        # Without affinity the picker round-robins.
        rotation = {service._pick_follower(0).name for _ in range(4)}
        assert rotation == {f.name for f in service.followers}
        # A lagging preferred follower falls through to a caught-up one.
        lagging = service._pick_follower(0, affinity=0)
        need = lagging.applied_seq + 1
        assert service._pick_follower(need, affinity=0) is None  # nobody has it yet
        seed(service, count=1, prefix="more", object_id="rep_seq2")
        service.ship()
        assert service._pick_follower(need, affinity=0) is not None


def test_checkpoint_drains_then_truncates(tmp_path):
    root = tmp_path / "rep"
    with open_deployment(root) as service:
        seed(service)
        service.checkpoint()
        frontier = service.last_acked_seq
        assert all(f.applied_seq == frontier for f in service.followers)
        # Shipping continues across the truncation without a gap.
        seed(service, count=2, prefix="after", object_id="rep_seq2")
        service.ship()
        assert all(f.applied_seq == service.last_acked_seq for f in service.followers)
        assert all(f.reseeds == 0 for f in service.followers)


def test_checkpointed_away_history_triggers_reseed(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        seed(service)
        # Checkpoint the primary alone: the records vanish from its WAL
        # before any follower saw them — the hidden-gap case.
        service.primary.checkpoint()
        service.ship()
        frontier = service.last_acked_seq
        assert all(f.applied_seq == frontier for f in service.followers)
        assert all(f.reseeds == 1 for f in service.followers)
        assert service.query(PROBE, consistency="fresh").count == 3


def test_reopen_adopts_manifest_topology(tmp_path):
    root = tmp_path / "rep"
    with open_deployment(root) as service:
        seed(service)
        service.checkpoint()
    reopened = ReplicatedGraphittiService.open(
        root, config=ServiceConfig(durability="never"), replication=MANUAL
    )
    try:
        assert len(reopened.followers) == 2
        assert reopened.query(PROBE, consistency="fresh").count == 3
        seed(reopened, count=1, prefix="again", object_id="rep_seq3")
        reopened.ship()
        assert all(
            f.applied_seq == reopened.last_acked_seq for f in reopened.followers
        )
    finally:
        reopened.close()


def test_conflicting_replica_count_rejected(tmp_path):
    root = tmp_path / "rep"
    open_deployment(root).close()
    with pytest.raises(ServiceError):
        ReplicatedGraphittiService.open(root, replicas=5, replication=MANUAL)


def test_promote_fences_old_primary_and_bumps_term(tmp_path):
    root = tmp_path / "rep"
    with open_deployment(root) as service:
        seed(service)
        old_primary = service.primary
        report = service.promote()
        assert report["term"] == 2
        assert report["promoted_at_seq"] == report["old_primary_seq"]
        assert old_primary.fenced
        with pytest.raises(ServiceError):
            old_primary.delete_annotation("rep-0")
        manifest = read_replication_manifest(root)
        assert manifest["term"] == 2
        assert manifest["primary"] == report["primary"]
        # The promoted follower serves the full acknowledged history, and
        # post-promotion writes on natively registered objects replicate on.
        assert service.query(PROBE, consistency="fresh").count == 3
        seed(service, count=1, prefix="post", object_id="rep_seq9")
        service.ship()
        remaining = service.followers
        assert len(remaining) == 1
        assert remaining[0].applied_seq == service.last_acked_seq


def test_promote_refuses_lagging_target(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        seed(service)
        service.ship()
        behind = service.followers[0]
        seed(service, count=1, prefix="late", object_id="rep_seq2")
        # The pre-promotion drain catches followers up, so only one that
        # cannot apply (disk stall) can still lag at selection time.
        behind.stall_hook = lambda: True
        with pytest.raises(ServiceError, match="lagging"):
            service.promote(target=behind.name)


def test_zombie_shipment_rejected_by_term_and_seq_guard(tmp_path):
    with open_deployment(tmp_path / "rep") as service:
        seed(service)
        service.ship()
        follower = service.followers[0]
        current_term = follower.term
        with pytest.raises(StaleTermError):
            follower.apply_records(
                [{"seq": follower.applied_seq + 1, "op": "commit", "payload": {}}],
                term=current_term - 1,
            )
        # The append-time seq-fencing guard is the belt to the term check's
        # braces: rewinding records die even if a stale term slipped through.
        with pytest.raises(WalCorruptionError):
            follower.service._store.wal.append_record(
                {"seq": follower.applied_seq, "op": "commit", "payload": {}}
            )


def test_writes_refused_when_primary_dead(tmp_path):
    root = tmp_path / "rep"
    with open_deployment(root) as service:
        seed(service)
        service.checkpoint()
    recovered = ReplicatedGraphittiService.recover(
        root, replication=MANUAL, assume_primary_dead=True
    )
    try:
        with pytest.raises(ServiceError):
            recovered.register(DnaSequence("nope", "ACGT" * 10, domain="rep:chr1"))
        # Reads degrade to the most-caught-up follower rather than failing.
        assert recovered.query(PROBE).count == 3
        recovered.failover()
        assert recovered.primary is not None
        assert recovered.query(PROBE, consistency="fresh").count == 3
    finally:
        recovered.close()


def test_sharded_deployment_with_replicas(tmp_path):
    from repro.shard import ShardedGraphittiService

    root = tmp_path / "shards"
    service = ShardedGraphittiService.open(
        root, shards=2, replicas=1, config=ServiceConfig(durability="never")
    )
    try:
        seed(service, count=4)
        assert service.query(PROBE).count == 4
        stats = service.statistics()
        rows = stats["sharding"]["replication"]
        assert len(rows) == 2
        assert all(row["term"] == 1 for row in rows)
    finally:
        service.close()
