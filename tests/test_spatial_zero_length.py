"""Zero-length extents and post-removal bounds: the spatial hot-path audit.

Sharding leans on the spatial substrate twice over — every shard keeps its
own interval trees and R-trees, and the cost-based planner reads their live
bounds — so these tests pin the behaviours the audit focused on:

* **point annotations** (``start == end``) are found by interval-tree
  overlap search even when the query merely *touches* them at an endpoint
  (closed-interval semantics), at the tree, store, and full-query layers;
* **bounds shrink after removal** — ``RTree.bounds()`` and
  ``IntervalTree.span()`` reflect deletions exactly (no stale expanded
  boxes), which keeps :class:`CardinalityEstimator` extent estimates from
  being skewed by dead extents.
"""

import random

from repro.core.manager import Graphitti
from repro.datatypes.image import Image
from repro.datatypes.sequence import DnaSequence
from repro.spatial.interval import Interval
from repro.spatial.interval_tree import IntervalTree
from repro.spatial.rect import Rect
from repro.spatial.rtree import RTree

# -- interval tree: zero-length extents at touching endpoints ------------------


def test_point_interval_found_at_touching_endpoints():
    tree = IntervalTree(domain="d")
    tree.insert(Interval(5, 5, domain="d", payload="point"))
    tree.insert(Interval(1, 3, domain="d", payload="range"))
    # touching from the right, the left, exactly, and via stabbing
    assert [hit.payload for hit in tree.search_overlap(Interval(5, 9, domain="d"))] == ["point"]
    assert "point" in [hit.payload for hit in tree.search_overlap(Interval(0, 5, domain="d"))]
    assert [hit.payload for hit in tree.search_overlap(Interval(5, 5, domain="d"))] == ["point"]
    assert [hit.payload for hit in tree.stab(5)] == ["point"]


def test_zero_length_query_touches_range_endpoints():
    tree = IntervalTree()
    tree.insert(Interval(10, 20, payload="r"))
    assert [hit.payload for hit in tree.search_overlap(Interval(10, 10))] == ["r"]
    assert [hit.payload for hit in tree.search_overlap(Interval(20, 20))] == ["r"]
    assert tree.search_overlap(Interval(21, 21)) == []


def test_interval_tree_matches_oracle_under_heavy_zero_length_churn():
    rng = random.Random(20260726)
    tree = IntervalTree()
    live: dict[object, Interval] = {}
    for step in range(600):
        if live and rng.random() < 0.4:
            payload = rng.choice(list(live))
            assert tree.remove(live.pop(payload))
        else:
            start = rng.randint(0, 30)
            end = start if rng.random() < 0.5 else start + rng.randint(1, 6)
            interval = Interval(start, end, payload=step)
            live[step] = interval
            tree.insert(interval)
        if rng.random() < 0.4:
            lo = rng.randint(0, 30)
            query = Interval(lo, lo + rng.choice([0, 0, 2, 5]))
            expected = sorted(p for p, iv in live.items() if iv.overlaps(query))
            got = sorted(hit.payload for hit in tree.search_overlap(query))
            assert got == expected
        assert len(tree) == len(live)


def test_interval_span_shrinks_after_remove():
    tree = IntervalTree()
    wide = Interval(0, 100, payload="wide")
    tree.insert(wide)
    tree.insert(Interval(10, 20, payload="core"))
    assert tree.span().as_tuple() == (0, 100)
    assert tree.remove(wide)
    assert tree.span().as_tuple() == (10, 20)


# -- R-tree: bounds shrink after remove ----------------------------------------


def test_rtree_bounds_shrink_after_remove():
    tree = RTree(max_entries=4)
    rects = [
        Rect((float(i), float(i)), (float(i + 1), float(i + 1)), payload=i)
        for i in range(20)
    ]
    for rect in rects:
        tree.insert(rect)
    assert tree.bounds() == Rect((0.0, 0.0), (20.0, 20.0))
    for rect in rects[10:]:
        assert tree.remove(rect)
    assert tree.bounds() == Rect((0.0, 0.0), (10.0, 10.0))
    for rect in rects[1:10]:
        assert tree.remove(rect)
    assert tree.bounds() == Rect((0.0, 0.0), (1.0, 1.0))
    assert tree.remove(rects[0])
    assert tree.bounds() is None


def test_rtree_bounds_exact_under_churn_with_degenerate_rects():
    rng = random.Random(42)
    tree = RTree(max_entries=4)
    live: dict[object, Rect] = {}
    for step in range(400):
        if live and rng.random() < 0.45:
            payload = rng.choice(list(live))
            assert tree.remove(live.pop(payload))
        else:
            x, y = rng.uniform(0, 50), rng.uniform(0, 50)
            width = rng.choice([0.0, rng.uniform(0, 5)])   # degenerate rects too
            height = rng.choice([0.0, rng.uniform(0, 5)])
            rect = Rect((x, y), (x + width, y + height), payload=step)
            live[step] = rect
            tree.insert(rect)
        bounds = tree.bounds()
        if not live:
            assert bounds is None
        else:
            assert bounds.lo == (
                min(rect.lo[0] for rect in live.values()),
                min(rect.lo[1] for rect in live.values()),
            )
            assert bounds.hi == (
                max(rect.hi[0] for rect in live.values()),
                max(rect.hi[1] for rect in live.values()),
            )


# -- end to end: point annotations through the store and query pipeline --------


def _point_instance() -> Graphitti:
    manager = Graphitti("zero-length")
    manager.register(DnaSequence("zseq", "ACGT" * 100, domain="zl:chr1"))
    (
        manager.new_annotation("point-anno", keywords=["pointmark"], body="a point")
        .mark_sequence("zseq", 50, 50)
        .commit()
    )
    (
        manager.new_annotation("range-anno", keywords=["rangemark"], body="a range")
        .mark_sequence("zseq", 10, 40)
        .commit()
    )
    return manager


def test_point_annotation_survives_store_and_query_at_touching_endpoint():
    manager = _point_instance()
    # store level: overlap window touching the point exactly at its endpoint
    assert manager.search_by_overlap_interval("zl:chr1", 50, 60) == ["point-anno"]
    assert manager.search_by_overlap_interval("zl:chr1", 0, 50) == [
        "point-anno",
        "range-anno",
    ]
    # query level, materialize and (cost-mode) probe paths both
    for mode in ("off", "static", "cost"):
        result = manager.query(
            "SELECT contents WHERE { INTERVAL OVERLAPS zl:chr1 [50, 50] }", mode=mode
        )
        assert result.annotation_ids == ["point-anno"], mode


def test_estimator_extent_bounds_follow_deletions():
    """Stale (expanded) bounds after deletes would skew the estimator's
    overlap selectivity; the bounds it reads must track the live extents."""
    manager = _point_instance()
    store = manager.substructures
    assert store.interval_bounds("zl:chr1") == (10.0, 50.0)
    manager.delete_annotation("point-anno")
    assert store.interval_bounds("zl:chr1") == (10.0, 40.0)
    # a window beyond the live extents now estimates (and answers) empty
    from repro.query.ast import OverlapConstraint
    from repro.query.stats import CardinalityEstimator

    estimator = CardinalityEstimator(manager)
    assert estimator.estimate(OverlapConstraint(domain="zl:chr1", start=45, end=60)) == 0
    assert manager.search_by_overlap_interval("zl:chr1", 45, 60) == []


def test_estimator_region_bounds_follow_deletions():
    manager = Graphitti("zero-length-2d")
    manager.register(Image("zimg", dimension=2, space="zl:atlas", size=(100, 100)))
    (
        manager.new_annotation("far-region", keywords=["far"])
        .mark_region("zimg", (80, 80), (90, 90))
        .commit()
    )
    (
        manager.new_annotation("near-region", keywords=["near"])
        .mark_region("zimg", (5, 5), (10, 10))
        .commit()
    )
    assert manager.substructures.region_bounds("zl:atlas") == ((5.0, 5.0), (90.0, 90.0))
    manager.delete_annotation("far-region")
    assert manager.substructures.region_bounds("zl:atlas") == ((5.0, 5.0), (10.0, 10.0))
    from repro.query.ast import RegionConstraint
    from repro.query.stats import CardinalityEstimator

    estimator = CardinalityEstimator(manager)
    assert (
        estimator.estimate(RegionConstraint(space="zl:atlas", lo=(70, 70), hi=(95, 95)))
        == 0
    )
