"""Tests for the GraphittiService facade: caching, WAL wiring, bulk commits."""

import pytest

from repro.datatypes import DnaSequence
from repro.errors import ServiceError
from repro.query.parser import parse_query
from repro.query.planner import QueryPlanner
from repro.service import GraphittiService, ServiceConfig, read_records
from repro.workloads import build_influenza_instance

KEYWORD_QUERY = 'SELECT contents WHERE { CONTENT CONTAINS "cleavage" }'


@pytest.fixture
def service():
    return GraphittiService(manager=build_influenza_instance())


@pytest.fixture
def durable_service(tmp_path):
    svc = GraphittiService.open(tmp_path / "inst", manager_factory=build_influenza_instance)
    yield svc
    svc.close()


# -- plan fingerprints ---------------------------------------------------------


def test_plan_fingerprint_stable_and_discriminating():
    planner = QueryPlanner()
    plan_a = planner.plan(parse_query(KEYWORD_QUERY))
    plan_b = planner.plan(parse_query('SELECT contents WHERE {CONTENT CONTAINS "cleavage"}'))
    plan_c = planner.plan(parse_query('SELECT contents WHERE { CONTENT CONTAINS "other" }'))
    assert plan_a.fingerprint() == plan_b.fingerprint()
    assert plan_a.fingerprint() != plan_c.fingerprint()
    # Planner configuration participates in the fingerprint.
    unordered = QueryPlanner(enable_ordering=False).plan(parse_query(KEYWORD_QUERY))
    assert unordered.fingerprint() != plan_a.fingerprint()


def test_result_carries_fingerprint(service):
    result = service.query(KEYWORD_QUERY)
    assert result.plan_fingerprint
    assert result.to_dict()["plan_fingerprint"] == result.plan_fingerprint


# -- query caching -------------------------------------------------------------


def test_repeated_query_hits_cache(service):
    first = service.query(KEYWORD_QUERY)
    second = service.query("  SELECT contents  WHERE { CONTENT CONTAINS \"cleavage\" } ")
    # Same normalized text -> served from cache, as an independent copy (a
    # caller consuming one result must not corrupt the other's view).
    assert second is not first
    assert second.to_dict() == first.to_dict()
    stats = service.statistics()["service"]["query_cache"]
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_mutation_invalidates_cache(service):
    first = service.query(KEYWORD_QUERY)
    (
        service.new_annotation("svc-new", keywords=["cleavage"], body="fresh cleavage mark")
        .mark_sequence("HA_chicken", 700, 750)
        .commit()
    )
    second = service.query(KEYWORD_QUERY)
    assert second is not first
    assert "svc-new" in second.annotation_ids
    assert service.statistics()["service"]["query_cache"]["invalidations"] >= 1


def test_delete_invalidates_cache_and_rebuilds_components(service):
    (
        service.new_annotation("svc-del", keywords=["cleavage"], body="to be deleted")
        .mark_sequence("HA_chicken", 800, 850)
        .commit()
    )
    assert "svc-del" in service.query(KEYWORD_QUERY).annotation_ids
    service.delete_annotation("svc-del")
    assert "svc-del" not in service.query(KEYWORD_QUERY).annotation_ids
    # The delete's remove_node marked components stale; the service rebuilt
    # them before releasing the write lock.
    assert service.manager.agraph.graph.components_stale is False


def test_cache_disabled(service):
    service = GraphittiService(
        manager=build_influenza_instance(), config=ServiceConfig(cache_capacity=0)
    )
    first = service.query(KEYWORD_QUERY)
    second = service.query(KEYWORD_QUERY)
    assert second is not first
    assert service.statistics()["service"]["query_cache"]["hits"] == 0


def test_query_object_input(service):
    result = service.query(parse_query(KEYWORD_QUERY))
    assert result.annotation_ids == ["flu-a1", "flu-a2"]


# -- write path ----------------------------------------------------------------


def test_builder_commit_routes_through_service(durable_service):
    wal_before = durable_service.statistics()["service"]["wal"]["records"]
    (
        durable_service.new_annotation("svc-b1", keywords=["routed"], body="via builder")
        .mark_sequence("HA_chicken", 10, 30)
        .commit()
    )
    stats = durable_service.statistics()["service"]
    assert stats["wal"]["records"] == wal_before + 1
    assert durable_service.annotation("svc-b1").annotation_id == "svc-b1"


def test_register_and_commit_logged(durable_service):
    durable_service.register(DnaSequence("svc_seq", "ACGT" * 100, domain="svc:d"))
    (
        durable_service.new_annotation("svc-r1", keywords=["logged"], body="on new object")
        .mark_sequence("svc_seq", 5, 25)
        .commit()
    )
    records, torn = read_records(durable_service._store.wal_path)
    assert not torn
    assert [record["op"] for record in records] == ["register", "commit"]


def test_bulk_commit_matches_sequential(tmp_path):
    def build_batch(svc):
        svc.register(DnaSequence("bulk_seq", "ACGT" * 200, domain="bulk:d"))
        return [
            svc.new_annotation(
                f"bulk-{index}", keywords=["bulk", f"k{index % 3}"], body=f"bulk member {index}"
            )
            .mark_sequence("bulk_seq", index * 10, index * 10 + 25)
            .build()
            for index in range(12)
        ]

    sequential = GraphittiService(manager=build_influenza_instance())
    for annotation in build_batch(sequential):
        sequential.commit(annotation)
    bulk = GraphittiService(manager=build_influenza_instance())
    committed = bulk.bulk_commit(build_batch(bulk))
    assert len(committed) == 12

    probe = 'SELECT contents WHERE { CONTENT CONTAINS "bulk" }'
    assert bulk.query(probe).annotation_ids == sequential.query(probe).annotation_ids
    bulk_stats, seq_stats = bulk.statistics(), sequential.statistics()
    for key in ("annotations", "referents", "agraph_nodes", "agraph_edges"):
        assert bulk_stats[key] == seq_stats[key]


def test_bulk_commit_validates_atomically(service):
    service.register(DnaSequence("atomic_seq", "ACGT" * 50, domain="at:d"))
    good = (
        service.new_annotation("atomic-good", keywords=["atomic"], body="fine")
        .mark_sequence("atomic_seq", 0, 10)
        .build()
    )
    from repro.core.annotation import Annotation, AnnotationContent
    from repro.core.dublin_core import DublinCore
    from repro.datatypes.base import SubstructureRef, DataType

    bad = Annotation(
        "atomic-bad",
        AnnotationContent(dublin_core=DublinCore(identifier="atomic-bad", subject=["atomic"])),
    )
    bad._referents.append(  # noqa: SLF001 - forging an invalid referent
        __import__("repro.core.annotation", fromlist=["Referent"]).Referent(
            ref=SubstructureRef(object_id="ghost", data_type=DataType.DNA, descriptor={})
        )
    )
    from repro.errors import UnknownObjectError

    with pytest.raises(UnknownObjectError):
        service.bulk_commit([good, bad])
    # Nothing from the failed batch was applied.
    assert service.search_by_keyword("atomic") == []


def test_bulk_commit_defers_index_until_search(service):
    service.register(DnaSequence("defer_seq", "ACGT" * 50, domain="df:d"))
    batch = [
        service.new_annotation(f"defer-{index}", keywords=["deferred"], body="later")
        .mark_sequence("defer_seq", index, index + 5)
        .build()
        for index in range(4)
    ]
    service.bulk_commit(batch)
    assert service.manager.contents.pending_index_count == 4
    assert len(service.search_by_keyword("deferred")) == 4  # flushed on demand
    assert service.manager.contents.pending_index_count == 0


def test_empty_bulk_commit(service):
    assert service.bulk_commit([]) == []


# -- checkpoint / lifecycle ----------------------------------------------------


def test_checkpoint_truncates_wal(durable_service):
    (
        durable_service.new_annotation("cp-1", keywords=["checkpoint"], body="before cp")
        .mark_sequence("HA_chicken", 40, 60)
        .commit()
    )
    assert durable_service.statistics()["service"]["wal"]["records"] == 1
    durable_service.checkpoint()
    stats = durable_service.statistics()["service"]
    assert stats["wal"]["records"] == 0
    assert stats["checkpoints"] >= 1
    # Components were rebuilt at the checkpoint quiesce point.
    assert durable_service.manager.agraph.graph.components_stale is False


def test_auto_checkpoint_interval(tmp_path):
    svc = GraphittiService.open(
        tmp_path / "auto",
        config=ServiceConfig(checkpoint_interval=3),
        manager_factory=build_influenza_instance,
    )
    checkpoints_before = svc.statistics()["service"]["checkpoints"]
    for index in range(3):
        (
            svc.new_annotation(f"auto-{index}", keywords=["auto"], body="tick")
            .mark_sequence("HA_chicken", index * 10, index * 10 + 5)
            .commit()
        )
    assert svc.statistics()["service"]["checkpoints"] == checkpoints_before + 1
    svc.close()


def test_closed_service_rejects_mutations(tmp_path):
    svc = GraphittiService.open(tmp_path / "closing", manager_factory=build_influenza_instance)
    svc.close()
    with pytest.raises(ServiceError):
        svc.delete_annotation("flu-a1")
    svc.close()  # idempotent


def test_statistics_surface_service_counters(service):
    stats = service.statistics()
    assert "service" in stats
    assert stats["service"]["durable"] is False
    assert set(stats["service"]["query_cache"]) >= {"hits", "misses", "evictions", "invalidations"}


def test_non_durable_checkpoint_is_local(service):
    # No root: checkpoint still drains deferred work but writes nothing.
    assert service.checkpoint() is None


def test_sibling_services_report_their_own_stats():
    """Two services over one manager (the benchmark shape) must each report
    their own cache counters, and close() must detach the stats provider."""
    manager = build_influenza_instance()
    uncached = GraphittiService(manager=manager, config=ServiceConfig(cache_capacity=0))
    cached = GraphittiService(manager=manager, config=ServiceConfig())
    cached.query(KEYWORD_QUERY)
    cached.query(KEYWORD_QUERY)
    uncached.query(KEYWORD_QUERY)
    assert cached.statistics()["service"]["query_cache"]["hits"] == 1
    uncached_stats = uncached.statistics()["service"]["query_cache"]
    assert uncached_stats["capacity"] == 0 and uncached_stats["hits"] == 0
    providers_before = len(manager.stats_providers)
    uncached.close()
    assert len(manager.stats_providers) == providers_before - 1


def test_wal_failure_poisons_further_writes(durable_service, monkeypatch):
    """Regression: after a failed append (possible torn line), further writes
    and checkpoints must be refused — appending more would bury valid records
    behind mid-file corruption that recovery refuses to read past."""
    def boom(op, payload):
        raise OSError("disk full")

    monkeypatch.setattr(durable_service._store.wal, "append", boom)
    with pytest.raises(OSError):
        (
            durable_service.new_annotation("poison-1", keywords=["poison"], body="x")
            .mark_sequence("HA_chicken", 1, 9)
            .commit()
        )
    monkeypatch.undo()
    with pytest.raises(ServiceError):
        (
            durable_service.new_annotation("poison-2", keywords=["poison"], body="y")
            .mark_sequence("HA_chicken", 10, 19)
            .commit()
        )
    with pytest.raises(ServiceError):
        durable_service.bulk_commit([
            durable_service.new_annotation("poison-3", keywords=["poison"], body="z")
            .mark_sequence("HA_chicken", 20, 29)
            .build()
        ])
    with pytest.raises(ServiceError):
        durable_service.checkpoint()
