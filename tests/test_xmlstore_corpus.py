"""Tests for XML corpus export/import of the annotation collection."""

import pytest

from repro.errors import XmlStoreError
from repro.xmlstore.collection import DocumentCollection


def make_collection():
    c = DocumentCollection("ann")
    c.add_xml("<annotation><dc:subject>protease</dc:subject><body>cleavage site</body></annotation>", doc_id="a1")
    c.add_xml("<annotation><dc:subject>kinase</dc:subject><body>phospho</body></annotation>", doc_id="a2")
    return c


def test_corpus_roundtrip_preserves_ids():
    c = make_collection()
    restored = DocumentCollection.from_corpus_xml(c.to_corpus_xml())
    assert sorted(restored.document_ids()) == ["a1", "a2"]


def test_corpus_roundtrip_preserves_content():
    c = make_collection()
    restored = DocumentCollection.from_corpus_xml(c.to_corpus_xml())
    assert restored.get("a1").root.child_text("dc:subject") == "protease"


def test_corpus_roundtrip_preserves_search():
    c = make_collection()
    restored = DocumentCollection.from_corpus_xml(c.to_corpus_xml())
    assert restored.search_keyword("cleavage") == ["a1"]


def test_corpus_name_preserved():
    c = make_collection()
    restored = DocumentCollection.from_corpus_xml(c.to_corpus_xml())
    assert restored.name == "ann"


def test_corpus_rejects_non_corpus_root():
    with pytest.raises(XmlStoreError):
        DocumentCollection.from_corpus_xml("<notcorpus/>")


def test_corpus_empty_collection():
    c = DocumentCollection("empty")
    restored = DocumentCollection.from_corpus_xml(c.to_corpus_xml())
    assert len(restored) == 0


def test_corpus_roundtrip_via_manager(influenza):
    corpus = influenza.contents.to_corpus_xml()
    restored = DocumentCollection.from_corpus_xml(corpus)
    assert len(restored) == influenza.annotation_count
