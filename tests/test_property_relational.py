"""Property-based tests for the relational engine invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.query import and_, eq, ge, gt, le, lt
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table


def _make_table():
    return Table(
        TableSchema(
            "t",
            [Column("id", ColumnType.INTEGER, nullable=False), Column("v", ColumnType.INTEGER)],
            primary_key="id",
        )
    )


@settings(max_examples=60)
@given(values=st.lists(st.integers(-1000, 1000), min_size=0, max_size=80, unique=True))
def test_insert_then_select_all(values):
    table = _make_table()
    for index, value in enumerate(values):
        table.insert({"id": index, "v": value})
    assert len(table) == len(values)
    assert {row["v"] for row in table.select()} == set(values)


@settings(max_examples=60)
@given(
    values=st.lists(st.integers(-500, 500), min_size=1, max_size=80, unique=True),
    low=st.integers(-500, 500),
    high=st.integers(-500, 500),
)
def test_range_query_matches_bruteforce(values, low, high):
    if low > high:
        low, high = high, low
    table = _make_table()
    table.create_sorted_index("v")
    for index, value in enumerate(values):
        table.insert({"id": index, "v": value})
    rows = table.select(and_(ge("v", low), le("v", high)))
    got = {row["v"] for row in rows}
    expected = {value for value in values if low <= value <= high}
    assert got == expected


@settings(max_examples=50)
@given(values=st.lists(st.integers(-500, 500), min_size=1, max_size=60, unique=True))
def test_index_and_scan_agree(values):
    indexed = _make_table()
    indexed.create_index("v")
    plain = _make_table()
    for index, value in enumerate(values):
        indexed.insert({"id": index, "v": value})
        plain.insert({"id": index, "v": value})
    target = values[0]
    assert {r["id"] for r in indexed.select(eq("v", target))} == {
        r["id"] for r in plain.select(eq("v", target))
    }


@settings(max_examples=50)
@given(values=st.lists(st.integers(-500, 500), min_size=1, max_size=60, unique=True))
def test_delete_then_count(values):
    table = _make_table()
    for index, value in enumerate(values):
        table.insert({"id": index, "v": value})
    threshold = 0
    deleted = table.delete(gt("v", threshold))
    assert deleted == sum(1 for value in values if value > threshold)
    assert all(row["v"] <= threshold for row in table.select())


@settings(max_examples=40)
@given(values=st.lists(st.integers(-500, 500), min_size=1, max_size=40, unique=True))
def test_update_preserves_row_count(values):
    table = _make_table()
    for index, value in enumerate(values):
        table.insert({"id": index, "v": value})
    before = len(table)
    table.update(None, {"v": 0})
    assert len(table) == before
    assert all(row["v"] == 0 for row in table.select())
