"""Concurrency stress tests for the serving layer (satellite: no torn reads,
cache coherence across epoch bumps, serial-replay equivalence).

The mixed workload drives real threads doing `query` / `commit` /
`bulk_commit` / `delete_annotation` through one `GraphittiService`.  Torn
reads are detected two ways: readers run full integrity checks under the read
lock (a partially applied commit fails them), and every id a query returns
must denote an annotation that was actually committed.  Afterwards the final
state is checked against a serial replay of the durable log, and cache
coherence is probed across explicit epoch bumps."""

import pytest

from repro.core.manager import Graphitti
from repro.service import GraphittiService, ServiceConfig
from repro.service.durability import apply_record
from repro.service.wal import read_records
from repro.workloads.service_scenario import run_service_workload, seed_service_objects

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


@pytest.fixture
def stressed(tmp_path):
    """A durable service after a concurrent mixed workload, plus its summary."""
    root = tmp_path / "stress"
    service = GraphittiService.open(root, config=ServiceConfig(checkpoint_on_close=False))
    object_ids = seed_service_objects(service)
    summary = run_service_workload(
        service,
        object_ids,
        readers=4,
        writers=3,
        queries_per_reader=120,
        commits_per_writer=30,
        delete_every=7,
        integrity_every=25,
        seed=20240703,
        run_tag="stress",
    )
    yield service, summary, root
    service.close()


def test_no_torn_reads_or_thread_errors(stressed):
    service, summary, _ = stressed
    assert summary["errors"] == []
    assert summary["integrity_checks"] > 0
    assert summary["deletes"] > 0  # the mix really exercised removal
    assert summary["bulk_commits"] > 0
    report = service.check_integrity()
    assert report.ok, report.errors


def test_final_state_matches_ledger(stressed):
    service, summary, _ = stressed
    live = set(summary["live_ids"])
    served = {
        annotation.annotation_id
        for annotation in service.manager.annotations()
        if annotation.annotation_id.startswith("svc-w")
    }
    assert served == live


def test_final_state_matches_serial_replay(stressed):
    """Replaying the WAL serially on a fresh instance yields the same state
    the concurrent run produced — writer serialization really worked."""
    service, _, root = stressed
    records, torn = read_records(root / "wal.jsonl")
    assert not torn
    reference = Graphitti("stress")
    for record in records:
        apply_record(reference, record)
    live_stats = service.statistics()
    reference_stats = reference.statistics()
    for key in ("annotations", "referents", "agraph_nodes", "agraph_edges",
                "indexed_intervals", "data_objects"):
        assert live_stats[key] == reference_stats[key]
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "workload" }'
    assert service.query(probe).annotation_ids == reference.query(probe).annotation_ids


def test_cache_coherent_after_every_epoch_bump(stressed):
    """After each kind of mutation (epoch bump) the cache must serve the new
    truth immediately — never a stale result."""
    service, _, _ = stressed
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "coherencecheck" }'
    assert service.query(probe).annotation_ids == []
    object_id = seed_service_objects(service, sequences=1)[0]

    (
        service.new_annotation("coh-1", keywords=["coherencecheck"], body="epoch bump 1")
        .mark_sequence(object_id, 0, 25)
        .commit()
    )
    assert service.query(probe).annotation_ids == ["coh-1"]

    batch = [
        service.new_annotation(f"coh-bulk-{index}", keywords=["coherencecheck"], body="bulk bump")
        .mark_sequence(object_id, 30 + index * 10, 35 + index * 10)
        .build()
        for index in range(3)
    ]
    service.bulk_commit(batch)
    assert service.query(probe).annotation_ids == [
        "coh-1", "coh-bulk-0", "coh-bulk-1", "coh-bulk-2",
    ]

    service.delete_annotation("coh-1")
    assert service.query(probe).annotation_ids == ["coh-bulk-0", "coh-bulk-1", "coh-bulk-2"]

    cache_stats = service.statistics()["service"]["query_cache"]
    assert cache_stats["invalidations"] >= 1


def test_cache_still_hits_between_mutations(stressed):
    service, _, _ = stressed
    probe = 'SELECT contents WHERE { CONTENT CONTAINS "workload" }'
    before = service.statistics()["service"]["query_cache"]["hits"]
    first = service.query(probe)
    second = service.query(probe)
    assert second.annotation_ids == first.annotation_ids
    assert service.statistics()["service"]["query_cache"]["hits"] > before
