"""Tests for the fluent annotation builder."""

import pytest

from repro import Graphitti
from repro.datatypes import (
    DnaSequence,
    Image,
    InteractionGraph,
    MultipleSequenceAlignment,
    RelationalRecord,
    parse_newick,
)
from repro.errors import AnnotationError
from repro.ontology.builtin import build_protein_ontology


@pytest.fixture
def rich_instance():
    g = Graphitti("builder")
    g.register_ontology(build_protein_ontology())
    g.register(DnaSequence("seq", "ACGT" * 100, domain="chr1"))
    g.register(MultipleSequenceAlignment("msa", {"r1": "ACGT" * 20, "r2": "ACGT" * 20}))
    graph = InteractionGraph("graph")
    graph.add_edge("p1", "p2")
    graph.add_edge("p2", "p3")
    g.register(graph)
    g.register(parse_newick("((a,b),(c,d));", object_id="tree"))
    g.register(RelationalRecord("rec", ("host",), {"k1": {"host": "x"}, "k2": {"host": "y"}}))
    g.register(Image("img", dimension=2, space="atlas"))
    return g


def test_builder_all_marker_types(rich_instance):
    annotation = (
        rich_instance.new_annotation("multi", keywords=["k"])
        .mark_sequence("seq", 10, 40)
        .mark_alignment_columns("msa", 4, 12)
        .mark_subgraph("graph", ["p1", "p2"])
        .mark_neighborhood("graph", "p2", radius=1)
        .mark_clade("tree", "a")
        .mark_clade_by_leaves("tree", ["a", "b"])
        .mark_record_block("rec", ["k1", "k2"])
        .mark_region("img", (10, 10), (40, 40))
        .commit()
    )
    assert annotation.referent_count == 8


def test_builder_set_body_and_tag(rich_instance):
    annotation = (
        rich_instance.new_annotation("a")
        .set_body("the comment")
        .set_tag("evidence", "experimental")
        .mark_sequence("seq", 0, 5)
        .commit()
    )
    assert annotation.content.body == "the comment"
    assert annotation.content.user_tags["evidence"] == "experimental"


def test_builder_add_keyword(rich_instance):
    annotation = (
        rich_instance.new_annotation("a").add_keyword("extra").mark_sequence("seq", 0, 5).commit()
    )
    assert "extra" in annotation.content.keywords()


def test_builder_refer_ontology_resolves_name(rich_instance):
    annotation = (
        rich_instance.new_annotation("a").refer_ontology("Protease").mark_sequence("seq", 0, 5).commit()
    )
    assert "protein:protease" in annotation.content.ontology_terms


def test_builder_build_without_referents_raises(rich_instance):
    with pytest.raises(AnnotationError):
        rich_instance.new_annotation("a").build()


def test_builder_commit_twice_raises(rich_instance):
    builder = rich_instance.new_annotation("a").mark_sequence("seq", 0, 5)
    builder.commit()
    with pytest.raises(AnnotationError):
        builder.commit()


def test_builder_ontology_only_annotation(rich_instance):
    # an annotation with just a content ontology reference is valid
    annotation = rich_instance.new_annotation("onto-only").refer_ontology("protein:TP53").commit()
    assert annotation.referent_count == 0
    assert "protein:TP53" in annotation.content.ontology_terms
